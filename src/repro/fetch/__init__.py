"""The instruction-fetch simulation: front-ends and the fetch engine.

:mod:`repro.fetch.frontends` wraps each studied structure (BTB,
NLS-table, NLS-cache, Johnson successor indices, plus oracle/none
baselines) behind one interface; :mod:`repro.fetch.engine` drives a
block-compressed trace through the instruction cache, the shared PHT
and return stack, and a chosen front-end, producing a
:class:`~repro.metrics.report.SimulationReport`.
"""

from repro.fetch.frontends import (
    FetchFrontEnd,
    BTBFrontEnd,
    NLSTableFrontEnd,
    NLSCacheFrontEnd,
    JohnsonFrontEnd,
    OracleFrontEnd,
    FallThroughFrontEnd,
    MECH_CONDITIONAL,
    MECH_OTHER,
    MECH_RETURN,
)
from repro.fetch.engine import FetchEngine

__all__ = [
    "FetchFrontEnd",
    "BTBFrontEnd",
    "NLSTableFrontEnd",
    "NLSCacheFrontEnd",
    "JohnsonFrontEnd",
    "OracleFrontEnd",
    "FallThroughFrontEnd",
    "FetchEngine",
    "MECH_CONDITIONAL",
    "MECH_OTHER",
    "MECH_RETURN",
]

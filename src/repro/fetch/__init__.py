"""The instruction-fetch simulation: front-ends and the fetch engine.

:mod:`repro.fetch.frontends` wraps each studied structure (BTB,
NLS-table, NLS-cache, Johnson successor indices, plus oracle/none
baselines) behind one interface; :mod:`repro.fetch.engine` drives a
block-compressed trace through the instruction cache, the shared PHT
and return stack, and a chosen front-end, producing a
:class:`~repro.metrics.report.SimulationReport`.

:mod:`repro.fetch.capability` classifies configurations for sweep
dispatch — :func:`engine_class` says how a cell executes
(``fast-batched`` / ``fast-single`` / ``reference``) and
:func:`fallback_reason` names the stable machine-readable reason when
the fast engine cannot run a configuration at all.
"""

from repro.fetch.capability import (
    EngineClass,
    FallbackReason,
    engine_class,
    fallback_reason,
)
from repro.fetch.frontends import (
    FetchFrontEnd,
    BTBFrontEnd,
    NLSTableFrontEnd,
    NLSCacheFrontEnd,
    JohnsonFrontEnd,
    OracleFrontEnd,
    FallThroughFrontEnd,
    MECH_CONDITIONAL,
    MECH_OTHER,
    MECH_RETURN,
)
from repro.fetch.engine import FetchEngine

__all__ = [
    "EngineClass",
    "FallbackReason",
    "engine_class",
    "fallback_reason",
    "FetchFrontEnd",
    "BTBFrontEnd",
    "NLSTableFrontEnd",
    "NLSCacheFrontEnd",
    "JohnsonFrontEnd",
    "OracleFrontEnd",
    "FallThroughFrontEnd",
    "FetchEngine",
    "MECH_CONDITIONAL",
    "MECH_OTHER",
    "MECH_RETURN",
]

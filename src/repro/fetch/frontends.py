"""Fetch front-ends: one interface over every studied structure.

A front-end answers, for the break instruction at ``pc``:

* which prediction *mechanism* its entry selects — ``MECH_RETURN``
  (use the return stack), ``MECH_CONDITIONAL`` (use the PHT, then the
  entry's target on taken), ``MECH_OTHER`` (always use the entry's
  target), or ``None`` (no entry — fetch falls through and the branch
  is resolved at decode/execute);
* whether its stored taken-target prediction actually delivers a given
  resolved target (:meth:`target_matches`) — for the BTB a full
  address compare, for NLS structures the line-field/residency/way
  verification of §7;
* after resolution, how to train itself (:meth:`update`).

The engine owns the shared PHT and return stack; front-ends only
handle type + target.  Johnson's design is the exception: its pointer
*is* the direction prediction, signalled by ``implicit_direction``.
"""

from __future__ import annotations

from typing import Optional, Protocol

from repro.cache.icache import InstructionCache
from repro.core.johnson import JohnsonSuccessorIndex, SuccessorPrediction
from repro.core.nls_cache import NLSCache
from repro.core.nls_entry import (
    MISMATCH_CAUSES,
    NLSEntryType,
    NLSPrediction,
    classify_nls_mismatch,
)
from repro.core.nls_table import NLSTable
from repro.fetch.attribution import (
    CAUSE_BTB_WRONG_TARGET,
    CAUSE_FRONTEND_MISS,
    CAUSE_NLS_DISPLACED,
    CAUSE_NLS_WRONG_LINE,
    CAUSE_NLS_WRONG_SET,
)
from repro.isa.branches import BranchKind
from repro.predictors.btb import BranchTargetBuffer, CoupledBTB

#: mechanism constants (values shared with the NLS type field)
MECH_RETURN = int(NLSEntryType.RETURN)
MECH_CONDITIONAL = int(NLSEntryType.CONDITIONAL)
MECH_OTHER = int(NLSEntryType.OTHER)

_KIND_TO_MECH = {
    BranchKind.RETURN: MECH_RETURN,
    BranchKind.CONDITIONAL: MECH_CONDITIONAL,
    BranchKind.UNCONDITIONAL: MECH_OTHER,
    BranchKind.CALL: MECH_OTHER,
    BranchKind.INDIRECT: MECH_OTHER,
}

#: NLS diagnostic-histogram key -> attribution taxonomy cause
_NLS_CAUSE = {
    "invalid": CAUSE_FRONTEND_MISS,
    "line-field": CAUSE_NLS_WRONG_LINE,
    "displaced": CAUSE_NLS_DISPLACED,
    "wrong-way": CAUSE_NLS_WRONG_SET,
}


class FetchFrontEnd(Protocol):
    """Interface the fetch engine drives."""

    #: human-readable structure name for report labels
    name: str
    #: ``True`` only for the oracle: the engine substitutes the true
    #: mechanism and treats every target as matching
    perfect: bool
    #: ``True`` when the structure predicts direction implicitly
    #: (Johnson's pointer) instead of deferring to the shared PHT
    implicit_direction: bool
    #: attribution-taxonomy cause of the most recent
    #: :meth:`target_matches` that returned ``False`` (the engine
    #: reads it right after a failed match — see fetch/attribution.py)
    last_mismatch_cause: Optional[str]

    def predict(self, pc: int, line_way: int):
        """Return ``(mechanism, handle)`` for the break at *pc*.

        *line_way* is the cache way the line containing *pc* was just
        fetched from (needed by line-coupled structures).  *handle* is
        an opaque token passed back to :meth:`target_matches`.
        """
        ...

    def target_matches(self, handle, target: int) -> bool:
        """Would the prediction in *handle* fetch *target*?"""
        ...

    def update(
        self,
        pc: int,
        kind: BranchKind,
        taken: bool,
        target: int,
        fall_through: int,
        next_way: int,
    ) -> None:
        """Train with a resolved break.  *next_way* is the cache way
        where the next-fetch line (target if taken, else fall-through)
        resides after being fetched."""
        ...


class BTBFrontEnd:
    """Decoupled BTB (§3): full target address + type on a tag hit."""

    implicit_direction = False
    perfect = False
    last_mismatch_cause: Optional[str] = None

    def __init__(self, btb: BranchTargetBuffer) -> None:
        self.btb = btb
        self.name = f"btb-{btb.entries}e-{btb.associativity}w"

    def predict(self, pc: int, line_way: int):
        """Predict (mechanism, handle) for the break at *pc* — see :class:`FetchFrontEnd`."""
        entry = self.btb.lookup(pc)
        if entry is None:
            return None, None
        return _KIND_TO_MECH[entry.kind], entry

    def target_matches(self, handle, target: int) -> bool:
        # a BTB entry stores the full address: no residency or way
        # checks — this is the BTB's advantage on cache misses (§7)
        """Verify the stored prediction against the actual *target*."""
        if handle is None:
            self.last_mismatch_cause = CAUSE_FRONTEND_MISS
            return False
        if handle.target != target:
            self.last_mismatch_cause = CAUSE_BTB_WRONG_TARGET
            return False
        return True

    def predicted_address(self, handle):
        """Full predicted address (for wrong-path modelling)."""
        return handle.target if handle is not None else None

    def update(
        self,
        pc: int,
        kind: BranchKind,
        taken: bool,
        target: int,
        fall_through: int,
        next_way: int,
    ) -> None:
        """Train on the resolved break (the engine applies this one block late)."""
        if taken:
            self.btb.record_taken(pc, kind, target)
        else:
            self.btb.record_not_taken(pc, kind, target)

    def flush(self) -> None:
        """Drop all entries (context-switch modelling)."""
        self.btb.flush()


class NLSTableFrontEnd:
    """The paper's NLS-table (§4.1): tag-less, decoupled from the cache."""

    implicit_direction = False
    perfect = False

    def __init__(self, table: NLSTable, cache: InstructionCache) -> None:
        self.table = table
        self.cache = cache
        self.name = f"nls-table-{table.entries}e"
        #: why taken-target predictions failed (diagnostics, see
        #: classify_nls_mismatch)
        self.mismatch_causes = {cause: 0 for cause in MISMATCH_CAUSES}
        self.last_mismatch_cause: Optional[str] = None

    def predict(self, pc: int, line_way: int):
        """Predict (mechanism, handle) for the break at *pc* — see :class:`FetchFrontEnd`."""
        prediction = self.table.lookup(pc)
        if not prediction.valid:
            return None, None
        return int(prediction.type), prediction

    def target_matches(self, handle, target: int) -> bool:
        """Verify the stored prediction against the actual *target*."""
        if handle is None:
            self.mismatch_causes["invalid"] += 1
            self.last_mismatch_cause = CAUSE_FRONTEND_MISS
            return False
        cause = classify_nls_mismatch(handle, target, self.cache)
        if cause is None:
            return True
        self.mismatch_causes[cause] += 1
        self.last_mismatch_cause = _NLS_CAUSE[cause]
        return False

    def update(
        self,
        pc: int,
        kind: BranchKind,
        taken: bool,
        target: int,
        fall_through: int,
        next_way: int,
    ) -> None:
        """Train on the resolved break (the engine applies this one block late)."""
        self.table.update(pc, kind, taken, target, next_way)

    def flush(self) -> None:
        """Drop all entries (context-switch modelling)."""
        self.table.flush()


class NLSCacheFrontEnd:
    """The NLS-cache (§4.1): predictors coupled to cache lines."""

    implicit_direction = False
    perfect = False

    def __init__(self, nls_cache: NLSCache) -> None:
        self.nls_cache = nls_cache
        self.cache = nls_cache.cache
        self.name = (
            f"nls-cache-{nls_cache.predictors_per_line}pl-{nls_cache.policy}"
        )
        #: why taken-target predictions failed (same diagnostic
        #: histogram the NLS-table front end keeps)
        self.mismatch_causes = {cause: 0 for cause in MISMATCH_CAUSES}
        self.last_mismatch_cause: Optional[str] = None

    def predict(self, pc: int, line_way: int):
        """Predict (mechanism, handle) for the break at *pc* — see :class:`FetchFrontEnd`."""
        prediction = self.nls_cache.lookup(pc, line_way)
        if not prediction.valid:
            return None, None
        return int(prediction.type), prediction

    def target_matches(self, handle, target: int) -> bool:
        """Verify the stored prediction against the actual *target*."""
        if handle is None:
            self.mismatch_causes["invalid"] += 1
            self.last_mismatch_cause = CAUSE_FRONTEND_MISS
            return False
        cause = classify_nls_mismatch(handle, target, self.cache)
        if cause is None:
            return True
        self.mismatch_causes[cause] += 1
        self.last_mismatch_cause = _NLS_CAUSE[cause]
        return False

    def update(
        self,
        pc: int,
        kind: BranchKind,
        taken: bool,
        target: int,
        fall_through: int,
        next_way: int,
    ) -> None:
        """Train on the resolved break (the engine applies this one block late)."""
        self.nls_cache.update(pc, kind, taken, target, next_way)

    def flush(self) -> None:
        """Drop all predictor slots (context-switch modelling)."""
        self.nls_cache.flush()


class JohnsonFrontEnd:
    """Johnson's coupled successor index (§6.2): the pointer is also
    the (one-bit) direction prediction; no type field, no return-stack
    integration."""

    implicit_direction = True
    perfect = False

    def __init__(self, johnson: JohnsonSuccessorIndex) -> None:
        self.johnson = johnson
        self.geometry = johnson.geometry
        self.cache = johnson.cache
        self.name = f"johnson-{johnson.predictors_per_line}pl"
        self.last_mismatch_cause: Optional[str] = None

    def predict(self, pc: int, line_way: int):
        """Predict (mechanism, handle) for the break at *pc* — see :class:`FetchFrontEnd`."""
        prediction = self.johnson.lookup(pc, line_way)
        if not prediction.valid:
            return None, prediction
        # every valid pointer is "follow me": mechanism OTHER
        return MECH_OTHER, prediction

    def target_matches(self, handle, target: int) -> bool:
        """Verify the stored prediction against the actual *target*."""
        prediction: SuccessorPrediction = handle
        if prediction is None or not prediction.valid:
            self.last_mismatch_cause = CAUSE_FRONTEND_MISS
            return False
        if prediction.line_field != self.geometry.line_field(target):
            self.last_mismatch_cause = CAUSE_NLS_WRONG_LINE
            return False
        way = self.cache.probe(target)
        if way is None:
            self.last_mismatch_cause = CAUSE_NLS_DISPLACED
            return False
        if self.geometry.associativity > 1 and way != prediction.way:
            self.last_mismatch_cause = CAUSE_NLS_WRONG_SET
            return False
        return True

    def implied_taken(self, handle, fall_through: int) -> bool:
        """Direction implied by the pointer (invalid => not-taken)."""
        return self.johnson.implied_taken(handle, fall_through)

    def update(
        self,
        pc: int,
        kind: BranchKind,
        taken: bool,
        target: int,
        fall_through: int,
        next_way: int,
    ) -> None:
        # Johnson updates on every execution: taken writes the target
        # pointer, not-taken the fall-through pointer
        """Train on the resolved break (the engine applies this one block late)."""
        self.johnson.update(
            pc,
            kind,
            taken,
            target,
            next_way if taken else 0,
            fall_through,
            next_way if not taken else 0,
        )

    def flush(self) -> None:
        """Drop all successor slots (context-switch modelling)."""
        self.johnson.flush()


class OracleFrontEnd:
    """Perfect fetch prediction — a lower bound for the BEP's misfetch
    component (mispredicts can still come from the PHT and RAS)."""

    implicit_direction = False
    perfect = True
    name = "oracle"
    last_mismatch_cause: Optional[str] = None

    def predict(self, pc: int, line_way: int):
        """Predict (mechanism, handle) for the break at *pc* — see :class:`FetchFrontEnd`."""
        return MECH_OTHER, None

    def target_matches(self, handle, target: int) -> bool:
        """Verify the stored prediction against the actual *target*."""
        return True

    def update(self, pc, kind, taken, target, fall_through, next_way) -> None:
        """Train on the resolved break (the engine applies this one block late)."""
        pass

    def __init__(self) -> None:
        pass


class FallThroughFrontEnd:
    """No fetch-prediction structure at all: every break fetches the
    fall-through — an upper bound on the misfetch penalty."""

    implicit_direction = False
    perfect = False
    name = "fall-through"
    last_mismatch_cause: Optional[str] = CAUSE_FRONTEND_MISS

    def predict(self, pc: int, line_way: int):
        """Predict (mechanism, handle) for the break at *pc* — see :class:`FetchFrontEnd`."""
        return None, None

    def target_matches(self, handle, target: int) -> bool:
        """Verify the stored prediction against the actual *target*."""
        return False

    def update(self, pc, kind, taken, target, fall_through, next_way) -> None:
        """Train on the resolved break (the engine applies this one block late)."""
        pass


class CoupledBTBFrontEnd:
    """Pentium-style *coupled* BTB (§2): the conditional direction
    comes from a 2-bit counter stored in the BTB entry, so branches
    that miss in the BTB fall back to static not-taken prediction.

    Exists to reproduce the coupled-vs-decoupled observation from the
    authors' earlier study [2]: the decoupled design wins because
    *every* conditional branch gets dynamic direction prediction, not
    just the ones currently resident in the BTB.
    """

    implicit_direction = True
    uses_ras = True
    perfect = False
    last_mismatch_cause: Optional[str] = None

    def __init__(self, btb: CoupledBTB) -> None:
        self.btb = btb
        self.name = f"coupled-btb-{btb.entries}e-{btb.associativity}w"

    def predict(self, pc: int, line_way: int):
        """Predict (mechanism, handle) for the break at *pc* — see :class:`FetchFrontEnd`."""
        entry = self.btb.lookup(pc)
        if entry is None:
            return None, None
        return _KIND_TO_MECH[entry.kind], entry

    def target_matches(self, handle, target: int) -> bool:
        """Verify the stored prediction against the actual *target*."""
        if handle is None:
            self.last_mismatch_cause = CAUSE_FRONTEND_MISS
            return False
        if handle.target != target:
            self.last_mismatch_cause = CAUSE_BTB_WRONG_TARGET
            return False
        return True

    def predicted_address(self, handle):
        """Full predicted address (for wrong-path modelling)."""
        return handle.target if handle is not None else None

    def implied_taken(self, handle, fall_through: int) -> bool:
        """Direction from the entry's counter; a BTB miss or a
        non-conditional entry statically predicts not-taken."""
        if handle is None or handle.kind != BranchKind.CONDITIONAL:
            return False
        if handle.counter is None:
            return False
        return handle.counter.taken

    def update(
        self,
        pc: int,
        kind: BranchKind,
        taken: bool,
        target: int,
        fall_through: int,
        next_way: int,
    ) -> None:
        """Train on the resolved break (the engine applies this one block late)."""
        if taken:
            self.btb.record_taken(pc, kind, target)
        else:
            self.btb.record_not_taken(pc)

    def flush(self) -> None:
        """Drop all entries (context-switch modelling)."""
        self.btb.flush()

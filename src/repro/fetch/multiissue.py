"""Multi-issue fetch-bandwidth model (§8 extension).

The paper evaluates a single-issue machine and closes with "nothing in
the design of the NLS architecture appears to be a problem for
wide-issue architectures".  This module supplies the missing piece of
that argument: a fetch-bandwidth model that converts a trace plus a
simulation report into cycles for a W-wide front end, so the BEP's
*relative* cost can be studied as issue width grows.

Model: the fetch unit delivers up to ``width`` sequential instructions
per cycle, never crossing an instruction-cache line boundary (a single
line read per cycle), and a basic block always starts a new fetch
group (the preceding break redirected fetch).  Penalty cycles (misfetch
bubbles, mispredict bubbles, I-cache miss stalls) are added on top,
exactly as in the single-issue CPI, but the useful work per cycle is
now ``width`` instructions — which is what makes breaks "more likely
to occur as more instructions are fetched per cycle" (§1) hurt more.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.geometry import INSTRUCTION_BYTES
from repro.metrics.report import SimulationReport
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class MultiIssueReport:
    """Cycle accounting of one simulation at a given fetch width."""

    width: int
    n_instructions: int
    fetch_cycles: int
    penalty_cycles: float

    @property
    def total_cycles(self) -> float:
        """Fetch cycles plus penalty bubbles."""
        return self.fetch_cycles + self.penalty_cycles

    @property
    def ipc(self) -> float:
        """Instructions retired per cycle."""
        if self.total_cycles == 0:
            return 0.0
        return self.n_instructions / self.total_cycles

    @property
    def fetch_efficiency(self) -> float:
        """Fraction of the ideal ``width``-per-cycle bandwidth achieved
        by fetch alone (ignoring penalties): exposes the fragmentation
        from short blocks and line boundaries."""
        if self.fetch_cycles == 0:
            return 0.0
        return self.n_instructions / (self.fetch_cycles * self.width)


class FetchBandwidthModel:
    """Counts fetch cycles for a block-compressed trace at width W."""

    def __init__(self, width: int, line_bytes: int = 32) -> None:
        if width < 1:
            raise ValueError("fetch width must be at least 1")
        if line_bytes < INSTRUCTION_BYTES or line_bytes & (line_bytes - 1):
            raise ValueError("line_bytes must be a power of two >= 4")
        self.width = width
        self.line_bytes = line_bytes
        self._line_instructions = line_bytes // INSTRUCTION_BYTES

    def block_fetch_cycles(self, start: int, count: int) -> int:
        """Fetch cycles for one basic block starting at *start*.

        Each cycle fetches ``min(width, instructions left in the
        line)`` instructions; the block's first fetch group starts at
        its entry point (the previous break redirected fetch there).
        """
        width = self.width
        line_instructions = self._line_instructions
        offset = (start // INSTRUCTION_BYTES) % line_instructions
        remaining = count
        cycles = 0
        while remaining > 0:
            in_line = line_instructions - offset
            grabbed = min(width, in_line, remaining)
            remaining -= grabbed
            cycles += 1
            offset = (offset + grabbed) % line_instructions
        return cycles

    def fetch_cycles(self, trace: Trace) -> int:
        """Total fetch cycles over the whole trace."""
        starts = trace.starts
        counts = trace.counts
        total = 0
        block_cycles = self.block_fetch_cycles
        for index in range(len(starts)):
            total += block_cycles(starts[index], counts[index])
        return total

    def evaluate(self, trace: Trace, report: SimulationReport) -> MultiIssueReport:
        """Combine this model's fetch cycles with *report*'s penalty
        events into a :class:`MultiIssueReport`.

        *report* must come from a full-trace run (``warmup_fraction``
        0) of the same trace so the instruction populations match.
        """
        if report.n_instructions != trace.n_instructions:
            raise ValueError(
                "report and trace cover different instruction counts "
                f"({report.n_instructions} vs {trace.n_instructions}); "
                "run the engine with warmup_fraction=0"
            )
        penalties = (
            report.misfetches * report.penalties.misfetch
            + report.mispredicts * report.penalties.mispredict
            + report.icache_misses * report.penalties.icache_miss
        )
        return MultiIssueReport(
            width=self.width,
            n_instructions=trace.n_instructions,
            fetch_cycles=self.fetch_cycles(trace),
            penalty_cycles=penalties,
        )

"""Engine capability classification for sweep dispatch.

The fast engine's supported matrix is now closed over every paper
configuration: all front-ends (NLS table, NLS cache, Johnson
successor table, Steely/Sager goto-register table, plain and coupled
BTB, oracle, fall-through), set-associative instruction caches under
every replacement policy, flushes, warmup and attribution.  What
remains outside the matrix is named by a stable machine-readable
:class:`FallbackReason` — the value stamped into run manifests and
bench artifacts — instead of the old free-text marker.

Within the matrix, :func:`engine_class` tells the harness *how* a
cell executes so plan batching can group compatible cells:

* ``fast-batched`` — replays as pure array passes; a batch of cells
  sharing a packed trace amortises its sorts via
  :func:`repro.predictors.kernels.batched_orders` and the shared
  :class:`~repro.fetch.fast_engine.TraceReplayContext` memos.
* ``fast-single`` — exact per-cell scalar replay of a structure with
  prediction-independent but order-sensitive state (associative BTB
  LRU stacks, coupled-BTB counters, NLS-cache LRU slot recency); the
  cell still shares every vectorised sub-replay (icache, flush
  epochs, residency probes) through the batch context.
* ``reference`` — the per-branch reference loop; only configurations
  with a :class:`FallbackReason` land here.
"""

from __future__ import annotations

import enum
from typing import Optional


class FallbackReason(enum.Enum):
    """Why a configuration cannot run on the fast engine.

    Values are stable machine-readable identifiers: they appear in
    ``RunManifest.extra["engine_fallback"]``, bench manifests and CI
    artifacts, and are pinned by tests — add new members rather than
    renaming existing values.
    """

    #: only the gshare direction predictor has a vectorised replay
    DIRECTION_PREDICTOR = "unsupported-direction-predictor"
    #: wrong-path modelling feeds predictions back into cache state,
    #: breaking the trace-determined-state property every kernel needs
    WRONG_PATH = "wrong-path-modelling"


class EngineClass(str, enum.Enum):
    """How a configuration executes under sweep dispatch."""

    FAST_BATCHED = "fast-batched"
    FAST_SINGLE = "fast-single"
    REFERENCE = "reference"


def fallback_reason(config) -> Optional[FallbackReason]:
    """The :class:`FallbackReason` forcing *config* onto the reference
    engine, or ``None`` when the fast engine supports it."""
    if config.direction != "gshare":
        return FallbackReason.DIRECTION_PREDICTOR
    if config.model_wrong_path:
        return FallbackReason.WRONG_PATH
    return None


def engine_class(config) -> EngineClass:
    """Classify *config* for sweep batching (assuming ``engine="fast"``
    is requested; a cell that asks for the reference engine is simply
    not classified through here)."""
    if fallback_reason(config) is not None:
        return EngineClass.REFERENCE
    if config.frontend == "coupled-btb":
        return EngineClass.FAST_SINGLE
    if config.frontend == "btb" and config.btb_assoc != 1:
        return EngineClass.FAST_SINGLE
    if config.frontend == "nls-cache" and config.nls_cache_policy == "lru":
        return EngineClass.FAST_SINGLE
    return EngineClass.FAST_BATCHED

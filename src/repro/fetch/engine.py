"""The trace-driven fetch engine.

Drives a block-compressed trace through:

* the instruction cache (every line of every executed block is
  fetched; misses are counted and fill the cache),
* the shared conditional-branch direction predictor (gshare by
  default) and the 32-entry return-address stack,
* one fetch front-end (BTB / NLS-table / NLS-cache / Johnson / ...).

Every executed break is classified as correct, **misfetched** (the
next-fetch address was wrong but repaired at decode: one bubble) or
**mispredicted** (direction or late-known target wrong, discovered at
execute: four bubbles), per the accounting of §5.2 — see DESIGN.md §5
for the full rule table.

The engine applies front-end updates one block late: the NLS set field
must be trained with the cache way the *target* line actually landed
in, which is only known once the next block has been fetched (§4 "the
NLS entries are updated after instructions are decoded").
"""

from __future__ import annotations

from typing import Optional

from repro.cache.icache import InstructionCache
from repro.fetch.attribution import (
    CAUSE_DIRECTION,
    CAUSE_FRONTEND_MISS,
    CAUSE_NLS_TYPE_MISMATCH,
    CAUSE_RAS_MISPOP,
    AttributionCollector,
)
from repro.fetch.frontends import (
    FetchFrontEnd,
    MECH_CONDITIONAL,
    MECH_OTHER,
    MECH_RETURN,
)
from repro.isa.branches import BranchKind
from repro.metrics.counters import SimulationCounters
from repro.metrics.report import PenaltyModel, SimulationReport
from repro.predictors.pht import GSharePredictor
from repro.predictors.ras import ReturnAddressStack
from repro.telemetry.core import get_registry
from repro.workloads.trace import Trace

def _no_address(handle) -> Optional[int]:
    """Default wrong-path address resolver: structures that store no
    full target (NLS, Johnson) cannot generate a wrong-path address."""
    return None


_KIND_TO_MECH = {
    int(BranchKind.RETURN): MECH_RETURN,
    int(BranchKind.CONDITIONAL): MECH_CONDITIONAL,
    int(BranchKind.UNCONDITIONAL): MECH_OTHER,
    int(BranchKind.CALL): MECH_OTHER,
    int(BranchKind.INDIRECT): MECH_OTHER,
}


class FetchEngine:
    """One simulation run: cache + shared predictors + one front-end.

    Predictor and cache state persists across :meth:`run` calls, so a
    fresh engine should be built per configuration (the harness does).
    """

    #: engine-selection identity stamped into run manifests (the
    #: vectorised counterpart reports ``"fast"``)
    engine_name = "reference"

    def __init__(
        self,
        cache: InstructionCache,
        frontend: FetchFrontEnd,
        direction_predictor=None,
        return_stack: Optional[ReturnAddressStack] = None,
        penalties: Optional[PenaltyModel] = None,
        model_wrong_path: bool = False,
        flush_interval: Optional[int] = None,
        attribution: Optional[AttributionCollector] = None,
    ) -> None:
        self.cache = cache
        self.frontend = frontend
        self.direction = (
            direction_predictor if direction_predictor is not None else GSharePredictor()
        )
        self.return_stack = (
            return_stack if return_stack is not None else ReturnAddressStack(32)
        )
        self.penalties = penalties or PenaltyModel()
        #: front-ends may opt out of return-stack integration (Johnson
        #: has none); coupled BTBs predict direction implicitly but
        #: still drive the stack
        self.uses_ras = getattr(frontend, "uses_ras", not frontend.implicit_direction)
        #: when set, misfetches also touch the wrongly-fetched line:
        #: a BTB with a stale full target pollutes the cache with a
        #: wrong-path fill, while a fall-through fetch only touches the
        #: sequential line (the paper notes the two architectures "may
        #: fetch different instructions", S5.2)
        self.model_wrong_path = model_wrong_path
        #: instructions between context switches: at each boundary the
        #: instruction cache, the front-end structure, the PHT and the
        #: return stack are all flushed, modelling the cold restart a
        #: real process suffers after being scheduled out
        if flush_interval is not None and flush_interval < 1:
            raise ValueError("flush_interval must be positive")
        self.flush_interval = flush_interval
        #: optional cause-attribution collector (DESIGN.md §11): when
        #: set, every counted break is classified into the closed
        #: taxonomy of :mod:`repro.fetch.attribution`; when ``None``
        #: the hot loop pays one pointer comparison per break
        self.attribution = attribution

    # ------------------------------------------------------------------

    def run(
        self,
        trace: Trace,
        label: Optional[str] = None,
        warmup_fraction: float = 0.0,
    ) -> SimulationReport:
        """Simulate *trace* and return the derived report.

        *warmup_fraction* (0..1) excludes the first fraction of events
        from the report while still training every structure — the
        paper's multi-hundred-million-instruction traces make cold
        start negligible, and warmup restores that property for the
        scaled-down traces used here.

        Front ends that keep a mismatch-cause histogram (the NLS
        designs) have it snapshotted into ``report.frontend_stats`` so
        downstream analyses never need the live engine — reports are
        self-contained and cross process boundaries intact.

        When a telemetry registry is active (see
        :mod:`repro.telemetry`), the run is wrapped in an
        ``engine.run`` span and per-phase counters are published —
        icache probes, front-end predicts, return-stack operations and
        blocks decoded.  The counts are derived from aggregates the
        loop maintains anyway (cache access totals, trace columns), so
        the hot loop itself carries **no** instrumentation and the
        disabled path costs nothing."""
        registry = get_registry()
        probe_base = self.cache.accesses
        with registry.span(
            "engine.run",
            label=label if label is not None else self.frontend.name,
            program=trace.name,
            frontend=self.frontend.name,
        ):
            counters = self._simulate(trace, warmup_fraction)
        if registry.enabled:
            kinds = trace.kinds
            blocks = len(kinds)
            predicts = blocks - kinds.count(int(BranchKind.NOT_A_BRANCH))
            ras_ops = 0
            if self.uses_ras:
                # one push per CALL, one pop per RETURN (whole trace,
                # warmup included — this is throughput accounting)
                ras_ops = kinds.count(int(BranchKind.CALL)) + kinds.count(
                    int(BranchKind.RETURN)
                )
            registry.counter("engine.blocks_decoded").add(blocks)
            registry.counter("engine.icache_probes").add(
                self.cache.accesses - probe_base
            )
            registry.counter("engine.frontend_predicts").add(predicts)
            registry.counter("engine.ras_ops").add(ras_ops)
        collector = self.attribution
        if collector is not None and registry.enabled:
            # publish the closed-taxonomy totals alongside the phase
            # counters, and fold this run's penalty-gap distribution
            # into the process-wide histogram
            for cause_name, count in collector.causes.items():
                if count:
                    registry.counter(f"engine.cause.{cause_name}").add(count)
            registry.histogram("engine.penalty_gap").absorb(
                collector.gap_histogram
            )
        stats = getattr(self.frontend, "mismatch_causes", None)
        return SimulationReport.from_counters(
            counters,
            label=label if label is not None else self.frontend.name,
            program=trace.name,
            penalties=self.penalties,
            frontend_stats=dict(stats) if stats is not None else None,
            attribution=collector.snapshot() if collector is not None else None,
        )

    # ------------------------------------------------------------------

    def _context_switch(self) -> None:
        """Flush every stateful structure (see ``flush_interval``)."""
        self.cache.flush()
        flush = getattr(self.frontend, "flush", None)
        if flush is not None:
            flush()
        reset = getattr(self.direction, "reset", None)
        if reset is not None:
            reset()
        self.return_stack.clear()

    def _simulate(
        self, trace: Trace, warmup_fraction: float = 0.0
    ) -> SimulationCounters:
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        cache = self.cache
        geometry = cache.geometry
        line_bytes = geometry.line_bytes
        line_mask = ~(line_bytes - 1)

        starts = trace.starts
        counts = trace.counts
        kinds = trace.kinds
        takens = trace.takens
        targets = trace.targets

        access = cache.access
        frontend = self.frontend
        fe_predict = frontend.predict
        fe_matches = frontend.target_matches
        fe_update = frontend.update
        implicit = frontend.implicit_direction
        perfect = getattr(frontend, "perfect", False)
        pht = self.direction
        pht_predict = pht.predict
        pht_update = pht.update
        ras = self.return_stack
        use_ras = self.uses_ras
        collector = self.attribution
        if collector is not None:
            collector.reset()
        observe = collector.observe if collector is not None else None

        counters = SimulationCounters()
        by_kind = {int(kind): counter for kind, counter in counters.by_kind.items()}
        base_accesses = cache.accesses
        base_misses = cache.misses

        NOT_A_BRANCH = int(BranchKind.NOT_A_BRANCH)
        CONDITIONAL = int(BranchKind.CONDITIONAL)
        UNCONDITIONAL = int(BranchKind.UNCONDITIONAL)
        CALL = int(BranchKind.CALL)
        RETURN = int(BranchKind.RETURN)

        pending = None  # deferred front-end update (see module docstring)
        n_instructions = 0
        warmup_boundary = int(len(starts) * warmup_fraction)
        model_wrong_path = self.model_wrong_path
        flush_interval = self.flush_interval
        instructions_since_flush = 0

        for index in range(len(starts)):
            if index == warmup_boundary and index > 0:
                # end of warmup: discard everything counted so far
                counters = SimulationCounters()
                by_kind = {
                    int(kind): counter for kind, counter in counters.by_kind.items()
                }
                base_accesses = cache.accesses
                base_misses = cache.misses
                n_instructions = 0
                if collector is not None:
                    # attribution mirrors the counter reset so its
                    # per-cause totals partition the reported aggregates
                    collector.reset()
            start = starts[index]
            count = counts[index]
            n_instructions += count

            if flush_interval is not None:
                instructions_since_flush += count
                if instructions_since_flush >= flush_interval:
                    instructions_since_flush = 0
                    pending = None
                    self._context_switch()

            # --- fetch the block's lines ---------------------------------
            line = start & line_mask
            end_line = (start + (count - 1) * 4) & line_mask
            way = access(line).way
            if pending is not None:
                # next_way: the way the next-fetch line landed in
                fe_update(
                    pending[0], pending[1], pending[2], pending[3], pending[4], way
                )
                pending = None
            while line != end_line:
                line += line_bytes
                way = access(line).way
            branch_way = way  # way of the line holding the break

            kind = kinds[index]
            if kind == NOT_A_BRANCH:
                continue

            taken = takens[index]
            target = targets[index]
            pc = start + (count - 1) * 4
            fall_through = pc + 4

            # --- front-end prediction ------------------------------------
            mech, handle = fe_predict(pc, branch_way)
            if perfect:
                mech = _KIND_TO_MECH[kind]

            misfetch = False
            mispredict = False
            cause = None  # taxonomy member when misfetch/mispredict
            detail = None  # extra fields for the sampled trace record

            if kind == CONDITIONAL:
                if implicit:
                    # Johnson: the pointer is the direction prediction
                    implied = frontend.implied_taken(handle, fall_through)
                    if implied != taken:
                        mispredict = True
                        # no entry at all means the "prediction" was the
                        # structural not-taken default, not a trained bit
                        cause = (
                            CAUSE_FRONTEND_MISS if mech is None else CAUSE_DIRECTION
                        )
                    elif taken and not fe_matches(handle, target):
                        misfetch = True
                        cause = frontend.last_mismatch_cause
                else:
                    predicted_taken = pht_predict(pc, target)
                    pht_update(pc, taken)
                    if predicted_taken != taken:
                        mispredict = True
                        cause = CAUSE_DIRECTION
                    elif taken:
                        if mech == MECH_CONDITIONAL or mech == MECH_OTHER:
                            if not fe_matches(handle, target):
                                misfetch = True
                                cause = frontend.last_mismatch_cause
                        else:
                            # no entry (fetched fall-through) or a
                            # return-typed alias (fetched stack top):
                            # repaired at decode from the computed target
                            misfetch = True
                            cause = (
                                CAUSE_FRONTEND_MISS
                                if mech is None
                                else CAUSE_NLS_TYPE_MISMATCH
                            )
                    else:
                        # direction right, not taken: the precomputed
                        # fall-through is correct unless a wrong-typed
                        # entry steered fetch elsewhere
                        if mech == MECH_OTHER or mech == MECH_RETURN:
                            misfetch = True
                            cause = CAUSE_NLS_TYPE_MISMATCH
            elif kind == UNCONDITIONAL or kind == CALL:
                if mech == MECH_OTHER:
                    if not fe_matches(handle, target):
                        misfetch = True
                        cause = frontend.last_mismatch_cause
                elif mech == MECH_CONDITIONAL:
                    # conditional-typed alias: fetch follows the PHT
                    # (consulted, not trained — this is not a
                    # conditional branch)
                    if not pht_predict(pc, target):
                        misfetch = True
                        cause = CAUSE_NLS_TYPE_MISMATCH
                    elif not fe_matches(handle, target):
                        misfetch = True
                        cause = frontend.last_mismatch_cause
                else:
                    # no entry or return-typed alias; the direct target
                    # is computed at decode
                    misfetch = True
                    cause = (
                        CAUSE_FRONTEND_MISS
                        if mech is None
                        else CAUSE_NLS_TYPE_MISMATCH
                    )
            elif kind == RETURN:
                predicted_return = ras.pop() if use_ras else None
                if not use_ras:
                    # Johnson predicts returns with the raw pointer; a
                    # wrong pointer is only discovered at execute
                    if not fe_matches(handle, target):
                        mispredict = True
                        cause = frontend.last_mismatch_cause
                elif mech == MECH_RETURN:
                    if predicted_return != target:
                        mispredict = True
                        cause = CAUSE_RAS_MISPOP
                        detail = {"underflow": predicted_return is None}
                else:
                    # the front-end did not identify the return; decode
                    # does, and repairs from the stack if it can
                    if predicted_return == target:
                        misfetch = True
                        cause = (
                            CAUSE_FRONTEND_MISS
                            if mech is None
                            else CAUSE_NLS_TYPE_MISMATCH
                        )
                    else:
                        mispredict = True
                        cause = CAUSE_RAS_MISPOP
                        detail = {"underflow": predicted_return is None}
            else:  # INDIRECT
                if mech == MECH_OTHER:
                    if not fe_matches(handle, target):
                        mispredict = True
                        cause = frontend.last_mismatch_cause
                elif mech == MECH_CONDITIONAL:
                    if not pht_predict(pc, target):
                        mispredict = True
                        cause = CAUSE_NLS_TYPE_MISMATCH
                    elif not fe_matches(handle, target):
                        mispredict = True
                        cause = frontend.last_mismatch_cause
                else:
                    # no prediction: the register target arrives at execute
                    mispredict = True
                    cause = (
                        CAUSE_FRONTEND_MISS
                        if mech is None
                        else CAUSE_NLS_TYPE_MISMATCH
                    )

            if misfetch and model_wrong_path:
                # touch the line fetch actually went to before decode
                # repaired it
                if mech is None:
                    access(fall_through & line_mask)
                else:
                    wrong = getattr(frontend, "predicted_address", _no_address)(
                        handle
                    )
                    if wrong is not None:
                        access(wrong & line_mask)

            if use_ras and kind == CALL:
                ras.push(fall_through)

            counter = by_kind[kind]
            counter.executed += 1
            if misfetch:
                counter.misfetched += 1
            elif mispredict:
                counter.mispredicted += 1

            if observe is not None:
                observe(
                    pc,
                    kind,
                    taken,
                    1 if misfetch else (2 if mispredict else 0),
                    cause,
                    detail,
                )

            pending = (pc, kind, taken, target, fall_through)

        # final pending update: resolve with a probe (no further fetch)
        if pending is not None and pending[2]:
            way = cache.probe(pending[3])
            fe_update(
                pending[0], pending[1], pending[2], pending[3], pending[4],
                way if way is not None else 0,
            )

        counters.n_instructions = n_instructions
        counters.icache_accesses = cache.accesses - base_accesses
        counters.icache_misses = cache.misses - base_misses
        return counters

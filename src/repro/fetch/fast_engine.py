"""Vectorised trace-replay engine over a shared batch context.

Produces reports **identical** to :class:`repro.fetch.engine.FetchEngine`
for every configuration in the closed matrix (see
:mod:`repro.fetch.capability`), but replays the trace with NumPy array
kernels instead of one Python object call per branch.

Why this is possible at all: with wrong-path modelling off (the
paper's configuration), predictions never feed back into state —
every structure's evolution (instruction cache, PHT, BTB, NLS table,
NLS cache, Johnson index, RAS, global history) is a pure function of
the trace.  The simulation therefore decomposes into independent
exact per-structure replays followed by one vectorised
classification pass:

1. **Flush epochs** — context-switch boundaries partition the trace;
   all replays key their state on ``(epoch, slot)`` so a flush is just
   a fresh key space, never a scan.
2. **Instruction cache** — direct-mapped caches hit iff the previous
   access to the same ``(epoch, set)`` carried the same tag; for
   associative caches a compact Python walk replays the replacement
   policy exactly, once per geometry, and every derived query
   (residency probes, way of an access, fill *generation* of a frame)
   is answered vectorised from its output.
3. **Front-end structures** — last-write-wins table slots (BTB /
   NLS-table / Steely–Sager) under the engine's one-block update
   delay; line-coupled predictor frames (NLS-cache, Johnson) keyed by
   their carrier frame's fill generation so an eviction retires state
   without a scan; associative-BTB LRU stacks and coupled-BTB
   counters replayed by a per-structure scalar walk shared across
   every cache geometry.
4. **gshare PHT** — per-conditional history registers from shifted
   masked adds; 2-bit counters replayed exactly with a segmented
   clamp-add scan (:func:`~repro.predictors.kernels.counter_scan`).
5. **RAS** — a compact Python walk over calls/returns/flushes only.
6. **Classification** — the engine's §5.2 rule table, applied as
   boolean masks; the attribution collector (when enabled) replays
   the per-break observation stream so its snapshot is byte-identical.

The unit of execution is a **batch of sweep cells sharing a packed
trace**: a :class:`TraceReplayContext` memoises every sub-replay, so
cells that share a geometry, front-end family or flush interval pay
for each expensive pass once, and :meth:`TraceReplayContext.prepare`
stacks the table variants of a batch into one sort
(:func:`~repro.predictors.kernels.batched_orders`).

Configurations outside the matrix (non-gshare direction predictors,
wrong-path modelling) fall back to the reference engine — see
:func:`repro.fetch.capability.fallback_reason` and
``ArchitectureConfig.build``.
"""

from __future__ import annotations

import random
from types import SimpleNamespace
from typing import NamedTuple, Optional, Tuple

import numpy as np

from repro.fetch.attribution import (
    CAUSE_BTB_WRONG_TARGET,
    CAUSE_DIRECTION,
    CAUSE_FRONTEND_MISS,
    CAUSE_NLS_DISPLACED,
    CAUSE_NLS_TYPE_MISMATCH,
    CAUSE_NLS_WRONG_LINE,
    CAUSE_NLS_WRONG_SET,
    CAUSE_RAS_MISPOP,
    AttributionCollector,
)
from repro.fetch.capability import (
    EngineClass,
    engine_class,
    fallback_reason,
)
from repro.core.nls_entry import MISMATCH_CAUSES
from repro.isa.branches import BranchKind
from repro.metrics.counters import SimulationCounters
from repro.metrics.report import SimulationReport
from repro.predictors import kernels
from repro.telemetry.core import get_registry
from repro.workloads.trace import Trace

_NOT_A_BRANCH = int(BranchKind.NOT_A_BRANCH)
_CONDITIONAL = int(BranchKind.CONDITIONAL)
_UNCONDITIONAL = int(BranchKind.UNCONDITIONAL)
_CALL = int(BranchKind.CALL)
_RETURN = int(BranchKind.RETURN)
_INDIRECT = int(BranchKind.INDIRECT)

#: branch kind -> NLS type / mechanism value (0 stands in for "no
#: entry"; the non-zero values are shared with NLSEntryType)
_KIND_TO_MECH = np.array([0, 2, 3, 3, 1, 3], dtype=np.int64)

#: integer cause codes used by the vectorised classification pass;
#: index 0 is "correct" (no cause)
_CAUSE_STRINGS: Tuple[Optional[str], ...] = (
    None,
    CAUSE_DIRECTION,
    CAUSE_FRONTEND_MISS,
    CAUSE_BTB_WRONG_TARGET,
    CAUSE_NLS_WRONG_LINE,
    CAUSE_NLS_DISPLACED,
    CAUSE_NLS_TYPE_MISMATCH,
    CAUSE_RAS_MISPOP,
    CAUSE_NLS_WRONG_SET,
)
_C_DIRECTION = 1
_C_FRONTEND_MISS = 2
_C_BTB_WRONG_TARGET = 3
_C_NLS_WRONG_LINE = 4
_C_NLS_DISPLACED = 5
_C_NLS_TYPE_MISMATCH = 6
_C_RAS_MISPOP = 7
_C_NLS_WRONG_SET = 8

#: cause code -> NLS diagnostic-histogram bucket (``mismatch_causes``)
_FAIL_BUCKETS = {
    _C_FRONTEND_MISS: "invalid",
    _C_NLS_WRONG_LINE: "line-field",
    _C_NLS_DISPLACED: "displaced",
    _C_NLS_WRONG_SET: "wrong-way",
}


def unsupported_reason(config) -> Optional[str]:
    """Why *config* cannot run on the fast engine (``None`` = it can).

    Compatibility wrapper over
    :func:`repro.fetch.capability.fallback_reason`: returns the stable
    machine-readable reason string the harness stamps into run
    manifests.
    """
    reason = fallback_reason(config)
    return None if reason is None else reason.value


def _frontend_name(config) -> str:
    """The reference front-end's ``name`` for this config (labels)."""
    if config.frontend == "btb":
        return f"btb-{config.entries}e-{config.btb_assoc}w"
    if config.frontend == "coupled-btb":
        return f"coupled-btb-{config.entries}e-{config.btb_assoc}w"
    if config.frontend == "nls-table":
        return f"nls-table-{config.entries}e"
    if config.frontend == "steely-sager":
        return f"steely-sager-{config.entries}e"
    if config.frontend == "nls-cache":
        return (
            f"nls-cache-{config.predictors_per_line}pl-"
            f"{config.nls_cache_policy}"
        )
    if config.frontend == "johnson":
        return f"johnson-{config.predictors_per_line}pl"
    return config.frontend


def _geom_key(geometry) -> Tuple[int, int, int]:
    """Hashable identity of a cache geometry (memo keys)."""
    return (geometry.size_bytes, geometry.line_bytes, geometry.associativity)


def _flush_epochs(
    counts: np.ndarray, interval: Optional[int]
) -> Tuple[np.ndarray, list]:
    """Per-event flush-epoch ids and the list of flush events.

    A flush triggers at the first event whose cumulative count since
    the previous flush reaches *interval*, *before* that event's
    fetches (so the event itself runs on cold state).
    """
    n = len(counts)
    flush_events: list = []
    epoch = np.zeros(n, dtype=np.int64)
    if interval is None or n == 0:
        return epoch, flush_events
    cumulative = np.cumsum(counts)
    base = 0
    while True:
        position = int(np.searchsorted(cumulative, base + interval, side="left"))
        if position >= n:
            break
        flush_events.append(position)
        base = int(cumulative[position])
    if flush_events:
        epoch = np.searchsorted(
            np.asarray(flush_events, dtype=np.int64),
            np.arange(n, dtype=np.int64),
            side="right",
        )
    return epoch, flush_events


class _FrontendReplay(NamedTuple):
    """Per-break front-end answers, ready for classification."""

    #: prediction mechanism per break (0 = no entry)
    mech: np.ndarray
    #: would :meth:`target_matches` succeed for the resolved target?
    match: np.ndarray
    #: cause code reported when a consulted entry fails to match
    cause: np.ndarray
    #: implicit direction prediction (Johnson / coupled BTB), else None
    implied: Optional[np.ndarray]


def _assoc_cache_walk(
    access_set: np.ndarray,
    access_tag: np.ndarray,
    n_sets: int,
    assoc: int,
    replacement: str,
    flush_accesses: list,
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact scalar replay of a set-associative instruction cache.

    Runs once per (geometry, replacement, flush-interval) and is
    memoised by the batch context; everything downstream (hit flags,
    ways, residency probes, fill generations) is derived from its
    output with array passes.  Reproduces ``InstructionCache.access``
    exactly: probe scan, LRU touch / FIFO rotation / seeded-random
    victim selection, and full resets at context-switch flushes.
    """
    total = len(access_set)
    hit = np.zeros(total, dtype=bool)
    way_out = np.zeros(total, dtype=np.int64)
    lru = replacement == "lru"
    fifo = replacement == "fifo"
    tags = [[-1] * assoc for _ in range(n_sets)]
    orders = [list(range(assoc)) for _ in range(n_sets)] if lru else None
    nxt = [0] * n_sets if fifo else None
    rng = random.Random(0) if not (lru or fifo) else None
    sets_list = access_set.tolist()
    tags_list = access_tag.tolist()
    cursor = 0
    n_flushes = len(flush_accesses)
    for i in range(total):
        while cursor < n_flushes and flush_accesses[cursor] <= i:
            tags = [[-1] * assoc for _ in range(n_sets)]
            if lru:
                orders = [list(range(assoc)) for _ in range(n_sets)]
            elif fifo:
                nxt = [0] * n_sets
            else:
                rng = random.Random(0)
            cursor += 1
        s = sets_list[i]
        t = tags_list[i]
        row = tags[s]
        try:
            w = row.index(t)
        except ValueError:
            w = -1
        if w >= 0:
            hit[i] = True
            if lru:
                order = orders[s]
                if order[0] != w:
                    order.remove(w)
                    order.insert(0, w)
        else:
            if lru:
                order = orders[s]
                w = order[-1]
                if order[0] != w:
                    order.remove(w)
                    order.insert(0, w)
            elif fifo:
                w = nxt[s]
                nxt[s] = (w + 1) % assoc
            else:
                w = rng.randrange(assoc)
            row[w] = t
        way_out[i] = w
    return hit, way_out


class _IcacheReplay:
    """Replayed instruction-cache history for one geometry.

    Per line access: hit flag, landing way and the carrier frame's
    *fill generation* (inclusive count of fills the frame has seen —
    front-end state bound to an evicted line is retired simply by
    keying it with the generation it was written under).  Residency
    probes (:meth:`probe`) answer ``cache.probe(addr)`` at any access
    timestamp without replaying anything.
    """

    __slots__ = (
        "hit",
        "way",
        "gen",
        "frame_key",
        "total",
        "first_access",
        "end_access",
        "max_gen",
        "fill_index",
        "fill_times",
        "line_index",
        "line_space",
        "offset_bits",
    )

    def __init__(self, **fields) -> None:
        for name, value in fields.items():
            setattr(self, name, value)

    def probe(
        self, addr: np.ndarray, epoch: np.ndarray, times: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised ``cache.probe``: is each address resident at its
        timestamp, and in which way / frame generation?

        An address is resident iff it has been accessed this epoch and
        no later fill into its frame displaced it.
        """
        line_word = addr >> self.offset_bits
        out_of_bounds = (line_word < 0) | (line_word >= self.line_space)
        safe_word = np.where(out_of_bounds, 0, line_word)
        last = self.line_index.query(epoch * self.line_space + safe_word, times)
        last = np.where(out_of_bounds, -1, last)
        safe_last = np.maximum(last, 0)
        frame = self.frame_key[safe_last]
        fill = self.fill_index.query(frame, times)
        safe_fill = np.maximum(fill, 0)
        resident = (
            (last >= 0) & (fill >= 0) & (self.fill_times[safe_fill] <= safe_last)
        )
        way = np.where(resident, self.way[safe_last], 0)
        generation = np.where(resident, self.gen[safe_last], 0)
        return resident, way, generation


# === batch context ====================================================


class TraceReplayContext:
    """Memoised sub-replays of one packed trace, shared by a batch.

    Every expensive pass — flush epochs, break columns, the
    instruction-cache replay per geometry, residency probes, the
    gshare counter scan, each front-end structure's replay — is built
    on demand and cached, so a batch of sweep cells over the same
    trace pays for each pass once.  :meth:`prepare` additionally
    stacks the slot keys of same-family table variants into one
    stable sort (:func:`~repro.predictors.kernels.batched_orders`).

    The context holds no per-cell state; any number of
    :class:`FastEngine` cells may attach to it (serially).
    """

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        packed = trace.packed()
        self.starts = packed["starts"]
        self.counts = packed["counts"]
        self.kinds = packed["kinds"].astype(np.int64)
        self.takens = packed["takens"]
        self.targets = packed["targets"]
        self.n_events = len(self.starts)
        self.branch_pc = self.starts + (self.counts - 1) * 4
        self._memo: dict = {}
        #: pre-computed sort orders from :meth:`prepare`, consumed by
        #: the replay builders (one-shot: popped on first use)
        self._orders: dict = {}

    def _get(self, key, build):
        try:
            return self._memo[key]
        except KeyError:
            value = self._memo[key] = build()
            return value

    # --- trace-level sub-replays --------------------------------------

    def flush(self, interval: Optional[int]):
        """(per-event epoch ids, flush event list) for *interval*."""
        return self._get(
            ("flush", interval), lambda: _flush_epochs(self.counts, interval)
        )

    def breaks(self, interval: Optional[int]):
        """Break (branch) columns: events, kind, taken, target, pc,
        fall-through, word address, epoch and query time."""

        def _build():
            epoch, _ = self.flush(interval)
            events = np.nonzero(self.kinds != _NOT_A_BRANCH)[0]
            pc = self.branch_pc[events]
            return SimpleNamespace(
                events=events,
                n=len(events),
                kind=self.kinds[events],
                taken=np.asarray(self.takens[events], dtype=bool),
                target=self.targets[events],
                pc=pc,
                ft=pc + 4,
                word=pc >> 2,
                epoch=epoch[events],
                qtime=events - 1,  # table writes land one block late
            )

        return self._get(("breaks", interval), _build)

    def lines(self, line_bytes: int):
        """Flat line-access stream for one line size (all geometries
        sharing the line size share it)."""

        def _build():
            offset_bits = line_bytes.bit_length() - 1
            first_line = self.starts & ~(line_bytes - 1)
            last_line = self.branch_pc & ~(line_bytes - 1)
            lines_per_event = ((last_line - first_line) >> offset_bits) + 1
            row_ids, offsets, first_access = kernels.ragged_ranges(lines_per_event)
            access_addr = first_line[row_ids] + (offsets << offset_bits)
            return SimpleNamespace(
                row_ids=row_ids,
                first_access=first_access,
                end_access=first_access + lines_per_event - 1,
                access_addr=access_addr,
                total=len(access_addr),
            )

        return self._get(("lines", line_bytes), _build)

    def line_index(self, line_bytes: int, interval: Optional[int]):
        """Last-access-to-this-line index (epoch-keyed), shared by the
        residency probes of every cache size with this line size."""

        def _build():
            accesses = self.lines(line_bytes)
            epoch, _ = self.flush(interval)
            offset_bits = line_bytes.bit_length() - 1
            line_word = accesses.access_addr >> offset_bits
            space = int(line_word.max()) + 1 if accesses.total else 1
            key = epoch[accesses.row_ids] * space + line_word
            index = kernels.LastWriteIndex(
                key, np.arange(accesses.total, dtype=np.int64)
            )
            return index, space

        return self._get(("lineidx", line_bytes, interval), _build)

    def icache(self, geometry, replacement: str, interval: Optional[int]):
        """The :class:`_IcacheReplay` for one cache configuration."""
        key = ("icache", _geom_key(geometry), replacement, interval)

        def _build():
            accesses = self.lines(geometry.line_bytes)
            epoch, flush_events = self.flush(interval)
            offset_bits = geometry.offset_bits
            n_sets = geometry.n_sets
            assoc = geometry.associativity
            tag_shift = offset_bits + geometry.set_index_bits
            access_addr = accesses.access_addr
            access_set = (access_addr >> offset_bits) & (n_sets - 1)
            access_tag = access_addr >> tag_shift
            access_epoch = epoch[accesses.row_ids]
            if assoc == 1:
                # a direct-mapped access hits iff the previous access
                # to the same (epoch, set) carried the same tag; the
                # victim is always way 0 under *every* policy
                frame = access_epoch * n_sets + access_set
                previous = kernels.LastWriteIndex(
                    frame, np.arange(accesses.total, dtype=np.int64)
                ).previous_in_key()
                hit = (previous >= 0) & (
                    access_tag[np.maximum(previous, 0)] == access_tag
                )
                way = np.zeros(accesses.total, dtype=np.int64)
            else:
                flush_accesses = [
                    int(accesses.first_access[f]) for f in flush_events
                ]
                hit, way = _assoc_cache_walk(
                    access_set, access_tag, n_sets, assoc, replacement,
                    flush_accesses,
                )
            frame_key = (access_epoch * n_sets + access_set) * assoc + way
            generation = kernels.segmented_counts(frame_key, ~hit)
            fills = np.nonzero(~hit)[0]
            index, space = self.line_index(geometry.line_bytes, interval)
            return _IcacheReplay(
                hit=hit,
                way=way,
                gen=generation,
                frame_key=frame_key,
                total=accesses.total,
                first_access=accesses.first_access,
                end_access=accesses.end_access,
                max_gen=int(generation.max()) if accesses.total else 0,
                fill_index=kernels.LastWriteIndex(frame_key[fills], fills),
                fill_times=fills,
                line_index=index,
                line_space=space,
                offset_bits=offset_bits,
            )

        return self._get(key, _build)

    def target_probe(self, geometry, replacement: str, interval: Optional[int]):
        """``cache.probe(target)`` for every break, at classification
        time (after the break's own line fetches) — shared by every
        NLS-family front-end on this cache."""
        key = ("tprobe", _geom_key(geometry), replacement, interval)

        def _build():
            cache = self.icache(geometry, replacement, interval)
            br = self.breaks(interval)
            return cache.probe(br.target, br.epoch, cache.end_access[br.events])

        return self._get(key, _build)

    def next_way(self, geometry, replacement: str, interval: Optional[int]):
        """Per break, the ``next_way`` its deferred update carries: the
        way of the next event's first line access.  Junk for writes
        that never apply (final break, flush-dropped) — those are
        invisible to every query."""
        key = ("nextway", _geom_key(geometry), replacement, interval)

        def _build():
            cache = self.icache(geometry, replacement, interval)
            br = self.breaks(interval)
            next_event = br.events + 1
            has = next_event < self.n_events
            safe = np.where(has, next_event, 0)
            return np.where(has, cache.way[cache.first_access[safe]], 0)

        return self._get(key, _build)

    def _frame_writers(self, geometry, replacement: str, interval: Optional[int]):
        """Breaks whose deferred update lands in a line-coupled
        structure (NLS-cache / Johnson): the update applies after the
        next event's first access, in the same epoch, and only while
        the branch's carrier line is still resident."""
        key = ("framewriters", _geom_key(geometry), replacement, interval)

        def _build():
            cache = self.icache(geometry, replacement, interval)
            br = self.breaks(interval)
            epoch, _ = self.flush(interval)
            next_event = br.events + 1
            has = next_event < self.n_events
            safe = np.where(has, next_event, 0)
            same_epoch = has & (epoch[safe] == br.epoch)
            write_time = cache.first_access[safe]
            resident, way, generation = cache.probe(br.pc, br.epoch, write_time)
            writer = same_epoch & resident
            widx = np.nonzero(writer)[0]
            return SimpleNamespace(
                widx=widx, times=write_time[widx], way=way, gen=generation
            )

        return self._get(key, _build)

    def _frame_base(self, geometry, replacement: str, interval: Optional[int]):
        """Shared frame-keyed coordinates for the line-coupled
        replays: per-break set/offset, lookup and update frame keys
        (epoch, set, way, fill generation) and line fields."""
        key = ("framebase", _geom_key(geometry), replacement, interval)

        def _build():
            cache = self.icache(geometry, replacement, interval)
            br = self.breaks(interval)
            writers = self._frame_writers(geometry, replacement, interval)
            n_sets = geometry.n_sets
            assoc = geometry.associativity
            generations = cache.max_gen + 1
            bset = (br.pc >> geometry.offset_bits) & (n_sets - 1)
            boff = (br.pc >> 2) & (geometry.instructions_per_line - 1)
            look_time = cache.end_access[br.events]
            look_frame = (
                (br.epoch * n_sets + bset) * assoc + cache.way[look_time]
            ) * generations + cache.gen[look_time]
            widx = writers.widx
            upd_frame = (
                (br.epoch[widx] * n_sets + bset[widx]) * assoc + writers.way[widx]
            ) * generations + writers.gen[widx]
            lf_mask = (1 << geometry.line_field_bits) - 1
            return SimpleNamespace(
                bset=bset,
                boff=boff,
                look_time=look_time,
                look_frame=look_frame,
                upd_frame=upd_frame,
                widx=widx,
                times=writers.times,
                target_lf=(br.target >> 2) & lf_mask,
                ft_lf=(br.ft >> 2) & lf_mask,
            )

        return self._get(key, _build)

    # --- direction predictor ------------------------------------------

    def _gshare_keys(self, pht_entries: int, interval: Optional[int]):
        """Per-conditional history registers and PHT cell keys (shared
        by the counter scan and any stacked sort over PHT sizes)."""

        def _build():
            br = self.breaks(interval)
            mask = pht_entries - 1
            bits = pht_entries.bit_length() - 1
            cond_positions = np.nonzero(br.kind == _CONDITIONAL)[0]
            cond_events = br.events[cond_positions]
            cond_taken = br.taken[cond_positions].astype(np.int64)
            cond_epoch = br.epoch[cond_positions]
            segment_first = kernels.segment_starts(cond_epoch)
            history_before = kernels.gshare_histories(
                cond_taken, segment_first, bits
            )
            history_after = ((history_before << 1) | cond_taken) & mask
            cells = (br.word[cond_positions] ^ history_before) & mask
            return SimpleNamespace(
                mask=mask,
                cond_positions=cond_positions,
                cond_events=cond_events,
                cond_taken=cond_taken,
                cond_epoch=cond_epoch,
                history_after=history_after,
                cell_key=cond_epoch * pht_entries + cells,
            )

        return self._get(("gsharekeys", pht_entries, interval), _build)

    def gshare(self, pht_entries: int, interval: Optional[int]):
        """Exact 2-bit-counter PHT replay for one table size."""

        def _build():
            br = self.breaks(interval)
            keys = self._gshare_keys(pht_entries, interval)
            order = self._orders.pop(("gshare", pht_entries, interval), None)
            if order is None:
                order = np.argsort(keys.cell_key, kind="stable")
            before_sorted, after_sorted = kernels.counter_scan(
                keys.cell_key[order], keys.cond_taken[order].astype(bool), 1, 3
            )
            n_cond = len(keys.cond_positions)
            state_before = np.empty(n_cond, dtype=np.int64)
            state_before[order] = before_sorted
            state_after = np.empty(n_cond, dtype=np.int64)
            state_after[order] = after_sorted
            pht_pred = np.zeros(br.n, dtype=bool)
            pht_pred[keys.cond_positions] = state_before >= 2
            return SimpleNamespace(
                entries=pht_entries,
                mask=keys.mask,
                cond_positions=keys.cond_positions,
                cond_events=keys.cond_events,
                cond_epoch=keys.cond_epoch,
                history_after=keys.history_after,
                state_after=state_after,
                pht_pred=pht_pred,
                cell_index=kernels.LastWriteIndex(
                    keys.cell_key, keys.cond_events, order=order
                ),
            )

        return self._get(("gshare", pht_entries, interval), _build)

    # --- return address stack -----------------------------------------

    def ras(self, capacity: int, interval: Optional[int]) -> np.ndarray:
        """Exact RAS replay: per-break popped address (-1 = underflow).

        Walks only calls, returns and flushes in event order — a tiny
        fraction of the trace — reproducing the circular buffer's
        overwrite-on-overflow behaviour.
        """

        def _build():
            br = self.breaks(interval)
            _, flush_events = self.flush(interval)
            popped = np.full(br.n, -1, dtype=np.int64)
            interesting = np.nonzero(
                (br.kind == _CALL) | (br.kind == _RETURN)
            )[0]
            slots = [0] * capacity
            top = 0
            depth = 0
            flush_cursor = 0
            n_flushes = len(flush_events)
            events = br.events[interesting].tolist()
            kinds = br.kind[interesting].tolist()
            values = br.ft[interesting].tolist()
            for i, event in enumerate(events):
                while (
                    flush_cursor < n_flushes
                    and flush_events[flush_cursor] <= event
                ):
                    top = 0
                    depth = 0
                    flush_cursor += 1
                if kinds[i] == _CALL:
                    slots[top] = values[i]
                    top = (top + 1) % capacity
                    if depth < capacity:
                        depth += 1
                else:  # RETURN: pop during classification
                    if depth:
                        top = (top - 1) % capacity
                        depth -= 1
                        popped[interesting[i]] = slots[top]
            return popped

        return self._get(("ras", capacity, interval), _build)

    # --- front-end replays --------------------------------------------

    def frontend_replay(self, config) -> _FrontendReplay:
        """The per-break front-end outcome columns for *config*."""
        frontend = config.frontend
        interval = config.flush_interval
        if frontend == "oracle":

            def _build():
                br = self.breaks(interval)
                return _FrontendReplay(
                    _KIND_TO_MECH[br.kind],
                    np.ones(br.n, dtype=bool),
                    np.zeros(br.n, dtype=np.int64),
                    None,
                )

            return self._get(("fe-oracle", interval), _build)
        if frontend == "fall-through":

            def _build():
                br = self.breaks(interval)
                return _FrontendReplay(
                    np.zeros(br.n, dtype=np.int64),
                    np.zeros(br.n, dtype=bool),
                    np.zeros(br.n, dtype=np.int64),
                    None,
                )

            return self._get(("fe-ft", interval), _build)
        if frontend == "btb":
            if config.btb_assoc == 1:
                return self._btb_direct_replay(
                    config.entries, config.btb_allocate, interval
                )
            return self._btb_walk(
                False, config.entries, config.btb_assoc,
                config.btb_allocate, interval,
            )
        if frontend == "coupled-btb":
            return self._btb_walk(
                True, config.entries, config.btb_assoc, None, interval
            )
        geometry = config.geometry
        replacement = config.cache_replacement
        if frontend in ("nls-table", "steely-sager"):
            return self._table_replay(config)
        if frontend == "johnson":
            return self._frame_replay(
                "johnson", config.predictors_per_line, geometry,
                replacement, interval,
            )
        if frontend == "nls-cache":
            if config.nls_cache_policy == "lru":
                return self._nls_lru_replay(
                    config.predictors_per_line, geometry, replacement,
                    interval,
                )
            return self._frame_replay(
                "partition", config.predictors_per_line, geometry,
                replacement, interval,
            )
        raise ValueError(f"unknown frontend {frontend!r}")

    def _btb_direct_replay(self, entries, allocate, interval):
        """Vectorised direct-mapped BTB: pure last-write-wins slots."""
        key = ("fe-btb", entries, allocate, interval)

        def _build():
            br = self.breaks(interval)
            nb = br.n
            n_btb_sets = entries
            set_bits = n_btb_sets.bit_length() - 1
            btb_set = br.word & (n_btb_sets - 1)
            btb_tag = br.word >> set_bits
            if allocate == "all":
                write_mask = br.taken | (br.target != 0)
            else:
                write_mask = br.taken
            writers = np.nonzero(write_mask)[0]
            mech = np.zeros(nb, dtype=np.int64)
            match = np.zeros(nb, dtype=bool)
            if len(writers):
                order = self._orders.pop(
                    ("btb", allocate, entries, interval), None
                )
                windex = kernels.LastWriteIndex(
                    br.epoch[writers] * n_btb_sets + btb_set[writers],
                    br.events[writers],
                    order=order,
                )
                last = windex.query(
                    br.epoch * n_btb_sets + btb_set, br.qtime
                )
                source = writers[np.maximum(last, 0)]
                hit = (last >= 0) & (btb_tag[source] == btb_tag)
                mech = np.where(hit, _KIND_TO_MECH[br.kind[source]], 0)
                match = hit & (br.target[source] == br.target)
            cause = np.full(nb, _C_BTB_WRONG_TARGET, dtype=np.int64)
            return _FrontendReplay(mech, match, cause, None)

        return self._get(key, _build)

    def _btb_walk(self, coupled, entries, assoc, allocate, interval):
        """Exact scalar replay of an associative (or coupled) BTB.

        LRU stacks and the coupled 2-bit counters make lookups
        order-sensitive, so this walks breaks only (not every event)
        with the reference's one-block ``pending`` hand-off: the write
        from break *i* applies at event *i + 1* unless a flush lands
        first — and a flush erases an applied write anyway, so each
        flush simply clears the sets and drops the pending write.
        """
        key = ("fe-btb-loop", coupled, entries, assoc, allocate or "", interval)

        def _build():
            br = self.breaks(interval)
            _, flush_events = self.flush(interval)
            nb = br.n
            n_sets = entries // assoc
            set_bits = n_sets.bit_length() - 1
            words = br.word.tolist()
            kinds = br.kind.tolist()
            takens = br.taken.tolist()
            targets = br.target.tolist()
            events = br.events.tolist()
            mech_of = _KIND_TO_MECH.tolist()
            mech = np.zeros(nb, dtype=np.int64)
            match = np.zeros(nb, dtype=bool)
            implied = np.zeros(nb, dtype=bool) if coupled else None
            sets = [[] for _ in range(n_sets)]
            pending = None
            flush_cursor = 0
            n_flushes = len(flush_events)

            # entry layout: [tag, target, kind, counter]
            def _record_taken(row, tag, kind, target):
                for position, ent in enumerate(row):
                    if ent[0] == tag:
                        ent[1] = target
                        ent[2] = kind
                        if position:
                            del row[position]
                            row.insert(0, ent)
                        if coupled:
                            ent[3] = 2 if ent[3] is None else min(3, ent[3] + 1)
                        return
                ent = [tag, target, kind, 2 if coupled else None]
                row.insert(0, ent)
                if len(row) > assoc:
                    row.pop()

            def _apply(word, kind, taken, target):
                row = sets[word & (n_sets - 1)]
                tag = word >> set_bits
                if taken:
                    _record_taken(row, tag, kind, target)
                elif coupled:
                    for ent in row:
                        if ent[0] == tag:
                            if ent[3] is not None and ent[3] > 0:
                                ent[3] -= 1
                            break
                elif allocate == "all" and target:
                    _record_taken(row, tag, kind, target)

            for j in range(nb):
                event = events[j]
                if flush_cursor < n_flushes and flush_events[flush_cursor] <= event:
                    while (
                        flush_cursor < n_flushes
                        and flush_events[flush_cursor] <= event
                    ):
                        flush_cursor += 1
                    sets = [[] for _ in range(n_sets)]
                    pending = None
                if pending is not None:
                    _apply(*pending)
                    pending = None
                word = words[j]
                row = sets[word & (n_sets - 1)]
                tag = word >> set_bits
                for position, ent in enumerate(row):
                    if ent[0] == tag:
                        if position:
                            del row[position]
                            row.insert(0, ent)
                        mech[j] = mech_of[ent[2]]
                        match[j] = ent[1] == targets[j]
                        if coupled:
                            implied[j] = (
                                ent[2] == _CONDITIONAL
                                and ent[3] is not None
                                and ent[3] >= 2
                            )
                        break
                pending = (word, kinds[j], takens[j], targets[j])
            if coupled:
                # the coupled BTB's match cause distinguishes a missed
                # lookup (frontend-miss) from a stale stored target
                cause = np.where(
                    mech == 0, _C_FRONTEND_MISS, _C_BTB_WRONG_TARGET
                )
            else:
                cause = np.full(nb, _C_BTB_WRONG_TARGET, dtype=np.int64)
            return _FrontendReplay(mech, match, cause, implied)

        return self._get(key, _build)

    def _table_replay(self, config):
        """Vectorised NLS table / Steely–Sager replay (PC-indexed
        last-write-wins slots; the stored *way* is the next event's
        first-access way, matching the engine's deferred update)."""
        frontend = config.frontend
        entries = config.entries
        geometry = config.geometry
        replacement = config.cache_replacement
        interval = config.flush_interval
        key = (
            "fe-table", frontend, entries, _geom_key(geometry),
            replacement, interval,
        )

        def _build():
            br = self.breaks(interval)
            nb = br.n
            slot_key = br.epoch * entries + (br.word & (entries - 1))
            # one sorted index answers both queries: the type field
            # (last write of any kind) and the line field (last
            # *taken* write), under the one-block visibility delay
            order = self._orders.pop(("table", entries, interval), None)
            slot_index = kernels.LastWriteIndex(
                slot_key, br.events, order=order
            )
            slot_pos = slot_index.positions(slot_key, br.qtime)
            last_any = slot_index.resolve(slot_pos)
            has_entry = last_any >= 0
            slot_kind = br.kind[np.maximum(last_any, 0)]
            mech = np.where(has_entry, _KIND_TO_MECH[slot_kind], 0)
            lf_mask = (1 << geometry.line_field_bits) - 1
            target_lf = (br.target >> 2) & lf_mask
            # line field: only taken writes (Steely–Sager: indirect
            # branches write the shared goto register instead)
            if frontend == "steely-sager":
                line_flag = br.taken & (br.kind != _INDIRECT)
            else:
                line_flag = br.taken
            filtered = slot_index.filtered_last(line_flag)
            last_line_w = np.where(
                slot_pos >= 0, filtered[np.maximum(slot_pos, 0)], -1
            )
            has_line = last_line_w >= 0
            safe_line = np.maximum(last_line_w, 0)
            stored_lf = np.where(
                has_line, (br.target[safe_line] >> 2) & lf_mask, 0
            )
            nw = self.next_way(geometry, replacement, interval)
            stored_way = np.where(has_line, nw[safe_line], 0)
            if frontend == "steely-sager":
                indirect_slot = has_entry & (slot_kind == _INDIRECT)
                goto_writers = np.nonzero(
                    br.taken & (br.kind == _INDIRECT)
                )[0]
                if len(goto_writers):
                    last_goto = kernels.last_write_lookup(
                        br.epoch[goto_writers],
                        br.events[goto_writers],
                        br.epoch,
                        br.qtime,
                    )
                    goto_valid = last_goto >= 0
                    goto_lf = np.where(
                        goto_valid,
                        (br.target[goto_writers[np.maximum(last_goto, 0)]] >> 2)
                        & lf_mask,
                        0,
                    )
                else:
                    goto_valid = np.zeros(nb, dtype=bool)
                    goto_lf = np.zeros(nb, dtype=np.int64)
                stored_lf = np.where(indirect_slot, goto_lf, stored_lf)
                # indirect-marked slot with an invalid goto register
                # yields an INVALID prediction (no mechanism at all)
                mech = np.where(indirect_slot & ~goto_valid, 0, mech)
            resident, t_way, _ = self.target_probe(
                geometry, replacement, interval
            )
            lf_eq = stored_lf == target_lf
            if geometry.associativity > 1:
                way_ok = t_way == stored_way
            else:
                way_ok = np.ones(nb, dtype=bool)
            fe_match = lf_eq & resident & way_ok
            fe_cause = np.where(
                ~lf_eq,
                _C_NLS_WRONG_LINE,
                np.where(~resident, _C_NLS_DISPLACED, _C_NLS_WRONG_SET),
            )
            return _FrontendReplay(mech, fe_match, fe_cause, None)

        return self._get(key, _build)

    def _frame_replay(self, flavor, per_line, geometry, replacement, interval):
        """Vectorised line-coupled replay: partitioned NLS cache or
        Johnson successor index.  Both address a fixed slot by
        instruction offset within a (set, way, fill-generation) frame,
        so last-write-wins queries over frame-keyed slots are exact."""
        key = (
            "fe-frame", flavor, per_line, _geom_key(geometry),
            replacement, interval,
        )

        def _build():
            br = self.breaks(interval)
            nb = br.n
            fb = self._frame_base(geometry, replacement, interval)
            widx = fb.widx
            assoc = geometry.associativity
            resident, t_way, _ = self.target_probe(
                geometry, replacement, interval
            )
            if len(widx) == 0:
                mech = np.zeros(nb, dtype=np.int64)
                stored_lf = np.zeros(nb, dtype=np.int64)
                stored_way = np.zeros(nb, dtype=np.int64)
                has_entry = np.zeros(nb, dtype=bool)
            else:
                slice_ = geometry.instructions_per_line // per_line
                bslot = fb.boff // slice_
                look_key = fb.look_frame * per_line + bslot
                upd_key = fb.upd_frame * per_line + bslot[widx]
                order = self._orders.pop(
                    (
                        "frame", _geom_key(geometry), replacement,
                        interval, per_line,
                    ),
                    None,
                )
                windex = kernels.LastWriteIndex(
                    upd_key, fb.times, order=order
                )
                pos = windex.positions(look_key, fb.look_time)
                last_any = windex.resolve(pos)
                has_entry = last_any >= 0
                wb = widx[np.maximum(last_any, 0)]
                nw = self.next_way(geometry, replacement, interval)
                if flavor == "johnson":
                    # Johnson slots store target or fall-through line
                    # on every write; the way is always the next way
                    line_val = np.where(br.taken, fb.target_lf, fb.ft_lf)
                    mech = np.where(has_entry, 3, 0)
                    stored_lf = np.where(has_entry, line_val[wb], 0)
                    stored_way = np.where(has_entry, nw[wb], 0)
                else:  # partitioned NLS cache
                    mech = np.where(
                        has_entry, _KIND_TO_MECH[br.kind[wb]], 0
                    )
                    filtered = windex.filtered_last(br.taken[widx])
                    last_line = np.where(
                        pos >= 0, filtered[np.maximum(pos, 0)], -1
                    )
                    has_line = last_line >= 0
                    twb = widx[np.maximum(last_line, 0)]
                    stored_lf = np.where(has_line, fb.target_lf[twb], 0)
                    stored_way = np.where(has_line, nw[twb], 0)
            lf_eq = stored_lf == fb.target_lf
            if assoc > 1:
                way_ok = t_way == stored_way
            else:
                way_ok = np.ones(nb, dtype=bool)
            if flavor == "johnson":
                implied = has_entry & (stored_lf != fb.ft_lf)
                fe_match = has_entry & lf_eq & resident & way_ok
                fe_cause = np.where(
                    ~has_entry,
                    _C_FRONTEND_MISS,
                    np.where(
                        ~lf_eq,
                        _C_NLS_WRONG_LINE,
                        np.where(
                            ~resident, _C_NLS_DISPLACED, _C_NLS_WRONG_SET
                        ),
                    ),
                )
                return _FrontendReplay(mech, fe_match, fe_cause, implied)
            fe_match = lf_eq & resident & way_ok
            fe_cause = np.where(
                ~lf_eq,
                _C_NLS_WRONG_LINE,
                np.where(~resident, _C_NLS_DISPLACED, _C_NLS_WRONG_SET),
            )
            return _FrontendReplay(mech, fe_match, fe_cause, None)

        return self._get(key, _build)

    def _nls_lru_replay(self, per_line, geometry, replacement, interval):
        """Exact scalar replay of the LRU-slotted NLS cache.

        Slot choice depends on each frame's recency order, which every
        lookup mutates — inherently order-sensitive, so this merges
        the update and lookup streams by access time (updates first at
        ties, matching the apply-after-first-access hand-off) and
        walks them against lazily created frame states."""
        key = (
            "fe-frame", "lru", per_line, _geom_key(geometry),
            replacement, interval,
        )

        def _build():
            br = self.breaks(interval)
            nb = br.n
            fb = self._frame_base(geometry, replacement, interval)
            widx = fb.widx
            n_upd = len(widx)
            resident, t_way, _ = self.target_probe(
                geometry, replacement, interval
            )
            nw = self.next_way(geometry, replacement, interval)
            mech = np.zeros(nb, dtype=np.int64)
            stored_lf = np.zeros(nb, dtype=np.int64)
            stored_way = np.zeros(nb, dtype=np.int64)
            seq_key = np.concatenate([fb.upd_frame, fb.look_frame])
            seq_off = np.concatenate([fb.boff[widx], fb.boff])
            seq_time = np.concatenate([fb.times, fb.look_time])
            is_look = np.concatenate(
                [
                    np.zeros(n_upd, dtype=np.int64),
                    np.ones(nb, dtype=np.int64),
                ]
            )
            merged = np.lexsort((is_look, seq_time))
            keys = seq_key.tolist()
            offsets = seq_off.tolist()
            kinds_u = br.kind[widx].tolist()
            taken_u = br.taken[widx].tolist()
            target_lf_u = fb.target_lf[widx].tolist()
            nw_u = nw[widx].tolist()
            mech_of = _KIND_TO_MECH.tolist()
            # frame state: [offsets, types, lines, ways, recency]
            states: dict = {}
            for s in merged.tolist():
                frame = keys[s]
                offset = offsets[s]
                if s < n_upd:  # update
                    state = states.get(frame)
                    if state is None:
                        state = states[frame] = [
                            [-1] * per_line,
                            [0] * per_line,
                            [0] * per_line,
                            [0] * per_line,
                            list(range(per_line)),
                        ]
                    s_off, s_typ, s_lin, s_way, s_rec = state
                    try:
                        slot = s_off.index(offset)
                    except ValueError:
                        slot = s_rec[-1]
                    s_typ[slot] = mech_of[kinds_u[s]]
                    s_off[slot] = offset
                    if taken_u[s]:
                        s_lin[slot] = target_lf_u[s]
                        s_way[slot] = nw_u[s]
                    if s_rec[0] != slot:
                        s_rec.remove(slot)
                        s_rec.insert(0, slot)
                else:  # lookup
                    j = s - n_upd
                    state = states.get(frame)
                    if state is None:
                        continue  # untouched frame: INVALID, no touch
                    s_off, s_typ, s_lin, s_way, s_rec = state
                    try:
                        slot = s_off.index(offset)
                    except ValueError:
                        continue  # no slot caches this offset
                    if s_rec[0] != slot:
                        s_rec.remove(slot)
                        s_rec.insert(0, slot)
                    mech[j] = s_typ[slot]
                    stored_lf[j] = s_lin[slot]
                    stored_way[j] = s_way[slot]
            lf_eq = stored_lf == fb.target_lf
            if geometry.associativity > 1:
                way_ok = t_way == stored_way
            else:
                way_ok = np.ones(nb, dtype=bool)
            fe_match = lf_eq & resident & way_ok
            fe_cause = np.where(
                ~lf_eq,
                _C_NLS_WRONG_LINE,
                np.where(~resident, _C_NLS_DISPLACED, _C_NLS_WRONG_SET),
            )
            return _FrontendReplay(mech, fe_match, fe_cause, None)

        return self._get(key, _build)

    # --- batched preparation ------------------------------------------

    def prepare(self, configs) -> None:
        """Pre-compute shared sort orders for a batch of sweep cells.

        Groups the configs' table-structure families (same key layout,
        different table size) and runs **one** stacked stable sort per
        family (:func:`~repro.predictors.kernels.batched_orders`)
        instead of one argsort per cell; the per-variant orders are
        stashed for the replay builders to consume (one-shot).  Purely
        an optimisation — replays build their own order when none was
        prepared — so unknown or unsupported configs are skipped.
        """
        gshare_fams: dict = {}
        table_fams: dict = {}
        btb_fams: dict = {}
        frame_fams: dict = {}
        for config in configs:
            if fallback_reason(config) is not None:
                continue
            interval = config.flush_interval
            frontend = config.frontend
            if frontend not in ("johnson", "coupled-btb"):
                gshare_fams.setdefault(interval, set()).add(
                    config.pht_entries
                )
            if frontend in ("nls-table", "steely-sager"):
                table_fams.setdefault(interval, set()).add(config.entries)
            elif frontend == "btb" and config.btb_assoc == 1:
                btb_fams.setdefault(
                    (config.btb_allocate, interval), set()
                ).add(config.entries)
            elif frontend == "johnson" or (
                frontend == "nls-cache"
                and config.nls_cache_policy == "partition"
            ):
                geometry = config.geometry
                per_line = config.predictors_per_line
                if not 1 <= per_line <= geometry.instructions_per_line:
                    continue
                fkey = (
                    _geom_key(geometry), config.cache_replacement, interval
                )
                entry = frame_fams.setdefault(fkey, (geometry, set()))
                entry[1].add(per_line)
        for interval, sizes in table_fams.items():
            variants = sorted(sizes)
            if len(variants) < 2:
                continue
            br = self.breaks(interval)
            stacked = np.stack(
                [br.epoch * e + (br.word & (e - 1)) for e in variants]
            )
            for e, order in zip(variants, kernels.batched_orders(stacked)):
                self._orders[("table", e, interval)] = order
        for (allocate, interval), sizes in btb_fams.items():
            variants = sorted(sizes)
            if len(variants) < 2:
                continue
            br = self.breaks(interval)
            if allocate == "all":
                write_mask = br.taken | (br.target != 0)
            else:
                write_mask = br.taken
            writers = np.nonzero(write_mask)[0]
            if not len(writers):
                continue
            stacked = np.stack(
                [
                    br.epoch[writers] * e + (br.word[writers] & (e - 1))
                    for e in variants
                ]
            )
            for e, order in zip(variants, kernels.batched_orders(stacked)):
                self._orders[("btb", allocate, e, interval)] = order
        for (gk, replacement, interval), (geometry, pls) in frame_fams.items():
            variants = sorted(pls)
            if len(variants) < 2:
                continue
            fb = self._frame_base(geometry, replacement, interval)
            if not len(fb.widx):
                continue
            ipl = geometry.instructions_per_line
            boff_w = fb.boff[fb.widx]
            stacked = np.stack(
                [
                    fb.upd_frame * pl + boff_w // (ipl // pl)
                    for pl in variants
                ]
            )
            for pl, order in zip(variants, kernels.batched_orders(stacked)):
                self._orders[("frame", gk, replacement, interval, pl)] = order
        for interval, sizes in gshare_fams.items():
            variants = sorted(sizes)
            if len(variants) < 2:
                continue
            stacked = np.stack(
                [
                    self._gshare_keys(e, interval).cell_key
                    for e in variants
                ]
            )
            for e, order in zip(variants, kernels.batched_orders(stacked)):
                self._orders[("gshare", e, interval)] = order


# === engine ===========================================================


class FastEngine:
    """Vectorised drop-in for :class:`~repro.fetch.engine.FetchEngine`.

    Built from an :class:`~repro.harness.config.ArchitectureConfig`
    (via ``config.build()`` when ``config.engine == "fast"``); exposes
    the same :meth:`run` contract and produces identical
    :class:`~repro.metrics.report.SimulationReport` objects.

    For batch execution the harness attaches a shared
    :class:`TraceReplayContext` (:meth:`attach_context`) so all cells
    of a sweep group reuse each other's sub-replays; a bare
    ``engine.run(trace)`` builds a private context and behaves exactly
    as before.
    """

    engine_name = "fast"

    def __init__(self, config) -> None:
        reason = fallback_reason(config)
        if reason is not None:
            raise ValueError(
                f"config not supported by the fast engine: {reason.value}"
            )
        # build (and discard) the reference structures so invalid
        # parameter combinations raise exactly the reference's errors
        config._build_reference()
        self.config = config
        self.penalties = config.penalties
        self.flush_interval = config.flush_interval
        self.frontend_name = _frontend_name(config)
        self.uses_ras = config.frontend != "johnson"
        self.engine_class = engine_class(config)
        self.attribution = (
            AttributionCollector(sample=config.attribution_sample)
            if config.attribution
            else None
        )
        self._context: Optional[TraceReplayContext] = None

    def attach_context(self, context: TraceReplayContext) -> None:
        """Attach a shared batch context (used when the next
        :meth:`run` call replays ``context.trace``)."""
        self._context = context

    # ------------------------------------------------------------------

    def run(
        self,
        trace: Trace,
        label: Optional[str] = None,
        warmup_fraction: float = 0.0,
    ) -> SimulationReport:
        """Simulate *trace* and return the derived report.

        Mirrors ``FetchEngine.run`` exactly: same warmup semantics,
        same telemetry span and per-phase counters, same report
        construction — the differential-equivalence tests assert the
        results are identical object-for-object.
        """
        context = self._context
        if context is None or context.trace is not trace:
            context = TraceReplayContext(trace)
        registry = get_registry()
        run_label = label if label is not None else self.frontend_name
        with registry.span(
            "engine.run",
            label=run_label,
            program=trace.name,
            frontend=self.frontend_name,
        ):
            counters, stats, accesses = self._simulate(
                context, warmup_fraction
            )
        if registry.enabled:
            kinds = trace.kinds
            blocks = len(kinds)
            predicts = blocks - kinds.count(_NOT_A_BRANCH)
            if self.uses_ras:
                ras_ops = kinds.count(_CALL) + kinds.count(_RETURN)
            else:
                ras_ops = 0
            registry.counter("engine.blocks_decoded").add(blocks)
            registry.counter("engine.icache_probes").add(accesses)
            registry.counter("engine.frontend_predicts").add(predicts)
            registry.counter("engine.ras_ops").add(ras_ops)
        collector = self.attribution
        if collector is not None and registry.enabled:
            for cause_name, count in collector.causes.items():
                if count:
                    registry.counter(f"engine.cause.{cause_name}").add(count)
            registry.histogram("engine.penalty_gap").absorb(
                collector.gap_histogram
            )
        return SimulationReport.from_counters(
            counters,
            label=run_label,
            program=trace.name,
            penalties=self.penalties,
            frontend_stats=stats,
            attribution=collector.snapshot() if collector is not None else None,
        )

    # ------------------------------------------------------------------

    def _empty_stats(self) -> Optional[dict]:
        """The mismatch-cause histogram an untouched front-end reports."""
        if self.config.frontend in ("nls-table", "steely-sager", "nls-cache"):
            return {cause: 0 for cause in MISMATCH_CAUSES}
        return None

    def _simulate(
        self, context: TraceReplayContext, warmup_fraction: float = 0.0
    ) -> Tuple[SimulationCounters, Optional[dict], int]:
        """Replay the context's trace; returns (counters, stats, accesses)."""
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        config = self.config
        collector = self.attribution
        if collector is not None:
            collector.reset()
        counters = SimulationCounters()
        n = context.n_events
        if n == 0:
            return counters, self._empty_stats(), 0
        interval = self.flush_interval
        geometry = config.geometry
        replacement = config.cache_replacement
        warmup_boundary = int(n * warmup_fraction)

        # --- instruction cache ----------------------------------------
        cache = context.icache(geometry, replacement, interval)
        base_access = (
            int(cache.first_access[warmup_boundary]) if warmup_boundary else 0
        )
        counters.icache_accesses = cache.total - base_access
        counters.icache_misses = int(
            np.count_nonzero(~cache.hit[base_access:])
        )
        counters.n_instructions = int(context.counts[warmup_boundary:].sum())

        # --- break columns --------------------------------------------
        br = context.breaks(interval)
        nb = br.n
        if nb == 0:
            return counters, self._empty_stats(), cache.total
        bkind = br.kind
        btaken = br.taken
        btarget = br.target

        # --- front-end replay -----------------------------------------
        fe = context.frontend_replay(config)
        mech = fe.mech
        fe_match = fe.match
        fe_cause = fe.cause
        implicit = config.frontend in ("johnson", "coupled-btb")

        # --- direction predictor --------------------------------------
        consult_pred = np.zeros(nb, dtype=bool)
        if implicit:
            # the PHT exists but is never trained: every consult by a
            # conditional-typed entry sees the weakly-not-taken init
            pht_pred = None
        else:
            gs = context.gshare(config.pht_entries, interval)
            pht_pred = gs.pht_pred
            # non-conditional breaks whose entry is conditional-typed
            # consult (but never train) the PHT at its current state
            consults = np.nonzero((bkind != _CONDITIONAL) & (mech == 2))[0]
            if len(consults) and len(gs.cond_positions):
                events = br.events[consults]
                prior = np.searchsorted(gs.cond_events, events, side="left") - 1
                prior_safe = np.maximum(prior, 0)
                in_epoch = (prior >= 0) & (
                    gs.cond_epoch[prior_safe] == br.epoch[consults]
                )
                history_at = np.where(
                    in_epoch, gs.history_after[prior_safe], 0
                )
                query_cell = (br.word[consults] ^ history_at) & gs.mask
                last_update = gs.cell_index.query(
                    br.epoch[consults] * gs.entries + query_cell, events - 1
                )
                state = np.where(
                    last_update >= 0,
                    gs.state_after[np.maximum(last_update, 0)],
                    1,
                )
                consult_pred[consults] = state >= 2

        # --- RAS replay -----------------------------------------------
        ras_pop = (
            context.ras(config.ras_entries, interval)
            if self.uses_ras
            else None
        )

        # --- classification (the engine's §5.2 rule table) ------------
        misfetch = np.zeros(nb, dtype=bool)
        mispredict = np.zeros(nb, dtype=bool)
        cause = np.zeros(nb, dtype=np.int64)
        fe_called = np.zeros(nb, dtype=bool)

        is_cond = bkind == _CONDITIONAL
        is_direct = (bkind == _UNCONDITIONAL) | (bkind == _CALL)
        is_return = bkind == _RETURN
        is_indirect = bkind == _INDIRECT
        mech_none = mech == 0
        mech_return = mech == 1
        mech_cond = mech == 2
        mech_other = mech == 3
        miss_code = np.where(mech_none, _C_FRONTEND_MISS, _C_NLS_TYPE_MISMATCH)

        def _classify(mask, outcome, code):
            outcome |= mask
            np.copyto(cause, code, where=mask)

        # conditionals: direction first, then the fetch path
        if implicit:
            direction_wrong = is_cond & (fe.implied != btaken)
            dir_code = np.where(mech_none, _C_FRONTEND_MISS, _C_DIRECTION)
            _classify(direction_wrong, mispredict, dir_code)
            steered = is_cond & ~direction_wrong & btaken
            fe_called |= steered
            _classify(steered & ~fe_match, misfetch, fe_cause)
        else:
            direction_wrong = is_cond & (pht_pred != btaken)
            _classify(direction_wrong, mispredict, _C_DIRECTION)
            cond_taken_right = is_cond & ~direction_wrong & btaken
            entry_steered = cond_taken_right & (mech_cond | mech_other)
            fe_called |= entry_steered
            _classify(entry_steered & ~fe_match, misfetch, fe_cause)
            _classify(
                cond_taken_right & (mech_none | mech_return),
                misfetch,
                miss_code,
            )
            cond_nt = is_cond & ~direction_wrong & ~btaken
            _classify(
                cond_nt & (mech_other | mech_return),
                misfetch,
                _C_NLS_TYPE_MISMATCH,
            )

        # unconditional / call
        direct_other = is_direct & mech_other
        fe_called |= direct_other
        _classify(direct_other & ~fe_match, misfetch, fe_cause)
        direct_cond = is_direct & mech_cond
        _classify(direct_cond & ~consult_pred, misfetch, _C_NLS_TYPE_MISMATCH)
        direct_consulted = direct_cond & consult_pred
        fe_called |= direct_consulted
        _classify(direct_consulted & ~fe_match, misfetch, fe_cause)
        _classify(is_direct & (mech_none | mech_return), misfetch, miss_code)

        # returns
        if self.uses_ras:
            pop_matches = ras_pop == btarget
            _classify(
                is_return & mech_return & ~pop_matches,
                mispredict,
                _C_RAS_MISPOP,
            )
            return_unidentified = is_return & ~mech_return
            _classify(return_unidentified & pop_matches, misfetch, miss_code)
            _classify(
                return_unidentified & ~pop_matches, mispredict, _C_RAS_MISPOP
            )
        else:
            # no RAS: the front-end's line prediction stands alone
            fe_called |= is_return
            _classify(is_return & ~fe_match, mispredict, fe_cause)

        # indirect: like unconditional, but failures are mispredicts
        indirect_other = is_indirect & mech_other
        fe_called |= indirect_other
        _classify(indirect_other & ~fe_match, mispredict, fe_cause)
        indirect_cond = is_indirect & mech_cond
        _classify(
            indirect_cond & ~consult_pred, mispredict, _C_NLS_TYPE_MISMATCH
        )
        indirect_consulted = indirect_cond & consult_pred
        fe_called |= indirect_consulted
        _classify(indirect_consulted & ~fe_match, mispredict, fe_cause)
        _classify(is_indirect & (mech_none | mech_return), mispredict, miss_code)

        # --- front-end mismatch histogram (whole run, warmup incl.) ---
        stats = self._empty_stats()
        if stats is not None:
            failed = fe_called & ~fe_match
            for code, bucket in _FAIL_BUCKETS.items():
                stats[bucket] = int(
                    np.count_nonzero(failed & (fe_cause == code))
                )

        # --- counters (post-warmup events only) -----------------------
        counted = br.events >= warmup_boundary
        executed = np.bincount(bkind[counted], minlength=6)
        misfetched = np.bincount(bkind[counted & misfetch], minlength=6)
        mispredicted = np.bincount(bkind[counted & mispredict], minlength=6)
        for kind, kind_counter in counters.by_kind.items():
            kind_counter.executed = int(executed[int(kind)])
            kind_counter.misfetched = int(misfetched[int(kind)])
            kind_counter.mispredicted = int(mispredicted[int(kind)])

        # --- attribution replay ---------------------------------------
        if collector is not None:
            observe = collector.observe
            outcome = misfetch.astype(np.int64) + 2 * mispredict.astype(
                np.int64
            )
            sel = np.nonzero(counted)[0]
            pcs = br.pc[sel].tolist()
            kinds_list = bkind[sel].tolist()
            takens_list = btaken[sel].tolist()
            outcomes = outcome[sel].tolist()
            codes = cause[sel].tolist()
            if ras_pop is not None:
                underflows = (ras_pop[sel] < 0).tolist()
            else:
                underflows = [False] * len(sel)
            for pc, kind, taken, out, code, under in zip(
                pcs, kinds_list, takens_list, outcomes, codes, underflows
            ):
                detail = {"underflow": under} if code == _C_RAS_MISPOP else None
                observe(pc, kind, taken, out, _CAUSE_STRINGS[code], detail)

        return counters, stats, cache.total

"""Vectorised trace-replay engine.

Produces reports **identical** to :class:`repro.fetch.engine.FetchEngine`
for the configurations it supports, but replays the trace with NumPy
array kernels instead of one Python object call per branch.

Why this is possible at all: with wrong-path modelling off (the
paper's configuration), predictions never feed back into state —
every structure's evolution (instruction cache, PHT, BTB, NLS table,
RAS, global history) is a pure function of the trace.  The simulation
therefore decomposes into independent exact per-structure replays
followed by one vectorised classification pass:

1. **Flush epochs** — context-switch boundaries partition the trace;
   all replays key their state on ``(epoch, slot)`` so a flush is just
   a fresh key space, never a scan.
2. **Instruction cache** (direct-mapped) — an access hits iff the
   previous access to the same ``(epoch, set)`` carried the same tag
   (:func:`~repro.predictors.kernels.previous_same_key`); residency
   probes are last-access-before queries
   (:func:`~repro.predictors.kernels.last_write_lookup`).
3. **Front-end tables** (BTB / NLS / Steely–Sager) — last-write-wins
   slots under the engine's one-block update delay: the write from
   break *i* is visible to queries at breaks *j > i* in the same
   epoch, and a flush at ``i + 1`` drops it entirely (matching the
   reference's ``pending`` hand-off exactly).
4. **gshare PHT** — per-conditional history registers come from
   shifted masked adds; 2-bit counters are replayed exactly with a
   segmented clamp-add scan
   (:func:`~repro.predictors.kernels.counter_scan`).
5. **RAS** — a compact Python walk over calls/returns/flushes only
   (a tiny fraction of events).
6. **Classification** — the engine's §5.2 rule table, applied as
   boolean masks; the attribution collector (when enabled) replays
   the per-break observation stream so its snapshot is byte-identical.

Configurations outside the supported matrix (associative caches,
NLS-cache/Johnson/coupled-BTB front-ends, non-gshare direction
predictors, wrong-path modelling) fall back to the reference engine —
see :func:`unsupported_reason` and ``ArchitectureConfig.build``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.fetch.attribution import (
    CAUSE_BTB_WRONG_TARGET,
    CAUSE_DIRECTION,
    CAUSE_FRONTEND_MISS,
    CAUSE_NLS_DISPLACED,
    CAUSE_NLS_TYPE_MISMATCH,
    CAUSE_NLS_WRONG_LINE,
    CAUSE_RAS_MISPOP,
    AttributionCollector,
)
from repro.core.nls_entry import MISMATCH_CAUSES
from repro.isa.branches import BranchKind
from repro.metrics.counters import SimulationCounters
from repro.metrics.report import SimulationReport
from repro.predictors import kernels
from repro.telemetry.core import get_registry
from repro.workloads.trace import Trace

_NOT_A_BRANCH = int(BranchKind.NOT_A_BRANCH)
_CONDITIONAL = int(BranchKind.CONDITIONAL)
_UNCONDITIONAL = int(BranchKind.UNCONDITIONAL)
_CALL = int(BranchKind.CALL)
_RETURN = int(BranchKind.RETURN)
_INDIRECT = int(BranchKind.INDIRECT)

#: branch kind -> NLS type / mechanism value (0 stands in for "no
#: entry"; the non-zero values are shared with NLSEntryType)
_KIND_TO_MECH = np.array([0, 2, 3, 3, 1, 3], dtype=np.int64)

#: integer cause codes used by the vectorised classification pass;
#: index 0 is "correct" (no cause)
_CAUSE_STRINGS: Tuple[Optional[str], ...] = (
    None,
    CAUSE_DIRECTION,
    CAUSE_FRONTEND_MISS,
    CAUSE_BTB_WRONG_TARGET,
    CAUSE_NLS_WRONG_LINE,
    CAUSE_NLS_DISPLACED,
    CAUSE_NLS_TYPE_MISMATCH,
    CAUSE_RAS_MISPOP,
)
_C_DIRECTION = 1
_C_FRONTEND_MISS = 2
_C_BTB_WRONG_TARGET = 3
_C_NLS_WRONG_LINE = 4
_C_NLS_DISPLACED = 5
_C_NLS_TYPE_MISMATCH = 6
_C_RAS_MISPOP = 7

#: front-ends with a vectorised replay
_SUPPORTED_FRONTENDS = ("btb", "nls-table", "steely-sager", "oracle", "fall-through")


def unsupported_reason(config) -> Optional[str]:
    """Why *config* cannot run on the fast engine (``None`` = it can).

    The harness uses this to fall back to the reference engine
    transparently; the reason string is stamped into the run manifest
    so fallbacks are observable.
    """
    if config.frontend not in _SUPPORTED_FRONTENDS:
        return f"frontend {config.frontend!r} has no vectorised replay"
    if config.cache_assoc != 1:
        return "associative instruction caches need the reference engine"
    if config.frontend == "btb" and config.btb_assoc != 1:
        return "associative BTBs need the reference engine"
    if config.direction != "gshare":
        return f"direction predictor {config.direction!r} has no vectorised replay"
    if config.model_wrong_path:
        return "wrong-path modelling feeds predictions back into cache state"
    return None


def _frontend_name(config) -> str:
    """The reference front-end's ``name`` for this config (labels)."""
    if config.frontend == "btb":
        return f"btb-{config.entries}e-{config.btb_assoc}w"
    if config.frontend == "nls-table":
        return f"nls-table-{config.entries}e"
    if config.frontend == "steely-sager":
        return f"steely-sager-{config.entries}e"
    return config.frontend


class FastEngine:
    """Vectorised drop-in for :class:`~repro.fetch.engine.FetchEngine`.

    Built from an :class:`~repro.harness.config.ArchitectureConfig`
    (via ``config.build()`` when ``config.engine == "fast"``); exposes
    the same :meth:`run` contract and produces identical
    :class:`~repro.metrics.report.SimulationReport` objects.
    """

    engine_name = "fast"

    def __init__(self, config) -> None:
        reason = unsupported_reason(config)
        if reason is not None:
            raise ValueError(f"config not supported by the fast engine: {reason}")
        self.config = config
        self.penalties = config.penalties
        self.flush_interval = config.flush_interval
        self.frontend_name = _frontend_name(config)
        self.uses_ras = True
        self.attribution = (
            AttributionCollector(sample=config.attribution_sample)
            if config.attribution
            else None
        )

    # ------------------------------------------------------------------

    def run(
        self,
        trace: Trace,
        label: Optional[str] = None,
        warmup_fraction: float = 0.0,
    ) -> SimulationReport:
        """Simulate *trace* and return the derived report.

        Mirrors ``FetchEngine.run`` exactly: same warmup semantics,
        same telemetry span and per-phase counters, same report
        construction — the differential-equivalence tests assert the
        results are identical object-for-object.
        """
        registry = get_registry()
        run_label = label if label is not None else self.frontend_name
        with registry.span(
            "engine.run",
            label=run_label,
            program=trace.name,
            frontend=self.frontend_name,
        ):
            counters, stats, accesses = self._simulate(trace, warmup_fraction)
        if registry.enabled:
            kinds = trace.kinds
            blocks = len(kinds)
            predicts = blocks - kinds.count(_NOT_A_BRANCH)
            ras_ops = kinds.count(_CALL) + kinds.count(_RETURN)
            registry.counter("engine.blocks_decoded").add(blocks)
            registry.counter("engine.icache_probes").add(accesses)
            registry.counter("engine.frontend_predicts").add(predicts)
            registry.counter("engine.ras_ops").add(ras_ops)
        collector = self.attribution
        if collector is not None and registry.enabled:
            for cause_name, count in collector.causes.items():
                if count:
                    registry.counter(f"engine.cause.{cause_name}").add(count)
            registry.histogram("engine.penalty_gap").absorb(collector.gap_histogram)
        return SimulationReport.from_counters(
            counters,
            label=run_label,
            program=trace.name,
            penalties=self.penalties,
            frontend_stats=stats,
            attribution=collector.snapshot() if collector is not None else None,
        )

    # ------------------------------------------------------------------

    def _empty_stats(self) -> Optional[dict]:
        """The mismatch-cause histogram an untouched front-end reports."""
        if self.config.frontend in ("nls-table", "steely-sager"):
            return {cause: 0 for cause in MISMATCH_CAUSES}
        return None

    def _flush_epochs(self, counts: np.ndarray) -> Tuple[np.ndarray, list]:
        """Per-event flush-epoch ids and the list of flush events.

        A flush triggers at the first event whose cumulative count
        since the previous flush reaches ``flush_interval``, *before*
        that event's fetches (so the event itself runs on cold state).
        """
        n = len(counts)
        interval = self.flush_interval
        flush_events: list = []
        epoch = np.zeros(n, dtype=np.int64)
        if interval is None or n == 0:
            return epoch, flush_events
        cumulative = np.cumsum(counts)
        base = 0
        while True:
            position = int(np.searchsorted(cumulative, base + interval, side="left"))
            if position >= n:
                break
            flush_events.append(position)
            base = int(cumulative[position])
        if flush_events:
            epoch = np.searchsorted(
                np.asarray(flush_events, dtype=np.int64),
                np.arange(n, dtype=np.int64),
                side="right",
            )
        return epoch, flush_events

    def _replay_ras(
        self,
        break_events: np.ndarray,
        break_kinds: np.ndarray,
        fall_throughs: np.ndarray,
        flush_events: list,
    ) -> np.ndarray:
        """Exact RAS replay: per-break popped address (-1 = underflow).

        Walks only calls, returns and flushes in event order — a tiny
        fraction of the trace — reproducing the circular buffer's
        overwrite-on-overflow behaviour.
        """
        popped = np.full(len(break_events), -1, dtype=np.int64)
        interesting = np.nonzero((break_kinds == _CALL) | (break_kinds == _RETURN))[0]
        capacity = self.config.ras_entries
        slots = [0] * capacity
        top = 0
        depth = 0
        flush_cursor = 0
        n_flushes = len(flush_events)
        events = break_events[interesting].tolist()
        kinds = break_kinds[interesting].tolist()
        values = fall_throughs[interesting].tolist()
        for i, event in enumerate(events):
            while flush_cursor < n_flushes and flush_events[flush_cursor] <= event:
                top = 0
                depth = 0
                flush_cursor += 1
            if kinds[i] == _CALL:
                slots[top] = values[i]
                top = (top + 1) % capacity
                if depth < capacity:
                    depth += 1
            else:  # RETURN: pop during classification
                if depth:
                    top = (top - 1) % capacity
                    depth -= 1
                    popped[interesting[i]] = slots[top]
        return popped

    # ------------------------------------------------------------------

    def _simulate(
        self, trace: Trace, warmup_fraction: float = 0.0
    ) -> Tuple[SimulationCounters, Optional[dict], int]:
        """Replay *trace*; returns (counters, frontend stats, accesses)."""
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        config = self.config
        collector = self.attribution
        if collector is not None:
            collector.reset()
        counters = SimulationCounters()
        packed = trace.packed()
        n = len(packed["starts"])
        if n == 0:
            return counters, self._empty_stats(), 0

        starts = packed["starts"]
        counts = packed["counts"]
        kinds = packed["kinds"].astype(np.int64)
        takens = packed["takens"]
        targets = packed["targets"]

        geometry = config.geometry
        line_bytes = geometry.line_bytes
        offset_bits = geometry.offset_bits
        n_sets = geometry.n_sets
        tag_shift = geometry.offset_bits + geometry.set_index_bits

        epoch, flush_events = self._flush_epochs(counts)
        warmup_boundary = int(n * warmup_fraction)

        # --- instruction cache replay (direct-mapped) -----------------
        branch_pc = starts + (counts - 1) * 4
        first_line = starts & ~(line_bytes - 1)
        last_line = branch_pc & ~(line_bytes - 1)
        lines_per_event = ((last_line - first_line) >> offset_bits) + 1
        row_ids, offsets, first_access = kernels.ragged_ranges(lines_per_event)
        access_addr = first_line[row_ids] + (offsets << offset_bits)
        access_set = (access_addr >> offset_bits) & (n_sets - 1)
        access_tag = access_addr >> tag_shift
        access_key = epoch[row_ids] * n_sets + access_set
        total_accesses = len(access_addr)
        access_index = kernels.LastWriteIndex(
            access_key, np.arange(total_accesses, dtype=np.int64)
        )
        previous = access_index.previous_in_key()
        access_hit = (previous >= 0) & (
            access_tag[np.maximum(previous, 0)] == access_tag
        )
        end_access = first_access + lines_per_event - 1

        base_access = int(first_access[warmup_boundary]) if warmup_boundary else 0
        counters.icache_accesses = total_accesses - base_access
        counters.icache_misses = int(np.count_nonzero(~access_hit[base_access:]))
        counters.n_instructions = int(counts[warmup_boundary:].sum())

        # --- break columns --------------------------------------------
        break_events = np.nonzero(kinds != _NOT_A_BRANCH)[0]
        nb = len(break_events)
        if nb == 0:
            return counters, self._empty_stats(), total_accesses
        bkind = kinds[break_events]
        btaken = np.asarray(takens[break_events], dtype=bool)
        btarget = targets[break_events]
        bpc = branch_pc[break_events]
        bft = bpc + 4
        bword = bpc >> 2
        bepoch = epoch[break_events]
        query_time = break_events - 1  # writes land one block late

        # --- front-end replay -----------------------------------------
        mech = np.zeros(nb, dtype=np.int64)
        fe_match = np.zeros(nb, dtype=bool)
        fe_cause = np.zeros(nb, dtype=np.int64)
        lf_eq = None  # NLS only: line-field comparison (for the histogram)
        frontend = config.frontend
        if frontend == "oracle":
            mech = _KIND_TO_MECH[bkind]
            fe_match[:] = True
        elif frontend == "btb":
            n_btb_sets = config.entries // config.btb_assoc
            set_bits = n_btb_sets.bit_length() - 1
            btb_set = bword & (n_btb_sets - 1)
            btb_tag = bword >> set_bits
            if config.btb_allocate == "all":
                write_mask = btaken | (btarget != 0)
            else:
                write_mask = btaken
            writers = np.nonzero(write_mask)[0]
            if len(writers):
                last = kernels.last_write_lookup(
                    bepoch[writers] * n_btb_sets + btb_set[writers],
                    break_events[writers],
                    bepoch * n_btb_sets + btb_set,
                    query_time,
                )
                source = writers[np.maximum(last, 0)]
                hit = (last >= 0) & (btb_tag[source] == btb_tag)
                mech = np.where(hit, _KIND_TO_MECH[bkind[source]], 0)
                fe_match = hit & (btarget[source] == btarget)
            fe_cause[:] = _C_BTB_WRONG_TARGET
        elif frontend in ("nls-table", "steely-sager"):
            entries = config.entries
            slot_key = bepoch * entries + (bword & (entries - 1))
            # one sorted index answers both queries: the type field
            # (last write of any kind) and the line field (last
            # *taken* write), under the one-block visibility delay
            slot_index = kernels.LastWriteIndex(slot_key, break_events)
            slot_pos = slot_index.positions(slot_key, query_time)
            last_any = slot_index.resolve(slot_pos)
            has_entry = last_any >= 0
            slot_kind = bkind[np.maximum(last_any, 0)]
            mech = np.where(has_entry, _KIND_TO_MECH[slot_kind], 0)
            line_field_mask = (1 << geometry.line_field_bits) - 1
            target_lf = (btarget >> 2) & line_field_mask
            # line field: only taken writes (Steely–Sager: indirect
            # branches write the shared goto register instead)
            if frontend == "steely-sager":
                line_flag = btaken & (bkind != _INDIRECT)
            else:
                line_flag = btaken
            filtered = slot_index.filtered_last(line_flag)
            last_line_w = np.where(
                slot_pos >= 0, filtered[np.maximum(slot_pos, 0)], -1
            )
            stored_lf = np.where(
                last_line_w >= 0,
                (btarget[np.maximum(last_line_w, 0)] >> 2) & line_field_mask,
                0,
            )
            if frontend == "steely-sager":
                indirect_slot = has_entry & (slot_kind == _INDIRECT)
                goto_writers = np.nonzero(btaken & (bkind == _INDIRECT))[0]
                if len(goto_writers):
                    last_goto = kernels.last_write_lookup(
                        bepoch[goto_writers],
                        break_events[goto_writers],
                        bepoch,
                        query_time,
                    )
                    goto_valid = last_goto >= 0
                    goto_lf = np.where(
                        goto_valid,
                        (btarget[goto_writers[np.maximum(last_goto, 0)]] >> 2)
                        & line_field_mask,
                        0,
                    )
                else:
                    goto_valid = np.zeros(nb, dtype=bool)
                    goto_lf = np.zeros(nb, dtype=np.int64)
                stored_lf = np.where(indirect_slot, goto_lf, stored_lf)
                # indirect-marked slot with an invalid goto register
                # yields an INVALID prediction (no mechanism at all)
                mech = np.where(indirect_slot & ~goto_valid, 0, mech)
            # residency probe at classification time (after this
            # event's own line fetches), reusing the access index
            probe_key = bepoch * n_sets + ((btarget >> offset_bits) & (n_sets - 1))
            last_access = access_index.query(probe_key, end_access[break_events])
            resident = (last_access >= 0) & (
                access_tag[np.maximum(last_access, 0)] == (btarget >> tag_shift)
            )
            lf_eq = stored_lf == target_lf
            fe_match = lf_eq & resident
            fe_cause = np.where(lf_eq, _C_NLS_DISPLACED, _C_NLS_WRONG_LINE)
        # fall-through: mech stays 0 everywhere

        # --- gshare replay --------------------------------------------
        pht_entries = config.pht_entries
        pht_mask = pht_entries - 1
        history_bits = pht_entries.bit_length() - 1
        cond_positions = np.nonzero(bkind == _CONDITIONAL)[0]
        cond_events = break_events[cond_positions]
        cond_taken = btaken[cond_positions].astype(np.int64)
        cond_epoch = bepoch[cond_positions]
        segment_first = kernels.segment_starts(cond_epoch)
        history_before = kernels.gshare_histories(
            cond_taken, segment_first, history_bits
        )
        history_after = ((history_before << 1) | cond_taken) & pht_mask
        cells = (bword[cond_positions] ^ history_before) & pht_mask
        cell_key = cond_epoch * pht_entries + cells
        order = np.argsort(cell_key, kind="stable")
        before_sorted, after_sorted = kernels.counter_scan(
            cell_key[order], cond_taken[order].astype(bool), 1, 3
        )
        state_before = np.empty(len(cond_positions), dtype=np.int64)
        state_before[order] = before_sorted
        state_after = np.empty(len(cond_positions), dtype=np.int64)
        state_after[order] = after_sorted
        pht_pred = np.zeros(nb, dtype=bool)
        pht_pred[cond_positions] = state_before >= 2

        # non-conditional breaks whose entry is conditional-typed
        # consult (but never train) the PHT at its current state
        consult_pred = np.zeros(nb, dtype=bool)
        consults = np.nonzero((bkind != _CONDITIONAL) & (mech == 2))[0]
        if len(consults) and len(cond_positions):
            events = break_events[consults]
            prior = np.searchsorted(cond_events, events, side="left") - 1
            prior_safe = np.maximum(prior, 0)
            in_epoch = (prior >= 0) & (cond_epoch[prior_safe] == bepoch[consults])
            history_at = np.where(in_epoch, history_after[prior_safe], 0)
            query_cell = (bword[consults] ^ history_at) & pht_mask
            # the counter scan already sorted cell_key — reuse it
            cell_index = kernels.LastWriteIndex(cell_key, cond_events, order=order)
            last_update = cell_index.query(
                bepoch[consults] * pht_entries + query_cell, events - 1
            )
            state = np.where(
                last_update >= 0, state_after[np.maximum(last_update, 0)], 1
            )
            consult_pred[consults] = state >= 2

        # --- RAS replay -----------------------------------------------
        ras_pop = self._replay_ras(break_events, bkind, bft, flush_events)

        # --- classification (the engine's §5.2 rule table) ------------
        misfetch = np.zeros(nb, dtype=bool)
        mispredict = np.zeros(nb, dtype=bool)
        cause = np.zeros(nb, dtype=np.int64)
        fe_called = np.zeros(nb, dtype=bool)

        is_cond = bkind == _CONDITIONAL
        is_direct = (bkind == _UNCONDITIONAL) | (bkind == _CALL)
        is_return = bkind == _RETURN
        is_indirect = bkind == _INDIRECT
        mech_none = mech == 0
        mech_return = mech == 1
        mech_cond = mech == 2
        mech_other = mech == 3
        miss_code = np.where(mech_none, _C_FRONTEND_MISS, _C_NLS_TYPE_MISMATCH)

        def _classify(mask, outcome, code):
            outcome |= mask
            np.copyto(cause, code, where=mask)

        # conditionals: direction first, then the fetch path
        direction_wrong = is_cond & (pht_pred != btaken)
        _classify(direction_wrong, mispredict, _C_DIRECTION)
        cond_taken_right = is_cond & ~direction_wrong & btaken
        entry_steered = cond_taken_right & (mech_cond | mech_other)
        fe_called |= entry_steered
        _classify(entry_steered & ~fe_match, misfetch, fe_cause)
        _classify(cond_taken_right & (mech_none | mech_return), misfetch, miss_code)
        cond_nt = is_cond & ~direction_wrong & ~btaken
        _classify(cond_nt & (mech_other | mech_return), misfetch, _C_NLS_TYPE_MISMATCH)

        # unconditional / call
        direct_other = is_direct & mech_other
        fe_called |= direct_other
        _classify(direct_other & ~fe_match, misfetch, fe_cause)
        direct_cond = is_direct & mech_cond
        _classify(direct_cond & ~consult_pred, misfetch, _C_NLS_TYPE_MISMATCH)
        direct_consulted = direct_cond & consult_pred
        fe_called |= direct_consulted
        _classify(direct_consulted & ~fe_match, misfetch, fe_cause)
        _classify(is_direct & (mech_none | mech_return), misfetch, miss_code)

        # returns (every supported front-end drives the RAS)
        pop_matches = ras_pop == btarget
        _classify(is_return & mech_return & ~pop_matches, mispredict, _C_RAS_MISPOP)
        return_unidentified = is_return & ~mech_return
        _classify(return_unidentified & pop_matches, misfetch, miss_code)
        _classify(return_unidentified & ~pop_matches, mispredict, _C_RAS_MISPOP)

        # indirect: like unconditional, but failures are mispredicts
        indirect_other = is_indirect & mech_other
        fe_called |= indirect_other
        _classify(indirect_other & ~fe_match, mispredict, fe_cause)
        indirect_cond = is_indirect & mech_cond
        _classify(indirect_cond & ~consult_pred, mispredict, _C_NLS_TYPE_MISMATCH)
        indirect_consulted = indirect_cond & consult_pred
        fe_called |= indirect_consulted
        _classify(indirect_consulted & ~fe_match, mispredict, fe_cause)
        _classify(is_indirect & (mech_none | mech_return), mispredict, miss_code)

        # --- front-end mismatch histogram (whole run, warmup incl.) ---
        stats = self._empty_stats()
        if stats is not None and lf_eq is not None:
            failed = fe_called & ~fe_match
            stats["line-field"] = int(np.count_nonzero(failed & ~lf_eq))
            stats["displaced"] = int(np.count_nonzero(failed & lf_eq))

        # --- counters (post-warmup events only) -----------------------
        counted = break_events >= warmup_boundary
        executed = np.bincount(bkind[counted], minlength=6)
        misfetched = np.bincount(bkind[counted & misfetch], minlength=6)
        mispredicted = np.bincount(bkind[counted & mispredict], minlength=6)
        for kind, kind_counter in counters.by_kind.items():
            kind_counter.executed = int(executed[int(kind)])
            kind_counter.misfetched = int(misfetched[int(kind)])
            kind_counter.mispredicted = int(mispredicted[int(kind)])

        # --- attribution replay ---------------------------------------
        if collector is not None:
            observe = collector.observe
            outcome = misfetch.astype(np.int64) + 2 * mispredict.astype(np.int64)
            sel = np.nonzero(counted)[0]
            pcs = bpc[sel].tolist()
            kinds_list = bkind[sel].tolist()
            takens_list = btaken[sel].tolist()
            outcomes = outcome[sel].tolist()
            codes = cause[sel].tolist()
            underflows = (ras_pop[sel] < 0).tolist()
            for pc, kind, taken, out, code, under in zip(
                pcs, kinds_list, takens_list, outcomes, codes, underflows
            ):
                detail = {"underflow": under} if code == _C_RAS_MISPOP else None
                observe(pc, kind, taken, out, _CAUSE_STRINGS[code], detail)

        return counters, stats, total_accesses

"""Mispredict/misfetch cause attribution (DESIGN.md §11).

The paper's headline numbers are aggregates (%MfB, %MpB, BEP), but
its *arguments* are causal: NLS wins because wrong-line / wrong-set
errors are cheap misfetches while BTB misses are expensive
mispredicts.  This module gives every penalty event the fetch engine
counts exactly one **cause** from a closed taxonomy, so the aggregate
totals can be decomposed — and the decomposition is *conservative*:
for any run, the per-cause counts sum to the engine's misfetch +
mispredict totals exactly (``tests/test_attribution.py`` sweeps
configurations to enforce it).

The taxonomy (each penalty event gets exactly one):

==========================  ==============================================
cause                       meaning
==========================  ==============================================
``direction-wrong``         conditional direction mispredicted (shared
                            PHT, or the coupled BTB's / Johnson's
                            implicit direction bit)
``btb-miss``                no usable entry in the fetch structure — a
                            BTB tag miss or an invalid (never-trained)
                            NLS/Johnson slot — so fetch fell through
``btb-wrong-target``        a tag hit delivered a stale full target
                            address (BTB / coupled BTB)
``nls-wrong-line``          the NLS/Johnson line field points at a
                            different line (tag-less aliasing or a
                            moved target)
``nls-wrong-set``           the target line is resident but not in the
                            predicted way (stale set field, §4.2)
``nls-displaced``           the line field is right but the target line
                            was evicted from the instruction cache (§7)
``nls-type-mismatch``       a wrong-typed entry steered fetch the wrong
                            way (e.g. a return-typed alias on a
                            conditional, or a conditional-typed entry
                            making an unconditional consult the PHT)
``ras-mispop``              the return-address stack popped a wrong
                            address — underflow (empty stack) or a
                            stale entry after wraparound overwrote it
==========================  ==============================================

The :class:`AttributionCollector` keeps three views, at three costs:

* **exact** per-cause totals and per-static-site profiles (every
  observed break updates a small per-``pc`` record, including a
  simulated per-site 2-bit counter for conditionals);
* a **log2 histogram** of the gap (in breaks) between consecutive
  penalty events (bursty vs uniform penalty behaviour);
* a **sampled ring buffer** (:class:`~repro.telemetry.core.EventTrace`)
  of structured per-event records — the only sampled piece, which is
  what keeps attribution cheap enough to leave on for whole sweeps.

Attribution is opt-in per engine (``ArchitectureConfig.attribution``);
a ``None`` collector costs the hot loop one pointer comparison per
break, preserving the <5% disabled-telemetry overhead budget.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.isa.branches import BranchKind
from repro.telemetry.core import EventTrace, Histogram

#: schema stamped on every collector snapshot
ATTRIBUTION_SCHEMA = "repro-attribution/v1"

CAUSE_DIRECTION = "direction-wrong"
CAUSE_FRONTEND_MISS = "btb-miss"
CAUSE_BTB_WRONG_TARGET = "btb-wrong-target"
CAUSE_NLS_WRONG_LINE = "nls-wrong-line"
CAUSE_NLS_WRONG_SET = "nls-wrong-set"
CAUSE_NLS_DISPLACED = "nls-displaced"
CAUSE_NLS_TYPE_MISMATCH = "nls-type-mismatch"
CAUSE_RAS_MISPOP = "ras-mispop"

#: the closed cause taxonomy, in documentation order
CAUSES = (
    CAUSE_DIRECTION,
    CAUSE_FRONTEND_MISS,
    CAUSE_BTB_WRONG_TARGET,
    CAUSE_NLS_WRONG_LINE,
    CAUSE_NLS_WRONG_SET,
    CAUSE_NLS_DISPLACED,
    CAUSE_NLS_TYPE_MISMATCH,
    CAUSE_RAS_MISPOP,
)

#: outcome codes used in sampled trace records
OUTCOME_CORRECT = 0
OUTCOME_MISFETCH = 1
OUTCOME_MISPREDICT = 2

_CONDITIONAL = int(BranchKind.CONDITIONAL)


class SiteStats:
    """Mutable per-static-branch-site tally (one per ``pc``)."""

    __slots__ = (
        "kind",
        "executed",
        "misfetched",
        "mispredicted",
        "taken",
        "two_bit_hits",
        "_two_bit",
        "causes",
    )

    def __init__(self, kind: int) -> None:
        self.kind = kind
        self.executed = 0
        self.misfetched = 0
        self.mispredicted = 0
        self.taken = 0
        self.two_bit_hits = 0
        self._two_bit = 1  # weakly not-taken, like the shared PHT
        self.causes: Dict[str, int] = {}

    def to_dict(self) -> Dict[str, Any]:
        """Picklable snapshot of this site."""
        return {
            "kind": self.kind,
            "executed": self.executed,
            "misfetched": self.misfetched,
            "mispredicted": self.mispredicted,
            "taken": self.taken,
            "two_bit_hits": self.two_bit_hits,
            "causes": dict(self.causes),
        }


class AttributionCollector:
    """Folds the engine's per-break cause stream into exact per-cause
    totals, per-site profiles, a penalty-gap histogram and a sampled
    event ring.

    One collector belongs to one engine; the engine resets it at the
    warmup boundary (mirroring its own counter reset) so attribution
    totals always partition the reported aggregates exactly.
    """

    def __init__(self, sample: int = 64, capacity: int = 4096) -> None:
        if sample < 1:
            raise ValueError("sample must be positive")
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.sample = sample
        self.capacity = capacity
        self.reset()

    def reset(self) -> None:
        """Discard everything observed so far (warmup boundary)."""
        self.causes: Dict[str, int] = {cause: 0 for cause in CAUSES}
        self.sites: Dict[int, SiteStats] = {}
        self.trace = EventTrace(
            "attribution.events", capacity=self.capacity, sample=self.sample
        )
        self.gap_histogram = Histogram("attribution.penalty_gap")
        self._breaks_seen = 0
        self._last_penalty_break = 0

    # ------------------------------------------------------------------

    def observe(
        self,
        pc: int,
        kind: int,
        taken: bool,
        outcome: int,
        cause: Optional[str],
        detail: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record one counted break.

        *outcome* is one of the ``OUTCOME_*`` codes; *cause* must name
        a taxonomy member for penalty outcomes and is ignored for
        correct ones.  *detail* (e.g. ``{"underflow": True}`` on a
        ``ras-mispop``) is merged into the sampled trace record only.
        """
        site = self.sites.get(pc)
        if site is None:
            site = self.sites[pc] = SiteStats(kind)
        site.executed += 1
        self._breaks_seen += 1
        if kind == _CONDITIONAL:
            # per-site 2-bit counter behaviour: how predictable this
            # site would be for a private saturating counter
            state = site._two_bit
            if (state >= 2) == taken:
                site.two_bit_hits += 1
            if taken:
                site.taken += 1
                if state < 3:
                    site._two_bit = state + 1
            elif state > 0:
                site._two_bit = state - 1
        elif taken:
            site.taken += 1
        if outcome == OUTCOME_CORRECT:
            return
        if outcome == OUTCOME_MISFETCH:
            site.misfetched += 1
        else:
            site.mispredicted += 1
        self.causes[cause] += 1
        site.causes[cause] = site.causes.get(cause, 0) + 1
        gap = self._breaks_seen - self._last_penalty_break
        self._last_penalty_break = self._breaks_seen
        self.gap_histogram.observe(gap)
        record = {
            "pc": pc,
            "kind": kind,
            "outcome": outcome,
            "cause": cause,
            "break_index": self._breaks_seen,
        }
        if detail:
            record.update(detail)
        self.trace.record(record)

    # ------------------------------------------------------------------

    @property
    def penalty_events(self) -> int:
        """Total attributed penalty events (misfetches + mispredicts)."""
        return sum(self.causes.values())

    def snapshot(self) -> Dict[str, Any]:
        """Picklable snapshot attached to the simulation report."""
        return {
            "schema": ATTRIBUTION_SCHEMA,
            "sample": self.sample,
            "capacity": self.capacity,
            "breaks": self._breaks_seen,
            "causes": dict(self.causes),
            "sites": {pc: self.sites[pc].to_dict() for pc in sorted(self.sites)},
            "gap_histogram": self.gap_histogram.to_dict(),
            "trace": self.trace.to_dict(),
        }

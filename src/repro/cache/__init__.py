"""Instruction-cache simulator.

The paper evaluates 8 KB, 16 KB and 32 KB instruction caches with
32-byte lines, 4-byte instructions and direct-mapped / 2-way / 4-way
LRU organisations (§5.1).  This package provides:

* :class:`~repro.cache.geometry.CacheGeometry` — size/line/way
  arithmetic (set index, tag, line field of an address);
* :class:`~repro.cache.icache.InstructionCache` — the simulated cache
  with hit/miss statistics and stable way identifiers so that NLS *set*
  (way) predictions can be verified;
* :class:`~repro.cache.setpred.FallThroughWayPredictor` — the per-line
  set-field extension of §4.2 (second approach) that predicts the way
  of the fall-through line.

A note on terminology: the paper calls the ways of an associative
cache "sets" (its NLS *set field* selects one member of an associative
set).  Internally we use the conventional names — *set index* selects
the row, *way* selects the member — and map the paper's set field onto
the way.
"""

from repro.cache.geometry import CacheGeometry
from repro.cache.icache import AccessResult, InstructionCache
from repro.cache.replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)
from repro.cache.setpred import FallThroughWayPredictor

__all__ = [
    "CacheGeometry",
    "InstructionCache",
    "AccessResult",
    "ReplacementPolicy",
    "LRUPolicy",
    "FIFOPolicy",
    "RandomPolicy",
    "make_policy",
    "FallThroughWayPredictor",
]

"""Replacement policies for set-associative structures.

The instruction cache and the BTB in the paper both use LRU (§5.1).
FIFO and random policies are provided for ablation studies of the
NLS-cache predictor replacement ("we studied various replacement
policies", §4.1).

A policy instance manages *one* structure: it is created with the
number of sets and ways and tracks recency/insertion state internally.
Victim selection and touch notifications are O(associativity) with
small constants, which is the hot path of every simulation.
"""

from __future__ import annotations

import random
from typing import List, Protocol


class ReplacementPolicy(Protocol):
    """Interface shared by all replacement policies."""

    def touch(self, set_index: int, way: int) -> None:
        """Record a hit on (*set_index*, *way*)."""

    def insert(self, set_index: int, way: int) -> None:
        """Record a fill of (*set_index*, *way*)."""

    def victim(self, set_index: int) -> int:
        """Return the way to evict from *set_index*."""

    def reset(self) -> None:
        """Forget all recency state."""


class LRUPolicy:
    """Least-recently-used replacement.

    Recency is kept as a per-set list of way indices ordered from
    most- to least-recently used.
    """

    def __init__(self, n_sets: int, associativity: int) -> None:
        self._n_sets = n_sets
        self._assoc = associativity
        self._order: List[List[int]] = []
        self.reset()

    def reset(self) -> None:
        self._order = [list(range(self._assoc)) for _ in range(self._n_sets)]

    def touch(self, set_index: int, way: int) -> None:
        order = self._order[set_index]
        if order[0] != way:
            order.remove(way)
            order.insert(0, way)

    insert = touch

    def victim(self, set_index: int) -> int:
        return self._order[set_index][-1]


class FIFOPolicy:
    """First-in-first-out replacement: hits do not refresh recency."""

    def __init__(self, n_sets: int, associativity: int) -> None:
        self._n_sets = n_sets
        self._assoc = associativity
        self._next: List[int] = []
        self.reset()

    def reset(self) -> None:
        self._next = [0] * self._n_sets

    def touch(self, set_index: int, way: int) -> None:
        pass

    def insert(self, set_index: int, way: int) -> None:
        if way == self._next[set_index]:
            self._next[set_index] = (way + 1) % self._assoc

    def victim(self, set_index: int) -> int:
        return self._next[set_index]


class RandomPolicy:
    """Uniform-random replacement with a deterministic seeded stream."""

    def __init__(self, n_sets: int, associativity: int, seed: int = 0) -> None:
        self._assoc = associativity
        self._seed = seed
        self._rng = random.Random(seed)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)

    def touch(self, set_index: int, way: int) -> None:
        pass

    def insert(self, set_index: int, way: int) -> None:
        pass

    def victim(self, set_index: int) -> int:
        return self._rng.randrange(self._assoc)


_POLICIES = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "random": RandomPolicy,
}


def make_policy(name: str, n_sets: int, associativity: int) -> ReplacementPolicy:
    """Build a replacement policy by name (``lru``/``fifo``/``random``)."""
    try:
        cls = _POLICIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; expected one of {sorted(_POLICIES)}"
        ) from None
    return cls(n_sets, associativity)

"""Fall-through way prediction (§4.2, second approach).

For associative caches the paper sketches an "elegant" alternative to a
full tag comparison on the fall-through path: every cache line carries
a *set field* predicting the way where its fall-through (sequential
successor) line lives.  On each access either the NLS predictor's set
field (branches) or the previous line's set field (sequential fetch)
selects a single way to drive, making an associative cache behave like
a direct-mapped one on the critical path.  A wrong way prediction is
repaired by probing the remaining ways, costing a misfetch-style bubble.

This module models that per-line successor-way table.  State is
attached to (set, way) slots and invalidated when the carrier line is
evicted, exactly like the NLS-cache predictors.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.icache import InstructionCache


class FallThroughWayPredictor:
    """Per-cache-line predictor of the *way* of the fall-through line.

    Usage: the fetch engine calls :meth:`predict` with the address of
    the line being fetched to obtain the predicted way for the next
    sequential line, and :meth:`update` once the true way is known.
    """

    def __init__(self, cache: InstructionCache) -> None:
        self._cache = cache
        geometry = cache.geometry
        self._n_sets = geometry.n_sets
        self._assoc = geometry.associativity
        # _next_way[set][way] = predicted way of the successor line
        self._next_way: List[List[Optional[int]]] = [
            [None] * self._assoc for _ in range(self._n_sets)
        ]
        cache.add_evict_listener(self._on_evict)
        self.predictions = 0
        self.correct = 0
        self.cold = 0
        self.wrong = 0

    # ------------------------------------------------------------------

    def _on_evict(self, set_index: int, way: int, old_tag: int) -> None:
        self._next_way[set_index][way] = None

    def predict(self, line_address: int) -> Optional[int]:
        """Predicted way of the line following the one at
        *line_address*, or ``None`` when no prediction is stored or the
        carrier line is not resident."""
        geometry = self._cache.geometry
        set_index = geometry.set_index(line_address)
        way = self._cache.probe(line_address)
        if way is None:
            return None
        return self._next_way[set_index][way]

    def update(self, line_address: int, successor_way: int) -> None:
        """Record that the successor of the line at *line_address* was
        found in *successor_way*."""
        geometry = self._cache.geometry
        set_index = geometry.set_index(line_address)
        way = self._cache.probe(line_address)
        if way is not None:
            self._next_way[set_index][way] = successor_way

    def record_outcome(self, predicted: Optional[int], actual: int) -> bool:
        """Book-keep one prediction; returns ``True`` when correct.

        ``None`` predictions (cold) are counted as wrong — the hardware
        would drive a default way and usually miss.  Cold and trained-
        but-wrong outcomes are tallied separately, mirroring the
        ``btb-miss`` vs ``nls-wrong-set`` attribution split.
        """
        self.predictions += 1
        hit = predicted == actual
        if hit:
            self.correct += 1
        elif predicted is None:
            self.cold += 1
        else:
            self.wrong += 1
        return hit

    @property
    def accuracy(self) -> float:
        """Fraction of recorded predictions that were correct."""
        if self.predictions == 0:
            return 0.0
        return self.correct / self.predictions

"""Cache geometry and address-field arithmetic.

Every structure in the reproduction that needs to slice an address into
(tag, set index, line offset, instruction offset) does it through a
:class:`CacheGeometry`, so the NLS predictors, the instruction cache
and the RBE cost model always agree on field widths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.geometry import INSTRUCTION_BYTES


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def _log2(n: int) -> int:
    return n.bit_length() - 1


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of an instruction cache.

    Parameters mirror §5.1 of the paper: ``size_bytes`` in
    {8K, 16K, 32K, 64K}, ``line_bytes`` = 32, ``associativity`` in
    {1, 2, 4}.  All three must be powers of two.
    """

    size_bytes: int
    line_bytes: int = 32
    associativity: int = 1

    #: derived — number of lines in the cache
    n_lines: int = field(init=False)
    #: derived — number of sets (rows)
    n_sets: int = field(init=False)
    #: derived — instructions held per line
    instructions_per_line: int = field(init=False)
    #: derived — bits of byte offset within a line
    offset_bits: int = field(init=False)
    #: derived — bits selecting the set (row)
    set_index_bits: int = field(init=False)
    #: derived — bits selecting the way (the paper's NLS *set field*)
    way_bits: int = field(init=False)
    #: derived — bits selecting an instruction within a line
    instruction_offset_bits: int = field(init=False)
    #: derived — width of the NLS *line field*: cache-set index plus
    #: the instruction offset within the line (§4, "the high-order
    #: bits indicate the line ... the low-order bits indicate the
    #: actual instruction in that line")
    line_field_bits: int = field(init=False)

    def __post_init__(self) -> None:
        for name in ("size_bytes", "line_bytes", "associativity"):
            value = getattr(self, name)
            if not _is_power_of_two(value):
                raise ValueError(f"{name} must be a power of two, got {value}")
        if self.line_bytes < INSTRUCTION_BYTES:
            raise ValueError("a cache line must hold at least one instruction")
        if self.size_bytes < self.line_bytes * self.associativity:
            raise ValueError("cache must hold at least one full set")
        write = object.__setattr__
        write(self, "n_lines", self.size_bytes // self.line_bytes)
        write(self, "n_sets", self.n_lines // self.associativity)
        write(self, "instructions_per_line", self.line_bytes // INSTRUCTION_BYTES)
        write(self, "offset_bits", _log2(self.line_bytes))
        write(self, "set_index_bits", _log2(self.n_sets))
        write(self, "way_bits", _log2(self.associativity))
        write(self, "instruction_offset_bits", _log2(self.instructions_per_line))
        write(
            self,
            "line_field_bits",
            self.set_index_bits + self.instruction_offset_bits,
        )

    # ------------------------------------------------------------------
    # address slicing
    # ------------------------------------------------------------------

    def set_index(self, address: int) -> int:
        """Set (row) index the line containing *address* maps to."""
        return (address >> self.offset_bits) & (self.n_sets - 1)

    def tag(self, address: int) -> int:
        """Tag of the line containing *address*."""
        return address >> (self.offset_bits + self.set_index_bits)

    def line_address(self, address: int) -> int:
        """Address of the first byte of the line containing *address*."""
        return address & ~(self.line_bytes - 1)

    def instruction_offset(self, address: int) -> int:
        """Index of *address*'s instruction within its line."""
        return (address & (self.line_bytes - 1)) >> 2

    def line_field(self, address: int) -> int:
        """The NLS line-field value for a branch whose target is
        *address*: set index concatenated with instruction offset."""
        return (self.set_index(address) << self.instruction_offset_bits) | (
            self.instruction_offset(address)
        )

    def next_line_address(self, address: int) -> int:
        """Address of the line following the one containing *address*
        (the precomputed fall-through line of §4)."""
        return self.line_address(address) + self.line_bytes

    def lines_spanned(self, start: int, n_instructions: int) -> int:
        """Number of distinct cache lines touched by a run of
        *n_instructions* instructions starting at *start*."""
        if n_instructions <= 0:
            return 0
        end = start + (n_instructions - 1) * INSTRUCTION_BYTES
        return (self.line_address(end) - self.line_address(start)) // self.line_bytes + 1

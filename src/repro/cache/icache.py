"""Set-associative instruction cache simulator.

The cache exposes *stable way identifiers*: a line stays in the way it
was filled into until it is evicted.  The NLS set field (§4) predicts
exactly this way, so verification of a set prediction is
``cache.probe(target) == predicted_way``.

Structures that piggyback on the cache (the NLS-cache predictor arrays,
the per-line fall-through way predictor of §4.2) register eviction/fill
listeners so their state is discarded together with the line — the
behaviour responsible for the NLS-cache's performance loss in Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import ReplacementPolicy, make_policy

#: listener(set_index, way, old_tag) called just before a line is replaced
EvictListener = Callable[[int, int, int], None]
#: listener(set_index, way, new_tag) called just after a line is filled
FillListener = Callable[[int, int, int], None]

_INVALID_TAG = -1


@dataclass(frozen=True)
class AccessResult:
    """Outcome of a demand access."""

    hit: bool
    #: way the line resides in after the access
    way: int
    #: tag that was evicted to make room, or ``None`` (hit / cold fill)
    evicted_tag: Optional[int] = None


class InstructionCache:
    """A set-associative instruction cache with LRU replacement.

    Only line-granularity behaviour is modelled (presence, way, LRU
    state, miss counts); line *contents* are implied by the trace.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        replacement: str = "lru",
    ) -> None:
        self.geometry = geometry
        # hot-path address arithmetic, precomputed
        self._offset_bits = geometry.offset_bits
        self._set_mask = geometry.n_sets - 1
        self._tag_shift = geometry.offset_bits + geometry.set_index_bits
        self._policy_name = replacement
        self._policy: ReplacementPolicy = make_policy(
            replacement, geometry.n_sets, geometry.associativity
        )
        self._tags: List[List[int]] = [
            [_INVALID_TAG] * geometry.associativity for _ in range(geometry.n_sets)
        ]
        self._evict_listeners: List[EvictListener] = []
        self._fill_listeners: List[FillListener] = []
        self.accesses = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # listeners
    # ------------------------------------------------------------------

    def add_evict_listener(self, listener: EvictListener) -> None:
        """Register *listener* to be told when a valid line is evicted."""
        self._evict_listeners.append(listener)

    def add_fill_listener(self, listener: FillListener) -> None:
        """Register *listener* to be told when a line is filled."""
        self._fill_listeners.append(listener)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def probe(self, address: int) -> Optional[int]:
        """Return the way holding *address*'s line, or ``None`` on a
        miss.  Does not disturb replacement state or statistics."""
        set_index = (address >> self._offset_bits) & self._set_mask
        tag = address >> self._tag_shift
        ways = self._tags[set_index]
        for way, stored in enumerate(ways):
            if stored == tag:
                return way
        return None

    def contains(self, address: int) -> bool:
        """Return ``True`` when the line holding *address* is resident."""
        return self.probe(address) is not None

    def access(self, address: int) -> AccessResult:
        """Perform a demand access for the line holding *address*.

        On a miss the line is filled immediately (the 5-cycle penalty
        is accounted by the fetch engine, not here).
        """
        set_index = (address >> self._offset_bits) & self._set_mask
        tag = address >> self._tag_shift
        ways = self._tags[set_index]
        self.accesses += 1
        for way, stored in enumerate(ways):
            if stored == tag:
                self._policy.touch(set_index, way)
                return AccessResult(hit=True, way=way)
        # miss: pick a victim and fill
        self.misses += 1
        way = self._policy.victim(set_index)
        old_tag = ways[way]
        evicted: Optional[int] = None
        if old_tag != _INVALID_TAG:
            evicted = old_tag
            for listener in self._evict_listeners:
                listener(set_index, way, old_tag)
        ways[way] = tag
        self._policy.insert(set_index, way)
        for listener in self._fill_listeners:
            listener(set_index, way, tag)
        return AccessResult(hit=False, way=way, evicted_tag=evicted)

    # ------------------------------------------------------------------
    # management / statistics
    # ------------------------------------------------------------------

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed (0.0 when never accessed)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def flush(self) -> None:
        """Invalidate every line and reset replacement state (not the
        statistics)."""
        for ways in self._tags:
            for way in range(len(ways)):
                ways[way] = _INVALID_TAG
        self._policy.reset()

    def reset_statistics(self) -> None:
        """Zero the access/miss counters."""
        self.accesses = 0
        self.misses = 0

    def resident_lines(self) -> int:
        """Number of valid lines currently resident."""
        return sum(
            1 for ways in self._tags for stored in ways if stored != _INVALID_TAG
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        g = self.geometry
        return (
            f"InstructionCache({g.size_bytes}B, {g.associativity}-way, "
            f"{self._policy_name}, misses={self.misses}/{self.accesses})"
        )

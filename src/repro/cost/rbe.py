"""Register-bit-equivalent (RBE) area model — Figure 3.

The paper evaluates implementation cost with the on-chip-memory area
model of Mulder, Quach & Flynn [11], where "one RBE equals the area of
a bit storage cell".  We reproduce the model's structure with the
standard cell weights (register cell 1.0 RBE, SRAM cell 0.6 RBE, CAM
cell 2.0 RBE) plus a small array overhead for decoders and sense
amplifiers:

* **NLS structures** are plain (tag-less) RAM: SRAM cells + array
  overhead.  Entry width depends on the instruction-cache geometry —
  line field = set-index bits + instruction-offset bits, plus the
  2-bit type field, plus way bits for associative caches — which is
  exactly why the NLS-table grows *logarithmically* with cache size
  while the NLS-cache (a fixed number of predictors per line) grows
  *linearly* (§6).
* **BTBs** are small associative caches searched by full tag: tag bits
  in CAM-weighted cells, data (30-bit target + 2-bit type) in register
  cells, plus LRU state for associative organisations.  Their cost
  depends on the address-space size, not the instruction cache (§7).

The model reproduces the paper's cost equivalences: the NLS-cache
matches the 512/1024/2048-entry NLS-table at 8K/16K/32K caches
respectively, the 1024-entry NLS-table costs about as much as a
128-entry BTB, and the 256-entry BTB costs about twice the 1024-entry
NLS-table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cache.geometry import CacheGeometry
from repro.isa.geometry import AddressSpace

#: the paper's assumed address space (30-bit stored targets)
_DEFAULT_SPACE = AddressSpace(32)


@dataclass(frozen=True)
class StructureCost:
    """Cost breakdown of one structure, in RBE."""

    label: str
    storage_bits: int
    rbe: float

    def __str__(self) -> str:
        return f"{self.label}: {self.storage_bits} bits, {self.rbe:,.0f} RBE"


@dataclass(frozen=True)
class RBEModel:
    """Area weights (RBE per cell) and array overhead."""

    register_cell: float = 1.0
    sram_cell: float = 0.6
    cam_cell: float = 2.0
    #: fractional overhead of a RAM array (decoder, sense amps)
    array_overhead: float = 0.10

    # ------------------------------------------------------------------
    # field widths
    # ------------------------------------------------------------------

    @staticmethod
    def nls_entry_bits(geometry: CacheGeometry) -> int:
        """Bits of one NLS predictor for a cache of this *geometry*:
        2-bit type + line field + set (way) field."""
        return 2 + geometry.line_field_bits + geometry.way_bits

    @staticmethod
    def btb_entry_data_bits(space: AddressSpace = _DEFAULT_SPACE) -> int:
        """Data bits of a BTB entry: full target + 2-bit type."""
        return space.target_bits + 2

    @staticmethod
    def btb_tag_bits(
        entries: int, associativity: int, space: AddressSpace = _DEFAULT_SPACE
    ) -> int:
        """Tag bits of a BTB entry: word address minus the set index."""
        n_sets = entries // associativity
        return space.target_bits - int(math.log2(n_sets))

    @staticmethod
    def lru_bits_per_set(associativity: int) -> int:
        """State bits to track an LRU order of *associativity* ways."""
        if associativity <= 1:
            return 0
        return math.ceil(math.log2(math.factorial(associativity)))

    # ------------------------------------------------------------------
    # structure costs
    # ------------------------------------------------------------------

    def ram_cost(self, bits: int) -> float:
        """Cost of a plain (tag-less) SRAM array of *bits* bits."""
        return bits * self.sram_cell * (1.0 + self.array_overhead)

    def nls_table_cost(
        self, entries: int, geometry: CacheGeometry
    ) -> StructureCost:
        """Cost of an *entries*-entry NLS-table for a cache of
        *geometry* (grows logarithmically with cache size)."""
        bits = entries * self.nls_entry_bits(geometry)
        return StructureCost(
            label=f"{entries}-entry NLS-table @ {geometry.size_bytes // 1024}K",
            storage_bits=bits,
            rbe=self.ram_cost(bits),
        )

    def nls_cache_cost(
        self, geometry: CacheGeometry, predictors_per_line: int = 2
    ) -> StructureCost:
        """Cost of the NLS-cache predictor storage: a fixed number of
        predictors per cache line (grows linearly with cache size).
        Only the predictor bits are counted — the tag is shared with
        the cache line and is charged to the cache, not the predictor."""
        n_predictors = geometry.n_lines * predictors_per_line
        bits = n_predictors * self.nls_entry_bits(geometry)
        return StructureCost(
            label=(
                f"NLS-cache ({predictors_per_line}/line) @ "
                f"{geometry.size_bytes // 1024}K"
            ),
            storage_bits=bits,
            rbe=self.ram_cost(bits),
        )

    def btb_cost(
        self,
        entries: int,
        associativity: int = 1,
        space: AddressSpace = _DEFAULT_SPACE,
    ) -> StructureCost:
        """Cost of a BTB: CAM-weighted tags, register-weighted data,
        LRU bits for associative organisations.  Independent of the
        instruction-cache size; grows with the address space (§7)."""
        tag_bits = self.btb_tag_bits(entries, associativity, space)
        data_bits = self.btb_entry_data_bits(space)
        n_sets = entries // associativity
        lru_bits = n_sets * self.lru_bits_per_set(associativity)
        storage_bits = entries * (tag_bits + data_bits) + lru_bits
        rbe = (
            entries * tag_bits * self.cam_cell
            + entries * data_bits * self.register_cell
            + lru_bits * self.register_cell
        )
        return StructureCost(
            label=f"{entries}-entry {associativity}-way BTB",
            storage_bits=storage_bits,
            rbe=rbe,
        )

    def pht_cost(self, entries: int = 4096, counter_bits: int = 2) -> StructureCost:
        """Cost of the shared pattern history table (identical for
        both architectures, so it cancels in comparisons)."""
        bits = entries * counter_bits
        return StructureCost(
            label=f"{entries}-entry PHT", storage_bits=bits, rbe=self.ram_cost(bits)
        )

    def return_stack_cost(
        self, entries: int = 32, space: AddressSpace = _DEFAULT_SPACE
    ) -> StructureCost:
        """Cost of the return-address stack (also shared)."""
        bits = entries * space.target_bits
        return StructureCost(
            label=f"{entries}-entry return stack",
            storage_bits=bits,
            rbe=bits * self.register_cell,
        )

"""CACTI-style access-time model — Figure 6.

The paper uses the Wilton & Jouppi enhanced access/cycle-time model
[19] to estimate BTB access times, and draws one conclusion from it:
a 4-way associative BTB is 30–40 % slower than a direct-mapped BTB of
the same size, because the associative structure must finish the tag
comparison and drive an output multiplexor before data can leave,
while a direct-mapped structure overlaps the tag check with data
delivery ("the relative values ... are more important than the
absolute values", Figure 6 caption).

This module implements a simplified component model with the same
structure as CACTI's critical path:

``t = decoder + wordline + bitline/sense + [comparator + mux driver]``

where the bracketed terms apply only to associative lookups.  The
constants are fitted to mid-1990s technology so the absolute numbers
land in Figure 6's 3–7 ns range; the associativity ratio is what the
reproduction asserts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class AccessTimeModel:
    """Component delays (nanoseconds) of a small on-chip array."""

    #: fixed decoder overhead
    decoder_base_ns: float = 0.80
    #: decoder delay per address bit (fan-in growth)
    decoder_per_bit_ns: float = 0.22
    #: wordline delay per driven bit of row width
    wordline_per_bit_ns: float = 0.006
    #: bitline discharge + sense delay per row
    bitline_per_row_ns: float = 0.002
    #: fixed sense-amplifier delay
    sense_ns: float = 0.90
    #: tag comparator delay per tag bit (associative only)
    compare_per_bit_ns: float = 0.028
    #: output multiplexor driver (associative only)
    mux_driver_ns: float = 0.45
    #: data width of one entry (target + type), bits
    data_bits: int = 32
    #: tag width assumed for comparator sizing, bits
    tag_bits: int = 24

    def access_time_ns(self, entries: int, associativity: int = 1) -> float:
        """Estimated access time of an *entries*-entry structure.

        For a direct-mapped structure the tag comparison proceeds in
        parallel with data output and is off the critical path; for an
        associative structure the comparison plus the select mux are
        serialised after the array read (§6.3).
        """
        if entries < 1 or entries & (entries - 1):
            raise ValueError(f"entries must be a power of two, got {entries}")
        if associativity < 1 or associativity > entries:
            raise ValueError(f"bad associativity {associativity} for {entries} entries")
        rows = entries // associativity
        row_width = associativity * (self.data_bits + self.tag_bits)
        address_bits = max(1, int(math.log2(rows)))
        time = (
            self.decoder_base_ns
            + self.decoder_per_bit_ns * address_bits
            + self.wordline_per_bit_ns * row_width
            + self.bitline_per_row_ns * rows
            + self.sense_ns
        )
        if associativity > 1:
            time += self.compare_per_bit_ns * self.tag_bits + self.mux_driver_ns
        return time

    def associativity_penalty(self, entries: int, associativity: int) -> float:
        """Access-time ratio of an associative organisation over the
        direct-mapped organisation of the same capacity (the paper's
        "30 to 40% longer")."""
        return self.access_time_ns(entries, associativity) / self.access_time_ns(
            entries, 1
        )

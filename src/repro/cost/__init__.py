"""Implementation-cost models: silicon area (RBE) and access time.

* :mod:`repro.cost.rbe` — the register-bit-equivalent area model of
  Mulder, Quach & Flynn used for Figure 3;
* :mod:`repro.cost.timing` — a CACTI-style (Wilton & Jouppi) access
  time model used for Figure 6.
"""

from repro.cost.rbe import RBEModel, StructureCost
from repro.cost.timing import AccessTimeModel

__all__ = ["RBEModel", "StructureCost", "AccessTimeModel"]

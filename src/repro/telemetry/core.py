"""Structured instrumentation: counters, timers, spans and registries.

The telemetry substrate every hot layer reports through (engine,
runner, corpus, CLI — see DESIGN.md §10).  Design constraints:

* **zero cost when disabled** — a disabled :class:`Registry` hands out
  shared null objects whose methods are no-ops and allocates nothing,
  so instrumented code paths never need an ``if telemetry:`` guard of
  their own and the engine hot loop is untouched (the engine derives
  its per-phase counts from aggregates it keeps anyway);
* **picklable snapshots** — a registry serialises to a plain dict so
  process-pool workers can ship their measurements back to the parent,
  which merges them (counters/timers add, spans concatenate);
* **one event schema** — :meth:`Registry.events` renders everything as
  flat dicts (``{"event": "counter"|"timer"|"span", ...}``) that any
  :mod:`repro.telemetry.sinks` sink can persist.

A module-level *active* registry (default: disabled) lets deeply
nested code emit telemetry without threading a registry argument
through every call chain; :func:`use` installs an enabled registry for
a scope, and pool-worker initialisers install one per process.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

#: event-schema version stamped on every rendered event
EVENT_SCHEMA = "repro-telemetry/v1"


class Counter:
    """A named monotonically growing integer (e.g. cache probes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0) -> None:
        self.name = name
        self.value = value

    def add(self, amount: int = 1) -> None:
        """Increase the counter by *amount* (default 1)."""
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name!r}, {self.value})"


class Timer:
    """Accumulated wall time over any number of timed intervals."""

    __slots__ = ("name", "total_s", "count")

    def __init__(self, name: str, total_s: float = 0.0, count: int = 0) -> None:
        self.name = name
        self.total_s = total_s
        self.count = count

    @contextmanager
    def time(self) -> Iterator[None]:
        """Context manager adding the enclosed duration to the total."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.total_s += time.perf_counter() - started
            self.count += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Timer({self.name!r}, {self.total_s:.6f}s/{self.count})"


class Span:
    """One timed, tagged interval recorded as a discrete event.

    Unlike a :class:`Timer` (which aggregates), every completed span
    is kept individually — tags carry the identity of what was timed
    (config label, program, backend, ...), which is what per-cell
    attribution needs.
    """

    __slots__ = ("name", "tags", "duration_s", "_registry", "_started")

    def __init__(self, name: str, registry: "Registry", tags: Dict[str, Any]) -> None:
        self.name = name
        self.tags = tags
        self.duration_s = 0.0
        self._registry = registry
        self._started = 0.0

    def __enter__(self) -> "Span":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.duration_s = time.perf_counter() - self._started
        self._registry._record_span(self)


class _NullCounter:
    """Shared no-op counter handed out by disabled registries."""

    __slots__ = ()

    def add(self, amount: int = 1) -> None:
        """Discard the increment."""


class _NullTimer:
    """Shared no-op timer handed out by disabled registries."""

    __slots__ = ()

    @contextmanager
    def time(self) -> Iterator[None]:
        """Time nothing."""
        yield


class _NullSpan:
    """Shared no-op span handed out by disabled registries."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_TIMER = _NullTimer()
_NULL_SPAN = _NullSpan()


class Registry:
    """One run's worth of counters, timers and spans.

    Disabled registries (``enabled=False``, the default for the
    module-level active registry) return the shared null instruments:
    no allocation, no branching at the instrumentation site, nothing
    recorded.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._timers: Dict[str, Timer] = {}
        self._spans: List[Span] = []

    # -- instruments ---------------------------------------------------

    def counter(self, name: str):
        """The named counter (created on first use; null if disabled)."""
        if not self.enabled:
            return _NULL_COUNTER
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def timer(self, name: str):
        """The named timer (created on first use; null if disabled)."""
        if not self.enabled:
            return _NULL_TIMER
        timer = self._timers.get(name)
        if timer is None:
            timer = self._timers[name] = Timer(name)
        return timer

    def span(self, name: str, **tags):
        """A new span context manager (null if disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(name, self, tags)

    def _record_span(self, span: Span) -> None:
        self._spans.append(span)

    # -- read-out ------------------------------------------------------

    @property
    def counters(self) -> Dict[str, int]:
        """Counter values by name (sorted, for deterministic output)."""
        return {name: self._counters[name].value for name in sorted(self._counters)}

    @property
    def timers(self) -> Dict[str, Dict[str, float]]:
        """Timer totals by name (sorted)."""
        return {
            name: {
                "total_s": self._timers[name].total_s,
                "count": self._timers[name].count,
            }
            for name in sorted(self._timers)
        }

    @property
    def spans(self) -> List[Span]:
        """Completed spans in recording order."""
        return list(self._spans)

    def snapshot(self) -> Dict[str, Any]:
        """Picklable dict of everything recorded (the merge currency)."""
        return {
            "counters": self.counters,
            "timers": self.timers,
            "spans": [
                {
                    "name": span.name,
                    "duration_s": span.duration_s,
                    "tags": dict(span.tags),
                }
                for span in self._spans
            ],
        }

    def merge(self, snapshot: Optional[Dict[str, Any]]) -> None:
        """Fold a worker's :meth:`snapshot` into this registry:
        counters and timers add, spans concatenate."""
        if not snapshot or not self.enabled:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).add(value)
        for name, totals in snapshot.get("timers", {}).items():
            timer = self.timer(name)
            timer.total_s += totals["total_s"]
            timer.count += totals["count"]
        for recorded in snapshot.get("spans", []):
            span = Span(recorded["name"], self, dict(recorded["tags"]))
            span.duration_s = recorded["duration_s"]
            self._spans.append(span)

    def events(self) -> Iterator[Dict[str, Any]]:
        """Render everything recorded as flat, sink-ready event dicts."""
        for name, value in self.counters.items():
            yield {
                "schema": EVENT_SCHEMA,
                "event": "counter",
                "name": name,
                "value": value,
            }
        for name, totals in self.timers.items():
            yield {
                "schema": EVENT_SCHEMA,
                "event": "timer",
                "name": name,
                "total_s": totals["total_s"],
                "count": totals["count"],
            }
        for span in self._spans:
            yield {
                "schema": EVENT_SCHEMA,
                "event": "span",
                "name": span.name,
                "duration_s": span.duration_s,
                "tags": dict(span.tags),
            }

    def emit(self, sink) -> int:
        """Write every rendered event to *sink*; returns the count."""
        emitted = 0
        for event in self.events():
            sink.write(event)
            emitted += 1
        return emitted

    def summary(self) -> str:
        """One compact human-readable line per counter/timer."""
        lines = [f"{name}={value}" for name, value in self.counters.items()]
        lines += [
            f"{name}={totals['total_s']:.3f}s/{totals['count']}"
            for name, totals in self.timers.items()
        ]
        lines.append(f"spans={len(self._spans)}")
        return " ".join(lines)


#: the process-wide active registry; disabled by default so the
#: instrumented hot paths cost nothing unless a caller opts in
_ACTIVE = Registry(enabled=False)


def get_registry() -> Registry:
    """The currently active registry (disabled singleton by default)."""
    return _ACTIVE


def set_registry(registry: Registry) -> Registry:
    """Install *registry* as the active one; returns the previous."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    return previous


@contextmanager
def use(registry: Registry) -> Iterator[Registry]:
    """Scope *registry* as the active one, restoring the previous on
    exit (exception-safe)."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)

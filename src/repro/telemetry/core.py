"""Structured instrumentation: counters, timers, histograms, event
traces, spans and registries.

The telemetry substrate every hot layer reports through (engine,
runner, corpus, CLI — see DESIGN.md §10).  Design constraints:

* **zero cost when disabled** — a disabled :class:`Registry` hands out
  shared null objects whose methods are no-ops and allocates nothing,
  so instrumented code paths never need an ``if telemetry:`` guard of
  their own and the engine hot loop is untouched (the engine derives
  its per-phase counts from aggregates it keeps anyway);
* **picklable snapshots** — a registry serialises to a plain dict so
  process-pool workers can ship their measurements back to the parent,
  which merges them (counters/timers add, spans concatenate);
* **one event schema** — :meth:`Registry.events` renders everything as
  flat dicts (``{"event": "counter"|"timer"|"span", ...}``) that any
  :mod:`repro.telemetry.sinks` sink can persist.

A module-level *active* registry (default: disabled) lets deeply
nested code emit telemetry without threading a registry argument
through every call chain; :func:`use` installs an enabled registry for
a scope, and pool-worker initialisers install one per process.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

#: event-schema version stamped on every rendered event
EVENT_SCHEMA = "repro-telemetry/v1"


class Counter:
    """A named monotonically growing integer (e.g. cache probes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0) -> None:
        self.name = name
        self.value = value

    def add(self, amount: int = 1) -> None:
        """Increase the counter by *amount* (default 1)."""
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name!r}, {self.value})"


class Timer:
    """Accumulated wall time over any number of timed intervals."""

    __slots__ = ("name", "total_s", "count")

    def __init__(self, name: str, total_s: float = 0.0, count: int = 0) -> None:
        self.name = name
        self.total_s = total_s
        self.count = count

    @contextmanager
    def time(self) -> Iterator[None]:
        """Context manager adding the enclosed duration to the total."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.total_s += time.perf_counter() - started
            self.count += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Timer({self.name!r}, {self.total_s:.6f}s/{self.count})"


class Histogram:
    """A fixed-log2-bucket histogram of non-negative observations.

    Bucket *b* counts observations in ``[2**(b-1), 2**b)`` (bucket 0
    counts exact zeros), i.e. the bucket index is
    ``int(value).bit_length()``.  Because the bucket boundaries are
    fixed powers of two, histograms from different process workers
    merge by plain per-bucket addition — the same property counters
    have — so serial and pooled runs aggregate identically.
    """

    __slots__ = ("name", "_buckets", "count", "total")

    def __init__(self, name: str) -> None:
        self.name = name
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0

    def observe(self, value, weight: int = 1) -> None:
        """Record *value* (negative values clamp to bucket 0)."""
        value = int(value)
        bucket = value.bit_length() if value > 0 else 0
        self._buckets[bucket] = self._buckets.get(bucket, 0) + weight
        self.count += weight
        self.total += value * weight

    @staticmethod
    def bucket_bounds(bucket: int):
        """``(low, high)`` half-open value range of *bucket*."""
        if bucket == 0:
            return (0, 1)
        return (1 << (bucket - 1), 1 << bucket)

    @property
    def buckets(self) -> Dict[int, int]:
        """Non-empty buckets by index (sorted)."""
        return {index: self._buckets[index] for index in sorted(self._buckets)}

    @property
    def mean(self) -> float:
        """Mean of all observed values (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def absorb(self, other) -> None:
        """Add another histogram (or its :meth:`to_dict`) into this one."""
        if isinstance(other, Histogram):
            other = other.to_dict()
        for bucket, count in other.get("buckets", {}).items():
            bucket = int(bucket)
            self._buckets[bucket] = self._buckets.get(bucket, 0) + count
        self.count += other.get("count", 0)
        self.total += other.get("total", 0)

    def to_dict(self) -> Dict[str, Any]:
        """Picklable snapshot (the merge currency)."""
        return {"buckets": self.buckets, "count": self.count, "total": self.total}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.1f})"


class EventTrace:
    """A sampled ring buffer of structured per-event records.

    Keeps every ``sample``-th record (deterministic counting, so runs
    are reproducible) in a fixed-capacity ring — once full, the oldest
    record is overwritten.  ``seen`` always counts every offered
    record, so exact totals stay available even when the ring only
    holds a sampled, bounded window.
    """

    __slots__ = ("name", "capacity", "sample", "seen", "sampled", "_ring", "_next")

    def __init__(self, name: str, capacity: int = 4096, sample: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if sample < 1:
            raise ValueError("sample must be positive")
        self.name = name
        self.capacity = capacity
        self.sample = sample
        self.seen = 0
        self.sampled = 0
        self._ring: List[Dict[str, Any]] = []
        self._next = 0

    def record(self, fields: Dict[str, Any]) -> bool:
        """Offer one record; returns ``True`` when it was kept
        (every ``sample``-th offer, starting with the first)."""
        self.seen += 1
        if (self.seen - 1) % self.sample:
            return False
        self.sampled += 1
        if len(self._ring) < self.capacity:
            self._ring.append(fields)
        else:
            self._ring[self._next] = fields
            self._next = (self._next + 1) % self.capacity
        return True

    @property
    def records(self) -> List[Dict[str, Any]]:
        """Kept records, oldest first."""
        return self._ring[self._next:] + self._ring[: self._next]

    @property
    def dropped(self) -> int:
        """Sampled records that were overwritten by ring wraparound."""
        return self.sampled - len(self._ring)

    def absorb(self, other) -> None:
        """Concatenate another trace (or its :meth:`to_dict`),
        keeping the newest ``capacity`` records."""
        if isinstance(other, EventTrace):
            other = other.to_dict()
        merged = self.records + list(other.get("records", []))
        self._ring = merged[-self.capacity:]
        self._next = 0
        self.seen += other.get("seen", 0)
        self.sampled += other.get("sampled", 0)

    def to_dict(self) -> Dict[str, Any]:
        """Picklable snapshot (the merge currency)."""
        return {
            "capacity": self.capacity,
            "sample": self.sample,
            "seen": self.seen,
            "sampled": self.sampled,
            "records": self.records,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"EventTrace({self.name!r}, kept={len(self._ring)}/"
            f"{self.capacity}, seen={self.seen})"
        )


class Span:
    """One timed, tagged interval recorded as a discrete event.

    Unlike a :class:`Timer` (which aggregates), every completed span
    is kept individually — tags carry the identity of what was timed
    (config label, program, backend, ...), which is what per-cell
    attribution needs.
    """

    __slots__ = ("name", "tags", "duration_s", "start_s", "pid", "_registry")

    def __init__(self, name: str, registry: "Registry", tags: Dict[str, Any]) -> None:
        self.name = name
        self.tags = tags
        self.duration_s = 0.0
        #: monotonic-clock start (``time.perf_counter``); on Linux the
        #: epoch is shared across forked pool workers, so merged spans
        #: line up on one timeline (what the Chrome-trace export needs)
        self.start_s = 0.0
        self.pid = 0
        self._registry = registry

    def __enter__(self) -> "Span":
        self.start_s = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.duration_s = time.perf_counter() - self.start_s
        self.pid = os.getpid()
        self._registry._record_span(self)


class _NullCounter:
    """Shared no-op counter handed out by disabled registries."""

    __slots__ = ()

    def add(self, amount: int = 1) -> None:
        """Discard the increment."""


class _NullTimer:
    """Shared no-op timer handed out by disabled registries."""

    __slots__ = ()

    @contextmanager
    def time(self) -> Iterator[None]:
        """Time nothing."""
        yield


class _NullSpan:
    """Shared no-op span handed out by disabled registries."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


class _NullHistogram:
    """Shared no-op histogram handed out by disabled registries."""

    __slots__ = ()

    def observe(self, value, weight: int = 1) -> None:
        """Discard the observation."""

    def absorb(self, other) -> None:
        """Discard the merge."""


class _NullEventTrace:
    """Shared no-op event trace handed out by disabled registries."""

    __slots__ = ()

    def record(self, fields) -> bool:
        """Discard the record."""
        return False


_NULL_COUNTER = _NullCounter()
_NULL_TIMER = _NullTimer()
_NULL_SPAN = _NullSpan()
_NULL_HISTOGRAM = _NullHistogram()
_NULL_EVENT_TRACE = _NullEventTrace()


class Registry:
    """One run's worth of counters, timers and spans.

    Disabled registries (``enabled=False``, the default for the
    module-level active registry) return the shared null instruments:
    no allocation, no branching at the instrumentation site, nothing
    recorded.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._timers: Dict[str, Timer] = {}
        self._spans: List[Span] = []
        self._histograms: Dict[str, Histogram] = {}
        self._traces: Dict[str, EventTrace] = {}

    # -- instruments ---------------------------------------------------

    def counter(self, name: str):
        """The named counter (created on first use; null if disabled)."""
        if not self.enabled:
            return _NULL_COUNTER
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def timer(self, name: str):
        """The named timer (created on first use; null if disabled)."""
        if not self.enabled:
            return _NULL_TIMER
        timer = self._timers.get(name)
        if timer is None:
            timer = self._timers[name] = Timer(name)
        return timer

    def span(self, name: str, **tags):
        """A new span context manager (null if disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(name, self, tags)

    def histogram(self, name: str):
        """The named histogram (created on first use; null if disabled)."""
        if not self.enabled:
            return _NULL_HISTOGRAM
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name)
        return histogram

    def trace(self, name: str, capacity: int = 4096, sample: int = 1):
        """The named event trace (created on first use with the given
        ring shape; null if disabled)."""
        if not self.enabled:
            return _NULL_EVENT_TRACE
        trace = self._traces.get(name)
        if trace is None:
            trace = self._traces[name] = EventTrace(
                name, capacity=capacity, sample=sample
            )
        return trace

    def _record_span(self, span: Span) -> None:
        self._spans.append(span)

    # -- read-out ------------------------------------------------------

    @property
    def counters(self) -> Dict[str, int]:
        """Counter values by name (sorted, for deterministic output)."""
        return {name: self._counters[name].value for name in sorted(self._counters)}

    @property
    def timers(self) -> Dict[str, Dict[str, float]]:
        """Timer totals by name (sorted)."""
        return {
            name: {
                "total_s": self._timers[name].total_s,
                "count": self._timers[name].count,
            }
            for name in sorted(self._timers)
        }

    @property
    def spans(self) -> List[Span]:
        """Completed spans in recording order."""
        return list(self._spans)

    @property
    def histograms(self) -> Dict[str, Dict[str, Any]]:
        """Histogram snapshots by name (sorted)."""
        return {
            name: self._histograms[name].to_dict()
            for name in sorted(self._histograms)
        }

    @property
    def traces(self) -> Dict[str, Dict[str, Any]]:
        """Event-trace snapshots by name (sorted)."""
        return {name: self._traces[name].to_dict() for name in sorted(self._traces)}

    def snapshot(self) -> Dict[str, Any]:
        """Picklable dict of everything recorded (the merge currency).

        ``histograms``/``traces`` keys appear only when non-empty, so
        snapshots from runs that never touch the new instruments are
        byte-identical to the historical shape.
        """
        snapshot: Dict[str, Any] = {
            "counters": self.counters,
            "timers": self.timers,
            "spans": [
                {
                    "name": span.name,
                    "duration_s": span.duration_s,
                    "start_s": span.start_s,
                    "pid": span.pid,
                    "tags": dict(span.tags),
                }
                for span in self._spans
            ],
        }
        if self._histograms:
            snapshot["histograms"] = self.histograms
        if self._traces:
            snapshot["traces"] = self.traces
        return snapshot

    def merge(self, snapshot: Optional[Dict[str, Any]]) -> None:
        """Fold a worker's :meth:`snapshot` into this registry:
        counters, timers and histograms add, spans and traces
        concatenate."""
        if not snapshot or not self.enabled:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).add(value)
        for name, totals in snapshot.get("timers", {}).items():
            timer = self.timer(name)
            timer.total_s += totals["total_s"]
            timer.count += totals["count"]
        for recorded in snapshot.get("spans", []):
            span = Span(recorded["name"], self, dict(recorded["tags"]))
            span.duration_s = recorded["duration_s"]
            span.start_s = recorded.get("start_s", 0.0)
            span.pid = recorded.get("pid", 0)
            self._spans.append(span)
        for name, histogram in snapshot.get("histograms", {}).items():
            self.histogram(name).absorb(histogram)
        for name, trace in snapshot.get("traces", {}).items():
            self.trace(
                name,
                capacity=trace.get("capacity", 4096),
                sample=trace.get("sample", 1),
            ).absorb(trace)

    def events(self) -> Iterator[Dict[str, Any]]:
        """Render everything recorded as flat, sink-ready event dicts."""
        for name, value in self.counters.items():
            yield {
                "schema": EVENT_SCHEMA,
                "event": "counter",
                "name": name,
                "value": value,
            }
        for name, totals in self.timers.items():
            yield {
                "schema": EVENT_SCHEMA,
                "event": "timer",
                "name": name,
                "total_s": totals["total_s"],
                "count": totals["count"],
            }
        for name, histogram in self.histograms.items():
            yield {
                "schema": EVENT_SCHEMA,
                "event": "histogram",
                "name": name,
                # string keys so an NDJSON round trip is loss-free
                "buckets": {
                    str(bucket): count
                    for bucket, count in histogram["buckets"].items()
                },
                "count": histogram["count"],
                "total": histogram["total"],
            }
        for name, trace in self.traces.items():
            yield {
                "schema": EVENT_SCHEMA,
                "event": "trace",
                "name": name,
                "sample": trace["sample"],
                "seen": trace["seen"],
                "sampled": trace["sampled"],
                "records": trace["records"],
            }
        for span in self._spans:
            yield {
                "schema": EVENT_SCHEMA,
                "event": "span",
                "name": span.name,
                "duration_s": span.duration_s,
                "start_s": span.start_s,
                "pid": span.pid,
                "tags": dict(span.tags),
            }

    def emit(self, sink) -> int:
        """Write every rendered event to *sink*; returns the count."""
        emitted = 0
        for event in self.events():
            sink.write(event)
            emitted += 1
        return emitted

    def summary(self) -> str:
        """One compact human-readable line per counter/timer."""
        lines = [f"{name}={value}" for name, value in self.counters.items()]
        lines += [
            f"{name}={totals['total_s']:.3f}s/{totals['count']}"
            for name, totals in self.timers.items()
        ]
        lines += [
            f"{name}=n{histogram['count']}"
            for name, histogram in self.histograms.items()
        ]
        lines.append(f"spans={len(self._spans)}")
        return " ".join(lines)


#: the process-wide active registry; disabled by default so the
#: instrumented hot paths cost nothing unless a caller opts in
_ACTIVE = Registry(enabled=False)


def get_registry() -> Registry:
    """The currently active registry (disabled singleton by default)."""
    return _ACTIVE


def set_registry(registry: Registry) -> Registry:
    """Install *registry* as the active one; returns the previous."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    return previous


@contextmanager
def use(registry: Registry) -> Iterator[Registry]:
    """Scope *registry* as the active one, restoring the previous on
    exit (exception-safe)."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)

"""Prometheus text-exposition rendering of the telemetry registry.

The live leg of the analysis layer: the service's ``GET /metrics``
endpoint (docs/SERVICE.md, docs/TELEMETRY.md) renders the active
:class:`~repro.telemetry.core.Registry` — plus the scheduler's
job-state totals and the result store's size statistics — in the
Prometheus text exposition format (version 0.0.4), so the same
counters that feed job manifests and the offline dashboard can be
scraped by any Prometheus-compatible collector.

Mapping rules:

* counters — ``repro_<name>_total`` (dots become underscores), TYPE
  ``counter``; the well-known store/scheduler counters are always
  present (zero-valued when nothing recorded yet), so scrapes have a
  stable shape from the first request;
* timers — ``repro_<name>_seconds_total`` plus
  ``repro_<name>_timer_count_total``;
* histograms — ``repro_<name>_observations_total`` and
  ``repro_<name>_sum`` (the log2 buckets don't map onto Prometheus'
  cumulative buckets, so only the aggregates are exposed);
* job states — ``repro_service_jobs{state="..."}`` gauges from
  ``JobScheduler.counts()``;
* store stats — ``repro_store_entries`` / ``repro_store_payload_bytes``
  / ``repro_store_db_bytes`` gauges.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional

from repro.telemetry.core import Registry

#: counters guaranteed to appear in every exposition (zero-filled)
WELL_KNOWN_COUNTERS = (
    "store.hits",
    "store.misses",
    "store.puts",
    "store.dedup_skips",
    "store.corrupt_evictions",
    "service.jobs_submitted",
    "service.jobs_completed",
    "service.jobs_failed",
    "service.jobs_cancelled",
    "service.jobs_recovered",
    "service.cells_served_from_store",
    "service.cells_computed",
    "service.requests_shed",
    "service.lease_takeovers",
)

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str, prefix: str = "repro") -> str:
    """Sanitise a dotted registry name into a legal Prometheus metric
    name (``store.hits`` → ``repro_store_hits``)."""
    flattened = _INVALID.sub("_", name.replace(".", "_"))
    flattened = flattened.strip("_") or "metric"
    if flattened[0].isdigit():
        flattened = f"_{flattened}"
    return f"{prefix}_{flattened}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _sample(name: str, value: Any, labels: Optional[Dict[str, str]] = None) -> str:
    rendered = ""
    if labels:
        inner = ",".join(
            f'{key}="{_escape_label(str(val))}"'
            for key, val in sorted(labels.items())
        )
        rendered = f"{{{inner}}}"
    if isinstance(value, float):
        return f"{name}{rendered} {value!r}"
    return f"{name}{rendered} {value}"


def render_prometheus(
    registry: Registry,
    job_counts: Optional[Dict[str, int]] = None,
    store_stats: Optional[Dict[str, Any]] = None,
    extra_gauges: Optional[Dict[str, Any]] = None,
) -> str:
    """Render *registry* (plus optional scheduler job-state totals and
    store statistics) as Prometheus text exposition; always ends with
    a trailing newline as the format requires.

    *extra_gauges* maps bare metric names (already underscored, e.g.
    ``service_queue_depth``) to instantaneous values — the hook the
    service uses for operational gauges that aren't counters (queue
    depth, lease ages)."""
    lines: List[str] = []
    counters = dict.fromkeys(WELL_KNOWN_COUNTERS, 0)
    counters.update(registry.counters)
    for name in sorted(counters):
        metric = f"{metric_name(name)}_total"
        lines.append(f"# HELP {metric} Registry counter {name}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(_sample(metric, counters[name]))
    for name, totals in registry.timers.items():
        seconds = f"{metric_name(name)}_seconds_total"
        lines.append(f"# HELP {seconds} Accumulated wall seconds of timer {name}")
        lines.append(f"# TYPE {seconds} counter")
        lines.append(_sample(seconds, float(totals["total_s"])))
        count = f"{metric_name(name)}_timer_count_total"
        lines.append(f"# HELP {count} Timed intervals of timer {name}")
        lines.append(f"# TYPE {count} counter")
        lines.append(_sample(count, totals["count"]))
    for name, histogram in registry.histograms.items():
        observations = f"{metric_name(name)}_observations_total"
        lines.append(f"# HELP {observations} Observations of histogram {name}")
        lines.append(f"# TYPE {observations} counter")
        lines.append(_sample(observations, histogram["count"]))
        total = f"{metric_name(name)}_sum"
        lines.append(f"# HELP {total} Sum of observed values of histogram {name}")
        lines.append(f"# TYPE {total} gauge")
        lines.append(_sample(total, histogram["total"]))
    if job_counts is not None:
        metric = "repro_service_jobs"
        lines.append(f"# HELP {metric} Jobs per scheduler state")
        lines.append(f"# TYPE {metric} gauge")
        for state in sorted(job_counts):
            lines.append(
                _sample(metric, job_counts[state], labels={"state": state})
            )
    if store_stats is not None:
        for key, help_text in (
            ("entries", "Cells in the result store"),
            ("total_hits", "Accumulated store row hits"),
            ("payload_bytes", "Stored payload bytes"),
            ("db_bytes", "Store database file size"),
        ):
            value = store_stats.get(key)
            if not isinstance(value, (int, float)):
                continue
            metric = f"repro_store_{key}"
            lines.append(f"# HELP {metric} {help_text}")
            lines.append(f"# TYPE {metric} gauge")
            lines.append(_sample(metric, value))
    for name in sorted(extra_gauges or {}):
        value = extra_gauges[name]
        if not isinstance(value, (int, float)):
            continue
        metric = metric_name(name)
        lines.append(f"# HELP {metric} Service gauge {name}")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(_sample(metric, value))
    return "\n".join(lines) + "\n"

"""Run manifests: the provenance record attached to every report.

A :class:`RunManifest` answers "what exactly produced this number?"
for any simulation cell: the repository revision, interpreter and
platform, the configuration label and fully resolved trace key, and
what the run cost (wall time, CPU time, peak RSS).  The harness runner
stamps one onto every :class:`~repro.metrics.report.SimulationReport`,
and :mod:`repro.harness.export` serialises it into every JSON export,
so results files are self-describing.

Everything here is stdlib-only and cheap: the git SHA is resolved once
per process (cached), peak RSS comes from ``resource.getrusage`` where
available (0 on platforms without it), and the dataclass is picklable
so manifests cross process-pool boundaries intact.
"""

from __future__ import annotations

import functools
import os
import platform as platform_module
import subprocess
import sys
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional, Tuple

#: manifest-schema version stamped on every manifest
MANIFEST_SCHEMA = "repro-manifest/v1"

#: job-manifest schema stamped on every service job manifest
JOB_MANIFEST_SCHEMA = "repro-job-manifest/v1"


@functools.lru_cache(maxsize=1)
def git_sha() -> str:
    """The repository HEAD SHA, or ``"unknown"`` outside a checkout
    (resolved once per process)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def peak_rss_kb() -> int:
    """Peak resident-set size of this process in KiB (0 if the
    platform exposes no ``getrusage``)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss in bytes
        peak //= 1024
    return int(peak)


@dataclass(frozen=True)
class RunManifest:
    """Provenance + cost record of one simulation (or benchmark) run."""

    schema: str = MANIFEST_SCHEMA
    git_sha: str = "unknown"
    python: str = ""
    platform: str = ""
    config_label: str = ""
    program: str = ""
    trace_key: Tuple = ()
    wall_time_s: float = 0.0
    cpu_time_s: float = 0.0
    peak_rss_kb: int = 0
    pid: int = 0
    extra: Optional[Dict[str, Any]] = field(default=None)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form for JSON serialisation (trace key becomes a
        list, ``extra`` is elided when empty)."""
        payload = asdict(self)
        payload["trace_key"] = list(self.trace_key)
        if not payload["extra"]:
            payload.pop("extra")
        return payload


def job_manifest(
    job_id: str,
    counters: Optional[Dict[str, Any]] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Provenance + accounting manifest for one service job.

    The job-level analogue of :func:`collect`: host provenance (git
    SHA, interpreter, platform, peak RSS) plus the job's *counters* —
    cell totals, store hit/miss/dedup splits, shard layout, wall time
    — nested under ``counters``.  The service stamps one
    on every completed job (``GET /api/v1/jobs/<id>/manifest``), which
    is what the CI smoke job uploads and what the resubmission test
    asserts its "zero cells re-simulated" claim against."""
    payload: Dict[str, Any] = {
        "schema": JOB_MANIFEST_SCHEMA,
        "job_id": job_id,
        "git_sha": git_sha(),
        "python": platform_module.python_version(),
        "platform": f"{platform_module.system()}-{platform_module.machine()}",
        "peak_rss_kb": peak_rss_kb(),
        "pid": os.getpid(),
    }
    payload["counters"] = dict(counters or {})
    if extra:
        payload["extra"] = dict(extra)
    return payload


def collect(
    config_label: str = "",
    program: str = "",
    trace_key: Tuple = (),
    wall_time_s: float = 0.0,
    cpu_time_s: float = 0.0,
    extra: Optional[Dict[str, Any]] = None,
) -> RunManifest:
    """Build a manifest for the current process and the given run."""
    return RunManifest(
        git_sha=git_sha(),
        python=platform_module.python_version(),
        platform=f"{platform_module.system()}-{platform_module.machine()}",
        config_label=config_label,
        program=program,
        trace_key=tuple(trace_key),
        wall_time_s=wall_time_s,
        cpu_time_s=cpu_time_s,
        peak_rss_kb=peak_rss_kb(),
        pid=os.getpid(),
        extra=dict(extra) if extra else None,
    )

"""Event sinks: where rendered telemetry events go.

The sink contract is a single method — ``write(event: dict)`` — plus
an optional ``close()``; :meth:`repro.telemetry.core.Registry.emit`
drives it.  Two implementations:

* :class:`MemorySink` — keeps events in a list (tests, programmatic
  consumers);
* :class:`NDJSONSink` — newline-delimited JSON on disk, one event per
  line, with **atomic rotation**: when the current file would exceed
  ``max_bytes`` the sink closes it, shifts ``path.1 → path.2 → ...``
  and renames the full file to ``path.1`` via :func:`os.replace`
  (atomic on POSIX), so a reader never observes a half-rotated file.

:func:`write_events` is the one-shot convenience used by the CLI's
``--telemetry`` flag: dump a full event stream to a temp file and
atomically publish it with ``os.replace``.

:func:`write_chrome_trace` converts the span events of a rendered
stream into Chrome trace-event JSON (the ``about:tracing`` /
Perfetto format), so runner and engine spans can be inspected on a
timeline — one complete (``"ph": "X"``) event per span, grouped by
the recording pid.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional


class MemorySink:
    """In-memory sink: events accumulate in :attr:`events`."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def write(self, event: Dict[str, Any]) -> None:
        """Append *event* to the in-memory list."""
        self.events.append(event)

    def close(self) -> None:
        """No-op (kept for sink-contract symmetry)."""


class NDJSONSink:
    """Newline-delimited-JSON file sink with atomic size-based rotation.

    ``max_bytes=None`` (the default) never rotates; otherwise a write
    that would push the current file past the threshold first rotates:
    ``path`` is atomically renamed to ``path.1`` (older generations
    shift up, the oldest beyond ``backups`` is dropped) and a fresh
    file is started.  Every line is flushed as written, so the stream
    is tail-able while a run is in flight.
    """

    def __init__(
        self,
        path: str,
        max_bytes: Optional[int] = None,
        backups: int = 3,
    ) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        if backups < 1:
            raise ValueError("backups must be positive")
        self.path = path
        self.max_bytes = max_bytes
        self.backups = backups
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._handle = open(path, "a", encoding="utf-8")
        self._size = self._handle.tell()

    def write(self, event: Dict[str, Any]) -> None:
        """Serialise *event* as one JSON line (rotating first if the
        line would push the file past ``max_bytes``)."""
        line = json.dumps(event, sort_keys=True) + "\n"
        encoded = len(line.encode("utf-8"))
        if (
            self.max_bytes is not None
            and self._size > 0
            and self._size + encoded > self.max_bytes
        ):
            self.rotate()
        self._handle.write(line)
        self._handle.flush()
        self._size += encoded

    def rotate(self) -> None:
        """Atomically shift the generation chain and start a new file."""
        self._handle.close()
        oldest = f"{self.path}.{self.backups}"
        if os.path.exists(oldest):
            os.remove(oldest)
        for generation in range(self.backups - 1, 0, -1):
            source = f"{self.path}.{generation}"
            if os.path.exists(source):
                os.replace(source, f"{self.path}.{generation + 1}")
        if os.path.exists(self.path):
            os.replace(self.path, f"{self.path}.1")
        self._handle = open(self.path, "a", encoding="utf-8")
        self._size = 0

    def close(self) -> None:
        """Flush and close the current file."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "NDJSONSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def write_events(path: str, events: Iterable[Dict[str, Any]]) -> int:
    """Atomically write *events* to *path* as NDJSON (temp file +
    ``os.replace``); returns the number of events written."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    temp = f"{path}.tmp.{os.getpid()}"
    count = 0
    with open(temp, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True) + "\n")
            count += 1
    os.replace(temp, path)
    return count


def chrome_trace_events(events: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Convert the ``span`` events of a rendered telemetry stream into
    Chrome trace-event dicts.

    Timestamps are re-based so the earliest span starts at 0 µs (the
    raw ``start_s`` values are monotonic-clock readings whose epoch is
    the machine's boot, which trace viewers render poorly).  Span tags
    become the event's ``args``.
    """
    spans = [event for event in events if event.get("event") == "span"]
    if not spans:
        return []
    base_s = min(span.get("start_s", 0.0) for span in spans)
    trace_events = []
    for span in spans:
        pid = span.get("pid", 0)
        trace_events.append(
            {
                "name": span["name"],
                "cat": "repro",
                "ph": "X",
                "ts": (span.get("start_s", 0.0) - base_s) * 1e6,
                "dur": span.get("duration_s", 0.0) * 1e6,
                "pid": pid,
                "tid": pid,
                "args": dict(span.get("tags", {})),
            }
        )
    trace_events.sort(key=lambda event: (event["pid"], event["ts"]))
    return trace_events


def write_chrome_trace(path: str, events: Iterable[Dict[str, Any]]) -> int:
    """Atomically write the spans of *events* to *path* as a Chrome
    trace (JSON object with a ``traceEvents`` array — loadable in
    ``about:tracing`` / Perfetto); returns the span count."""
    trace_events = chrome_trace_events(events)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    temp = f"{path}.tmp.{os.getpid()}"
    with open(temp, "w", encoding="utf-8") as handle:
        json.dump(
            {"traceEvents": trace_events, "displayTimeUnit": "ms"},
            handle,
            sort_keys=True,
        )
        handle.write("\n")
    os.replace(temp, path)
    return len(trace_events)


def read_events(path: str) -> List[Dict[str, Any]]:
    """Parse an NDJSON file back into a list of event dicts."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events

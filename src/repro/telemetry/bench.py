"""Standardised benchmark runs and the perf regression gate.

``python -m repro.harness bench`` drives this module: it times the two
workloads the repo's perf story hinges on —

* **engine** — raw fetch-engine throughput (events and instructions
  simulated per second) for one representative configuration of each
  front-end family, the same shape as
  ``benchmarks/bench_engine_throughput.py``;
* **sweep** — a pooled, deduplicated multi-figure run plan executed
  with the reference engine and then with the batched fast engine on
  the serial and process backends, the same shape as
  ``benchmarks/bench_sweep_parallel.py``; the manifest carries the
  per-engine-class dispatch breakdown;

and emits each as a schema-versioned payload (``repro-bench/v1``)
written atomically to ``BENCH_engine.json`` / ``BENCH_sweep.json``.
Every payload embeds a :class:`~repro.telemetry.manifest.RunManifest`,
so a benchmark number is never divorced from the revision and machine
that produced it.

:func:`gate` implements ``bench --gate BASELINE.json``: every
throughput metric in the baseline (keys ending ``_per_s``, higher is
better) must be within ``tolerance`` of the current run — a current
value below ``baseline × (1 - tolerance)`` is a regression, as is a
metric that disappeared.  Extra metrics in the current payload are
ignored, so baselines age gracefully as benchmarks grow.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.telemetry import manifest as manifest_module

#: benchmark payload schema version
BENCH_SCHEMA = "repro-bench/v1"

#: default benchmark artifact filenames (written at the repo root)
ENGINE_BENCH_FILE = "BENCH_engine.json"
SWEEP_BENCH_FILE = "BENCH_sweep.json"

#: append-only perf-trajectory file (one NDJSON line per bench run)
BENCH_HISTORY_FILE = "BENCH_history.ndjson"

#: trajectory-line schema stamp
BENCH_HISTORY_SCHEMA = "repro-bench-history/v1"

#: one representative configuration per front-end family
ENGINE_FRONTENDS: Tuple[Tuple[str, Dict[str, Any]], ...] = (
    ("btb", {"entries": 128}),
    ("nls-table", {"entries": 1024}),
    ("nls-cache", {}),
    ("johnson", {}),
)

#: full / smoke trace budgets for the engine benchmark
ENGINE_INSTRUCTIONS = 150_000
ENGINE_INSTRUCTIONS_SMOKE = 15_000

#: full / smoke shapes for the sweep benchmark
SWEEP_PROGRAMS: Tuple[str, ...] = ("li", "doduc")
SWEEP_PROGRAMS_SMOKE: Tuple[str, ...] = ("li",)
SWEEP_INSTRUCTIONS = 60_000
SWEEP_INSTRUCTIONS_SMOKE = 8_000
SWEEP_GRID: Tuple[Tuple[int, int], ...] = ((8, 1), (16, 1), (16, 4))
SWEEP_GRID_SMOKE: Tuple[Tuple[int, int], ...] = ((8, 1), (16, 1))


def _payload(kind: str, results: Dict[str, Dict[str, float]], **extra) -> Dict[str, Any]:
    return {
        "schema": BENCH_SCHEMA,
        "kind": kind,
        "manifest": manifest_module.collect(
            config_label=f"bench-{kind}", extra=extra or None
        ).to_dict(),
        "results": results,
    }


def bench_engine(
    instructions: int = ENGINE_INSTRUCTIONS,
    program: str = "gcc",
    repeats: int = 3,
    frontends: Sequence[Tuple[str, Dict[str, Any]]] = ENGINE_FRONTENDS,
) -> Dict[str, Any]:
    """Time the fetch-engine hot loop per front-end family.

    Each configuration simulates the same memoised *program* trace;
    the best (minimum) wall time of *repeats* rounds is reported,
    converted to events/s and instructions/s.  Front-ends inside the
    vectorised engine's supported matrix are additionally timed with
    ``engine="fast"`` under a ``<frontend>-fast`` label whose
    ``speedup_vs_reference`` records the wall-time ratio — the number
    ``docs/PERFORMANCE.md`` and the fast-engine acceptance gate key on.
    """
    from repro.fetch.fast_engine import unsupported_reason
    from repro.harness.config import ArchitectureConfig
    from repro.workloads.corpus import generate_trace

    trace = generate_trace(program, instructions=instructions)
    events = len(trace.starts)
    results: Dict[str, Dict[str, float]] = {}

    def _best_wall(config: "ArchitectureConfig") -> float:
        best = float("inf")
        for _ in range(max(1, repeats)):
            engine = config.build()
            started = time.perf_counter()
            engine.run(trace)
            best = min(best, time.perf_counter() - started)
        return best

    for frontend, kwargs in frontends:
        config = ArchitectureConfig(frontend=frontend, cache_kb=16, **kwargs)
        best = _best_wall(config)
        results[frontend] = {
            "wall_s": best,
            "events_per_s": events / best,
            "instructions_per_s": trace.n_instructions / best,
        }
        fast_config = ArchitectureConfig(
            frontend=frontend, cache_kb=16, engine="fast", **kwargs
        )
        if unsupported_reason(fast_config) is None:
            fast_best = _best_wall(fast_config)
            results[f"{frontend}-fast"] = {
                "wall_s": fast_best,
                "events_per_s": events / fast_best,
                "instructions_per_s": trace.n_instructions / fast_best,
                "speedup_vs_reference": best / fast_best,
            }
    return _payload(
        "engine", results, program=program, instructions=instructions, events=events
    )


def bench_sweep(
    programs: Sequence[str] = SWEEP_PROGRAMS,
    instructions: int = SWEEP_INSTRUCTIONS,
    cache_grid: Sequence[Tuple[int, int]] = SWEEP_GRID,
    jobs: Optional[int] = None,
    figures: Sequence[str] = ("fig4", "fig5", "fig8"),
) -> Dict[str, Any]:
    """Time a pooled multi-figure run plan: reference vs batched fast.

    The same deduplicated cell pool runs three ways — reference engine
    on the serial backend, then ``engine="fast"`` on the serial and
    process backends (where the runner groups cells by trace and
    batch-compatibility signature and replays each group through one
    shared :class:`~repro.fetch.fast_engine.TraceReplayContext`).
    ``speedup_vs_reference`` on the fast entries is the headline
    batched-sweep number; all three result sets are checked for
    equality so a throughput win can never hide a correctness drift.

    The manifest records how every cell dispatched
    (``engine_classes``: ``fast_batched`` / ``fast_single`` /
    ``reference`` / ``fallback`` counts) plus the labelled
    ``fallback_cells``; :func:`gate` fails a sweep payload whose
    paper-figure cells fell back to the reference engine.
    """
    from dataclasses import replace

    from repro.fetch.capability import engine_class, fallback_reason
    from repro.harness.experiments import SPECS
    from repro.harness.runner import RunPlan
    from repro.workloads.corpus import clear_cache

    plan = RunPlan()
    for name in figures:
        cells = SPECS[name].plan(
            programs=tuple(programs),
            instructions=instructions,
            cache_grid=tuple(cache_grid),
        ).cells
        plan.add_all(cells)

    fast_cells = [
        replace(cell, config=replace(cell.config, engine="fast"))
        for cell in plan.requests
    ]
    classes = {"fast_batched": 0, "fast_single": 0, "reference": 0, "fallback": 0}
    fallback_cells: List[Dict[str, str]] = []
    for cell in fast_cells:
        reason = fallback_reason(cell.config)
        if reason is not None:
            classes["reference"] += 1
            classes["fallback"] += 1
            fallback_cells.append(
                {"label": cell.config.label(), "reason": reason.value}
            )
        else:
            key = engine_class(cell.config).value.replace("-", "_")
            classes[key] += 1

    clear_cache()
    started = time.perf_counter()
    reference = RunPlan(plan.requests).execute(backend="serial")
    reference_wall = time.perf_counter() - started

    started = time.perf_counter()
    fast_serial = RunPlan(fast_cells).execute(backend="serial")
    fast_serial_wall = time.perf_counter() - started

    started = time.perf_counter()
    fast_process = RunPlan(fast_cells).execute(backend="process", jobs=jobs)
    fast_process_wall = time.perf_counter() - started

    if fast_serial != fast_process:
        raise RuntimeError("serial and process backends disagreed on reports")
    for cell, fast_cell in zip(plan.requests, fast_cells):
        if reference[cell] != fast_serial[fast_cell]:
            raise RuntimeError(
                "fast and reference engines disagreed on "
                f"{fast_cell.config.label()} ({fast_cell.program})"
            )

    results = {
        "reference": {
            "wall_s": reference_wall,
            "cells_per_s": plan.unique / reference_wall,
        },
        "fast_serial": {
            "wall_s": fast_serial_wall,
            "cells_per_s": plan.unique / fast_serial_wall,
            "speedup_vs_reference": (
                reference_wall / fast_serial_wall if fast_serial_wall else 0.0
            ),
        },
        "fast_process": {
            "wall_s": fast_process_wall,
            "cells_per_s": plan.unique / fast_process_wall,
            "speedup_vs_reference": (
                reference_wall / fast_process_wall if fast_process_wall else 0.0
            ),
        },
    }
    return _payload(
        "sweep",
        results,
        programs=list(programs),
        instructions=instructions,
        figures=list(figures),
        cells_requested=plan.requested,
        cells_unique=plan.unique,
        speedup=reference_wall / fast_serial_wall if fast_serial_wall else 0.0,
        engine_classes=classes,
        fallback_cells=fallback_cells,
    )


def run_bench_suite(
    smoke: bool = False, jobs: Optional[int] = None
) -> Dict[str, Dict[str, Any]]:
    """Run both standard benchmarks; ``smoke`` shrinks every budget so
    the suite finishes in seconds (CI and tests)."""
    engine = bench_engine(
        instructions=ENGINE_INSTRUCTIONS_SMOKE if smoke else ENGINE_INSTRUCTIONS,
        repeats=1 if smoke else 3,
    )
    sweep = bench_sweep(
        programs=SWEEP_PROGRAMS_SMOKE if smoke else SWEEP_PROGRAMS,
        instructions=SWEEP_INSTRUCTIONS_SMOKE if smoke else SWEEP_INSTRUCTIONS,
        cache_grid=SWEEP_GRID_SMOKE if smoke else SWEEP_GRID,
        jobs=jobs,
    )
    return {"engine": engine, "sweep": sweep}


def write_bench(payload: Dict[str, Any], path: str) -> str:
    """Atomically write a benchmark *payload* as pretty JSON (temp
    file + ``os.replace``); returns *path*."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    temp = f"{path}.tmp.{os.getpid()}"
    with open(temp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(temp, path)
    return path


def append_history(
    suite: Dict[str, Dict[str, Any]], directory: str
) -> str:
    """Append every payload of *suite* to the directory's
    ``BENCH_history.ndjson`` trajectory file; returns the path.

    Each line is a self-contained, schema-versioned record — kind,
    git SHA, timestamp and the payload's result metrics — so the
    analysis dashboard (docs/ANALYSIS.md) can plot throughput over
    revisions instead of only comparing against the latest baseline
    pair.  Lines are single flushed ``write()`` calls: a crash can at
    worst tear the final line, which the loader skips.
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, BENCH_HISTORY_FILE)
    with open(path, "a", encoding="utf-8") as handle:
        for kind in sorted(suite):
            payload = suite[kind]
            manifest = payload.get("manifest", {})
            line = {
                "schema": BENCH_HISTORY_SCHEMA,
                "kind": payload.get("kind", kind),
                "t_s": time.time(),
                "git_sha": manifest.get("git_sha"),
                "results": payload.get("results", {}),
            }
            handle.write(json.dumps(line, sort_keys=True) + "\n")
            handle.flush()
    return path


def load_bench(path: str) -> Dict[str, Any]:
    """Read a benchmark payload back, validating its schema stamp."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    schema = payload.get("schema")
    if schema != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: unsupported bench schema {schema!r} (expected {BENCH_SCHEMA!r})"
        )
    return payload


def gate(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = 0.10,
) -> List[str]:
    """Compare *current* against *baseline*; returns the violations.

    Every ``*_per_s`` metric of every baseline result entry must
    satisfy ``current >= baseline × (1 - tolerance)``; a missing entry
    or metric is itself a violation.  A sweep payload whose manifest
    records fallback cells (``engine_classes.fallback > 0``) also
    fails: every paper-figure cell must run inside the fast engine's
    closed matrix.  An empty return means the gate passes.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError("tolerance must be in [0, 1)")
    violations: List[str] = []
    extra = current.get("manifest", {}).get("extra") or {}
    classes = extra.get("engine_classes")
    if classes and classes.get("fallback", 0) > 0:
        labels = ", ".join(
            f"{cell['label']} ({cell['reason']})"
            for cell in extra.get("fallback_cells", [])
        )
        violations.append(
            f"engine_classes.fallback: {classes['fallback']} sweep cell(s) "
            f"fell back to the reference engine"
            + (f": {labels}" if labels else "")
        )
    current_results = current.get("results", {})
    for label in sorted(baseline.get("results", {})):
        base_metrics = baseline["results"][label]
        cur_metrics = current_results.get(label)
        if cur_metrics is None:
            violations.append(f"{label}: missing from current benchmark results")
            continue
        for metric in sorted(base_metrics):
            if not metric.endswith("_per_s"):
                continue
            base_value = base_metrics[metric]
            cur_value = cur_metrics.get(metric)
            if cur_value is None:
                violations.append(f"{label}.{metric}: missing from current results")
                continue
            floor = base_value * (1.0 - tolerance)
            if cur_value < floor:
                slowdown = 100.0 * (1.0 - cur_value / base_value)
                violations.append(
                    f"{label}.{metric}: {cur_value:,.0f} < floor {floor:,.0f} "
                    f"({slowdown:.1f}% below baseline {base_value:,.0f})"
                )
    return violations

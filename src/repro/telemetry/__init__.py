"""Telemetry subsystem: structured counters, timers, spans, sinks,
run manifests and the benchmark regression gate.

Four pieces (DESIGN.md §10):

* :mod:`repro.telemetry.core` — the instrumentation API.  A
  :class:`Registry` hands out :class:`Counter` / :class:`Timer` /
  :class:`Span` instruments; a *disabled* registry (the process-wide
  default) hands out shared null objects, so instrumented code pays
  nothing unless a caller opts in via :func:`use`.
* :mod:`repro.telemetry.sinks` — where rendered events go:
  :class:`MemorySink` and the :class:`NDJSONSink` file writer with
  atomic rotation.
* :mod:`repro.telemetry.manifest` — the :class:`RunManifest`
  provenance record (git SHA, interpreter/platform, trace key,
  wall/CPU time, peak RSS) stamped on every simulation report.
* :mod:`repro.telemetry.bench` — the standardised ``bench`` workloads
  behind ``python -m repro.harness bench``, their ``BENCH_*.json``
  artifacts, and the :func:`~repro.telemetry.bench.gate` regression
  check.
"""

from repro.telemetry.core import (
    EVENT_SCHEMA,
    Counter,
    EventTrace,
    Histogram,
    Registry,
    Span,
    Timer,
    get_registry,
    set_registry,
    use,
)
from repro.telemetry.manifest import MANIFEST_SCHEMA, RunManifest, collect
from repro.telemetry.sinks import (
    MemorySink,
    NDJSONSink,
    chrome_trace_events,
    read_events,
    write_chrome_trace,
    write_events,
)

__all__ = [
    "EVENT_SCHEMA",
    "MANIFEST_SCHEMA",
    "Counter",
    "Timer",
    "Histogram",
    "EventTrace",
    "Span",
    "Registry",
    "RunManifest",
    "MemorySink",
    "NDJSONSink",
    "chrome_trace_events",
    "collect",
    "get_registry",
    "set_registry",
    "use",
    "read_events",
    "write_chrome_trace",
    "write_events",
]

"""Raw event counters collected by the fetch engine.

Every executed break is classified as exactly one of correct /
misfetched / mispredicted ("a mispredicted branch is never counted as
a misfetched branch and vice versa", §5.2), tallied per branch kind so
reports can attribute penalties (e.g. the indirect-jump mispredict
variation discussed with Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.isa.branches import BranchKind


@dataclass
class KindCounters:
    """Outcome tallies for one branch kind."""

    executed: int = 0
    misfetched: int = 0
    mispredicted: int = 0

    @property
    def correct(self) -> int:
        """Breaks that were fetched and predicted correctly."""
        return self.executed - self.misfetched - self.mispredicted


@dataclass
class SimulationCounters:
    """Everything a simulation run counts."""

    n_instructions: int = 0
    icache_accesses: int = 0
    icache_misses: int = 0
    by_kind: Dict[BranchKind, KindCounters] = field(
        default_factory=lambda: {
            kind: KindCounters() for kind in BranchKind if kind != BranchKind.NOT_A_BRANCH
        }
    )

    # ------------------------------------------------------------------

    @property
    def n_breaks(self) -> int:
        """Total executed break instructions."""
        return sum(counter.executed for counter in self.by_kind.values())

    @property
    def misfetches(self) -> int:
        """Total misfetched breaks."""
        return sum(counter.misfetched for counter in self.by_kind.values())

    @property
    def mispredicts(self) -> int:
        """Total mispredicted breaks."""
        return sum(counter.mispredicted for counter in self.by_kind.values())

    @property
    def penalty_events(self) -> int:
        """Total penalised breaks (misfetches + mispredicts) — the
        population a cause attribution must partition exactly."""
        return self.misfetches + self.mispredicts

    @property
    def icache_miss_rate(self) -> float:
        """Instruction-cache miss rate over line-granularity accesses."""
        if self.icache_accesses == 0:
            return 0.0
        return self.icache_misses / self.icache_accesses

    # ------------------------------------------------------------------

    def record(self, kind: BranchKind, misfetched: bool, mispredicted: bool) -> None:
        """Tally one resolved break."""
        if misfetched and mispredicted:
            raise ValueError("a break cannot be both misfetched and mispredicted")
        counter = self.by_kind[kind]
        counter.executed += 1
        if misfetched:
            counter.misfetched += 1
        elif mispredicted:
            counter.mispredicted += 1

    def check(self) -> None:
        """Internal-consistency assertions (used by tests)."""
        for kind, counter in self.by_kind.items():
            if counter.misfetched + counter.mispredicted > counter.executed:
                raise ValueError(f"{kind.name}: outcomes exceed executions")
        if self.icache_misses > self.icache_accesses:
            raise ValueError("more cache misses than accesses")

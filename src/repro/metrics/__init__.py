"""Performance metrics: misfetch/mispredict rates, BEP and CPI (§5.2)."""

from repro.metrics.counters import KindCounters, SimulationCounters
from repro.metrics.report import PenaltyModel, SimulationReport, average_reports

__all__ = [
    "KindCounters",
    "SimulationCounters",
    "PenaltyModel",
    "SimulationReport",
    "average_reports",
]

"""Derived performance metrics: %MfB, %MpB, BEP and CPI.

The paper's definitions (§5.2):

* ``BEP = (%MfB × misfetch_penalty + %MpB × mispredict_penalty) / 100``
  — the average penalty cycles per executed break;
* ``CPI = (N + BEP × #branches + #icache_misses × miss_penalty) / N``
  for a single-issue machine (CPI >= 1; no data cache, no other
  hazards).

Default penalties follow the paper: 1-cycle misfetch, 4-cycle
mispredict, 5-cycle instruction-cache miss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional

from repro.isa.branches import BranchKind
from repro.metrics.counters import SimulationCounters
from repro.telemetry.manifest import RunManifest


@dataclass(frozen=True)
class PenaltyModel:
    """Cycle costs of the three penalty events."""

    misfetch: float = 1.0
    mispredict: float = 4.0
    icache_miss: float = 5.0

    def __post_init__(self) -> None:
        for name in ("misfetch", "mispredict", "icache_miss"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} penalty must be non-negative")


@dataclass(frozen=True)
class RunMetadata:
    """Provenance of one simulation cell.

    Attached to the :class:`SimulationReport` a cell produces so any
    number in any rendered figure can be traced back to the exact
    (config, program, seed, layout) that generated it, which backend
    executed it, and what it cost in wall time.
    """

    config_label: str
    program: str
    instructions: Optional[int] = None
    seed: Optional[int] = None
    layout: str = "natural"
    warmup: float = 0.0
    backend: str = "serial"
    wall_time_s: float = 0.0
    pid: int = 0


@dataclass(frozen=True)
class SimulationReport:
    """All derived metrics of one simulation run."""

    label: str
    program: str
    n_instructions: int
    n_breaks: int
    misfetches: int
    mispredicts: int
    icache_accesses: int
    icache_misses: int
    penalties: PenaltyModel = field(default_factory=PenaltyModel)
    #: optional per-kind (executed, misfetched, mispredicted) breakdown
    by_kind: Optional[Dict[BranchKind, tuple]] = None
    #: optional front-end-specific statistics (e.g. the NLS front
    #: ends' mismatch-cause histogram), deterministic per cell
    frontend_stats: Optional[Dict[str, int]] = None
    #: optional cause-attribution snapshot (DESIGN.md §11): per-cause
    #: totals, per-site profiles, gap histogram and sampled event ring
    #: from an :class:`~repro.fetch.attribution.AttributionCollector`;
    #: sampling makes the trace portion vary with configuration, so
    #: like provenance it stays out of equality
    attribution: Optional[Dict[str, Any]] = field(default=None, compare=False)
    #: run provenance, attached by the harness runner; wall time and
    #: worker pid vary run to run, so it never participates in equality
    meta: Optional[RunMetadata] = field(default=None, compare=False)
    #: environment + cost manifest (git SHA, interpreter, trace key,
    #: wall/CPU time, peak RSS), attached by the harness runner; like
    #: ``meta`` it varies run to run and never participates in equality
    manifest: Optional[RunManifest] = field(default=None, compare=False)

    # ------------------------------------------------------------------

    @classmethod
    def from_counters(
        cls,
        counters: SimulationCounters,
        label: str = "",
        program: str = "",
        penalties: Optional[PenaltyModel] = None,
        frontend_stats: Optional[Dict[str, int]] = None,
        attribution: Optional[Dict[str, Any]] = None,
    ) -> "SimulationReport":
        """Derive a report from raw counters."""
        return cls(
            label=label,
            program=program,
            n_instructions=counters.n_instructions,
            n_breaks=counters.n_breaks,
            misfetches=counters.misfetches,
            mispredicts=counters.mispredicts,
            icache_accesses=counters.icache_accesses,
            icache_misses=counters.icache_misses,
            penalties=penalties or PenaltyModel(),
            by_kind={
                kind: (c.executed, c.misfetched, c.mispredicted)
                for kind, c in counters.by_kind.items()
            },
            frontend_stats=frontend_stats,
            attribution=attribution,
        )

    # ------------------------------------------------------------------

    @property
    def pct_misfetched(self) -> float:
        """%MfB — misfetched breaks per hundred executed breaks."""
        if self.n_breaks == 0:
            return 0.0
        return 100.0 * self.misfetches / self.n_breaks

    @property
    def pct_mispredicted(self) -> float:
        """%MpB — mispredicted breaks per hundred executed breaks."""
        if self.n_breaks == 0:
            return 0.0
        return 100.0 * self.mispredicts / self.n_breaks

    @property
    def bep_misfetch(self) -> float:
        """Misfetch component of the BEP (the upper bar segment in the
        paper's figures)."""
        return self.pct_misfetched * self.penalties.misfetch / 100.0

    @property
    def bep_mispredict(self) -> float:
        """Mispredict component of the BEP (the lower bar segment)."""
        return self.pct_mispredicted * self.penalties.mispredict / 100.0

    @property
    def bep(self) -> float:
        """Branch execution penalty — average penalty cycles/break."""
        return self.bep_misfetch + self.bep_mispredict

    @property
    def icache_miss_rate(self) -> float:
        """Instruction-cache miss rate."""
        if self.icache_accesses == 0:
            return 0.0
        return self.icache_misses / self.icache_accesses

    @property
    def cpi(self) -> float:
        """Cycles per instruction (single issue, §5.2 definition)."""
        if self.n_instructions == 0:
            return 0.0
        penalty_cycles = (
            self.bep * self.n_breaks
            + self.icache_misses * self.penalties.icache_miss
        )
        return (self.n_instructions + penalty_cycles) / self.n_instructions

    # ------------------------------------------------------------------

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.label:<34} {self.program:<9} "
            f"%MfB={self.pct_misfetched:5.2f} %MpB={self.pct_mispredicted:5.2f} "
            f"BEP={self.bep:5.3f} miss={100 * self.icache_miss_rate:5.2f}% "
            f"CPI={self.cpi:6.4f}"
        )


def average_reports(
    reports: Iterable[SimulationReport], label: str = "average"
) -> SimulationReport:
    """Average a set of per-program reports into one, the way the
    paper's "overall average" figures do: the *rates* (%MfB, %MpB, and
    miss rate) are averaged with equal program weight, then re-expressed
    over the summed populations so derived metrics stay consistent.
    """
    reports = list(reports)
    if not reports:
        raise ValueError("cannot average zero reports")
    n = len(reports)
    penalties = reports[0].penalties
    mean_mf = sum(r.pct_misfetched for r in reports) / n
    mean_mp = sum(r.pct_mispredicted for r in reports) / n
    mean_miss = sum(r.icache_miss_rate for r in reports) / n
    # reconstruct absolute counts over a nominal population so the
    # report's derived properties reproduce the averaged rates exactly
    total_breaks = sum(r.n_breaks for r in reports)
    total_instructions = sum(r.n_instructions for r in reports)
    total_accesses = sum(r.icache_accesses for r in reports)
    return SimulationReport(
        label=label,
        program=f"mean[{n}]",
        n_instructions=total_instructions,
        n_breaks=total_breaks,
        misfetches=int(round(mean_mf * total_breaks / 100.0)),
        mispredicts=int(round(mean_mp * total_breaks / 100.0)),
        icache_accesses=total_accesses,
        icache_misses=int(round(mean_miss * total_accesses)),
        penalties=penalties,
    )

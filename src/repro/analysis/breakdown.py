"""Per-branch-kind penalty attribution.

Figure 7's discussion attributes mispredict-penalty differences across
architectures to indirect jumps; this module generalises that: given a
simulation report it computes, per branch kind, the share of executed
breaks and the share of total penalty cycles, so one can read off
statements like "returns are 12 % of breaks but only 1 % of penalty
cycles".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.isa.branches import BranchKind
from repro.metrics.report import SimulationReport


@dataclass(frozen=True)
class KindBreakdown:
    """Penalty attribution for one branch kind."""

    kind: BranchKind
    executed: int
    misfetched: int
    mispredicted: int
    penalty_cycles: float
    #: share of all executed breaks
    break_share: float
    #: share of all branch penalty cycles
    penalty_share: float

    @property
    def misfetch_rate(self) -> float:
        """Misfetched fraction of this kind's executions."""
        return self.misfetched / self.executed if self.executed else 0.0

    @property
    def mispredict_rate(self) -> float:
        """Mispredicted fraction of this kind's executions."""
        return self.mispredicted / self.executed if self.executed else 0.0


def penalty_breakdown(report: SimulationReport) -> List[KindBreakdown]:
    """Attribute *report*'s branch penalty cycles to branch kinds.

    Requires the report to carry its per-kind counters (reports built
    by the fetch engine always do; hand-built ones may not).
    """
    if report.by_kind is None:
        raise ValueError("report carries no per-kind counters")
    penalties = report.penalties
    rows: List[KindBreakdown] = []
    kind_cycles: Dict[BranchKind, float] = {}
    for kind, (executed, misfetched, mispredicted) in report.by_kind.items():
        kind_cycles[kind] = (
            misfetched * penalties.misfetch + mispredicted * penalties.mispredict
        )
    total_breaks = sum(executed for executed, _, _ in report.by_kind.values())
    total_cycles = sum(kind_cycles.values())
    for kind, (executed, misfetched, mispredicted) in sorted(
        report.by_kind.items(), key=lambda item: int(item[0])
    ):
        rows.append(
            KindBreakdown(
                kind=kind,
                executed=executed,
                misfetched=misfetched,
                mispredicted=mispredicted,
                penalty_cycles=kind_cycles[kind],
                break_share=executed / total_breaks if total_breaks else 0.0,
                penalty_share=(
                    kind_cycles[kind] / total_cycles if total_cycles else 0.0
                ),
            )
        )
    return rows


def format_breakdown(rows: List[KindBreakdown]) -> str:
    """Render a breakdown as a monospace table."""
    lines = [
        f"{'kind':<14} {'exec':>8} {'%breaks':>8} {'mf%':>6} {'mp%':>6} "
        f"{'penalty cyc':>12} {'%penalty':>9}"
    ]
    for row in rows:
        lines.append(
            f"{row.kind.name:<14} {row.executed:>8} {100 * row.break_share:>7.2f}% "
            f"{100 * row.misfetch_rate:>5.1f} {100 * row.mispredict_rate:>5.1f} "
            f"{row.penalty_cycles:>12.0f} {100 * row.penalty_share:>8.2f}%"
        )
    return "\n".join(lines)

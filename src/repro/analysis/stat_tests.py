"""Cross-run statistical comparisons and the regression verdict table.

Given a tidy :class:`~repro.analysis.results.ResultFrame` holding a
*baseline* and a *current* export set, :func:`compare` tests every
(experiment, metric) group the two sets share and emits one verdict
row per group:

* observations are paired on ``(key, seed, program)`` — the same
  figure leaf produced by the same seeded trace.  Complete pairs go
  through a **paired bootstrap** of the mean difference (deterministic
  ``numpy`` RNG, seeded per comparison, so the verdict table is
  byte-stable under fixed seeds);
* groups whose pairing is incomplete fall back to a two-sided
  **Mann-Whitney U** test (``scipy`` when available, a pure-Python
  normal approximation otherwise);
* a single shared observation degenerates to a **threshold** test:
  the simulator is deterministic, so any relative difference beyond
  ``min_rel_effect`` on a like-for-like cell is a real change;
* all p-values are **Benjamini-Hochberg** corrected across the whole
  table, and each row gets a verdict — ``improved`` / ``regressed`` /
  ``no-change`` (or ``shifted`` for metrics without a known better
  direction).

:func:`gate` distils the table into the CLI's ``analyze --gate``
contract: the names of the significantly regressed comparisons, empty
when the gate passes.
"""

from __future__ import annotations

import hashlib
import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.results import ResultFrame

#: verdict-table schema stamp
VERDICTS_SCHEMA = "repro-verdicts/v1"

#: metrics where a smaller value is the better outcome
LOWER_IS_BETTER = frozenset(
    {
        "bep",
        "bep_misfetch",
        "bep_mispredict",
        "cpi",
        "pct_misfetched",
        "pct_mispredicted",
        "icache_miss_rate",
        "mean_abs_error",
        "rbe",
        "cost",
        "count",
        "wall_s",
    }
)

#: metrics where a larger value is the better outcome
HIGHER_IS_BETTER = frozenset(
    {"accuracy", "rank_corr", "speedup", "speedup_vs_reference"}
)


def metric_direction(metric: str) -> Optional[str]:
    """``"lower"`` / ``"higher"`` = which way *metric* improves;
    ``None`` when no better direction is known (verdicts become
    ``shifted`` instead of improved/regressed)."""
    if metric in LOWER_IS_BETTER or metric.endswith(("_penalty", "_rate")):
        return "lower"
    if metric in HIGHER_IS_BETTER or metric.endswith("_per_s"):
        return "higher"
    return None


def _comparison_seed(seed: int, experiment: str, metric: str) -> int:
    """Deterministic per-comparison RNG seed (stable across runs and
    across the order comparisons happen to be generated in)."""
    digest = hashlib.sha256(
        f"{seed}:{experiment}:{metric}".encode("utf-8")
    ).hexdigest()
    return int(digest[:16], 16)


def paired_bootstrap_pvalue(
    diffs: Sequence[float], iterations: int = 2000, seed: int = 0
) -> float:
    """Two-sided bootstrap p-value for ``mean(diffs) != 0``.

    Resamples the paired differences with replacement and counts how
    often the resampled mean lands on each side of zero; the p-value
    is twice the smaller tail (with the usual +1 continuity guard).
    Deterministic for a fixed *seed*.
    """
    import numpy

    diffs = numpy.asarray(list(diffs), dtype=float)
    if len(diffs) == 0:
        return 1.0
    if numpy.all(diffs == 0.0):
        return 1.0
    rng = numpy.random.default_rng(seed)
    samples = rng.choice(diffs, size=(iterations, len(diffs)), replace=True)
    means = samples.mean(axis=1)
    at_or_below = float(numpy.count_nonzero(means <= 0.0) + 1) / (iterations + 1)
    at_or_above = float(numpy.count_nonzero(means >= 0.0) + 1) / (iterations + 1)
    return min(1.0, 2.0 * min(at_or_below, at_or_above))


def mann_whitney_pvalue(
    first: Sequence[float], second: Sequence[float]
) -> float:
    """Two-sided Mann-Whitney U p-value for two independent samples.

    Uses ``scipy.stats.mannwhitneyu`` when scipy is installed and an
    exact tie-corrected normal approximation otherwise, so the
    analysis layer works in the numpy-only environment.
    """
    first = list(first)
    second = list(second)
    if not first or not second:
        return 1.0
    try:
        from scipy.stats import mannwhitneyu

        result = mannwhitneyu(first, second, alternative="two-sided")
        return float(result.pvalue)
    except ImportError:  # pragma: no cover - env-dependent fallback
        pass
    except ValueError:
        return 1.0  # scipy rejects all-identical inputs
    return _mann_whitney_normal(first, second)


def _mann_whitney_normal(
    first: Sequence[float], second: Sequence[float]
) -> float:
    """Normal-approximation Mann-Whitney (tie-corrected)."""
    pooled = sorted(
        [(value, 0) for value in first] + [(value, 1) for value in second]
    )
    n1, n2 = len(first), len(second)
    total = n1 + n2
    ranks: List[float] = [0.0] * total
    ties: List[int] = []
    index = 0
    while index < total:
        stop = index
        while stop + 1 < total and pooled[stop + 1][0] == pooled[index][0]:
            stop += 1
        rank = (index + stop) / 2.0 + 1.0
        for position in range(index, stop + 1):
            ranks[position] = rank
        ties.append(stop - index + 1)
        index = stop + 1
    rank_sum = sum(
        rank for rank, (_, sample) in zip(ranks, pooled) if sample == 0
    )
    u_first = rank_sum - n1 * (n1 + 1) / 2.0
    mean = n1 * n2 / 2.0
    tie_term = sum(t**3 - t for t in ties)
    variance = (
        n1 * n2 / 12.0 * ((total + 1) - tie_term / (total * (total - 1)))
        if total > 1
        else 0.0
    )
    if variance <= 0.0:
        return 1.0
    z = (abs(u_first - mean) - 0.5) / math.sqrt(variance)
    return max(0.0, min(1.0, math.erfc(max(z, 0.0) / math.sqrt(2.0))))


def benjamini_hochberg(p_values: Sequence[float]) -> List[float]:
    """Benjamini-Hochberg q-values (FDR-adjusted, order-preserving)."""
    count = len(p_values)
    if count == 0:
        return []
    order = sorted(range(count), key=lambda position: p_values[position])
    q_values = [0.0] * count
    smallest = 1.0
    for rank_from_end, position in enumerate(reversed(order)):
        rank = count - rank_from_end
        smallest = min(smallest, p_values[position] * count / rank)
        q_values[position] = smallest
    return q_values


def _observations(rows: List[Dict[str, Any]]) -> Dict[Tuple[Any, ...], float]:
    """Observation map pairing on ``(key, seed, program)``; duplicate
    pair keys keep the last value (re-exported runs overwrite)."""
    return {
        (row.get("key"), row.get("seed"), row.get("program")): float(row["value"])
        for row in rows
    }


def compare(
    frame: ResultFrame,
    baseline: str,
    current: str,
    alpha: float = 0.05,
    min_rel_effect: float = 0.005,
    bootstrap_iterations: int = 2000,
    seed: int = 0,
) -> Dict[str, Any]:
    """Compare the *current* export set against *baseline*.

    Returns the machine-readable verdict table (schema
    ``repro-verdicts/v1``): one row per (experiment, metric) group the
    two sets share, with the test used, raw p-value, BH-corrected
    q-value, relative effect and verdict.  Deterministic for fixed
    inputs and *seed*.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    comparisons: List[Dict[str, Any]] = []
    baseline_rows = frame.filter(set=baseline)
    current_rows = frame.filter(set=current)
    baseline_groups = baseline_rows.group_by("experiment", "metric")
    current_groups = current_rows.group_by("experiment", "metric")
    shared = sorted(
        set(baseline_groups) & set(current_groups),
        key=lambda group: (str(group[0]), str(group[1])),
    )
    for experiment, metric in shared:
        base_obs = _observations(baseline_groups[(experiment, metric)])
        cur_obs = _observations(current_groups[(experiment, metric)])
        paired_keys = sorted(
            set(base_obs) & set(cur_obs), key=lambda key: tuple(map(str, key))
        )
        base_mean = sum(base_obs.values()) / len(base_obs)
        cur_mean = sum(cur_obs.values()) / len(cur_obs)
        if len(paired_keys) >= 2:
            diffs = [cur_obs[key] - base_obs[key] for key in paired_keys]
            base_scale = sum(abs(base_obs[key]) for key in paired_keys) / len(
                paired_keys
            )
            diff = sum(diffs) / len(diffs)
            p_value = paired_bootstrap_pvalue(
                diffs,
                iterations=bootstrap_iterations,
                seed=_comparison_seed(seed, str(experiment), str(metric)),
            )
            test = "paired-bootstrap"
        elif len(paired_keys) == 1:
            key = paired_keys[0]
            diff = cur_obs[key] - base_obs[key]
            base_scale = abs(base_obs[key])
            rel = diff / base_scale if base_scale else (1.0 if diff else 0.0)
            p_value = 0.0 if abs(rel) > min_rel_effect else 1.0
            test = "threshold"
        else:
            diff = cur_mean - base_mean
            base_scale = sum(abs(v) for v in base_obs.values()) / len(base_obs)
            p_value = mann_whitney_pvalue(
                sorted(base_obs.values()), sorted(cur_obs.values())
            )
            test = "mann-whitney"
        rel_diff = diff / base_scale if base_scale else (1.0 if diff else 0.0)
        comparisons.append(
            {
                "experiment": experiment,
                "metric": metric,
                "test": test,
                "n_pairs": len(paired_keys),
                "n_baseline": len(base_obs),
                "n_current": len(cur_obs),
                "baseline_mean": base_mean,
                "current_mean": cur_mean,
                "diff": diff,
                "rel_diff": rel_diff,
                "p_value": p_value,
                "direction": metric_direction(str(metric)),
            }
        )
    q_values = benjamini_hochberg([row["p_value"] for row in comparisons])
    counts = {"improved": 0, "regressed": 0, "no-change": 0, "shifted": 0}
    for row, q_value in zip(comparisons, q_values):
        row["q_value"] = q_value
        row["verdict"] = _verdict(row, alpha, min_rel_effect)
        counts[row["verdict"]] += 1
    return {
        "schema": VERDICTS_SCHEMA,
        "baseline": baseline,
        "current": current,
        "alpha": alpha,
        "min_rel_effect": min_rel_effect,
        "counts": counts,
        "comparisons": comparisons,
    }


def _verdict(
    row: Dict[str, Any], alpha: float, min_rel_effect: float
) -> str:
    """Classify one corrected comparison row."""
    if row["q_value"] >= alpha or abs(row["rel_diff"]) <= min_rel_effect:
        return "no-change"
    direction = row["direction"]
    if direction is None:
        return "shifted"
    better = row["diff"] < 0 if direction == "lower" else row["diff"] > 0
    return "improved" if better else "regressed"


def gate(verdicts: Dict[str, Any]) -> List[str]:
    """The ``analyze --gate`` contract: one line per significant
    regression in *verdicts* (empty = gate passes)."""
    return [
        (
            f"{row['experiment']}.{row['metric']}: "
            f"{row['baseline_mean']:.4f} -> {row['current_mean']:.4f} "
            f"({row['rel_diff']:+.1%}, q={row['q_value']:.4f}, {row['test']})"
        )
        for row in verdicts.get("comparisons", [])
        if row.get("verdict") == "regressed"
    ]

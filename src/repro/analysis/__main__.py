"""Analysis CLI: breakdowns, capacity curves and sensitivity sweeps.

Examples::

    python -m repro.analysis breakdown --program gcc
    python -m repro.analysis capacity --program gcc --structure nls
    python -m repro.analysis sensitivity --program cfront
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.breakdown import format_breakdown, penalty_breakdown
from repro.analysis.capacity import (
    btb_capacity_curve,
    format_capacity_curve,
    nls_capacity_curve,
)
from repro.analysis.sensitivity import format_sensitivity, penalty_sensitivity
from repro.harness.config import ArchitectureConfig
from repro.harness.runner import simulate
from repro.workloads.profiles import paper_programs


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Analysis tools over the NLS/BTB simulator.",
    )
    parser.add_argument("tool", choices=("breakdown", "capacity", "sensitivity"))
    parser.add_argument(
        "--program", choices=list(paper_programs()), default="gcc"
    )
    parser.add_argument("--instructions", type=int, default=None)
    parser.add_argument(
        "--frontend",
        default="nls-table",
        help="front-end for the breakdown tool (default nls-table)",
    )
    parser.add_argument(
        "--structure",
        choices=("nls", "btb"),
        default="nls",
        help="which capacity curve to trace",
    )
    args = parser.parse_args(argv)

    if args.tool == "breakdown":
        config = ArchitectureConfig(frontend=args.frontend, cache_kb=16)
        report = simulate(config, args.program, instructions=args.instructions)
        print(f"{config.label()} on {args.program}")
        print()
        print(format_breakdown(penalty_breakdown(report)))
    elif args.tool == "capacity":
        if args.structure == "nls":
            points = nls_capacity_curve(
                args.program, instructions=args.instructions
            )
            title = f"NLS-table capacity curve on {args.program}"
        else:
            points = btb_capacity_curve(
                args.program, instructions=args.instructions
            )
            title = f"BTB capacity curve on {args.program}"
        print(format_capacity_curve(points, title=title))
    else:
        points = penalty_sensitivity(
            args.program, instructions=args.instructions
        )
        print(
            format_sensitivity(
                points,
                title=(
                    f"1024 NLS-table vs 128 BTB on {args.program} across "
                    "penalty models"
                ),
            )
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Tidy cross-run result loading (the analysis layer's data plane).

Every run artifact the harness emits — ``--out`` export directories
(``<experiment>.json`` plus the ``EXPORTS.json`` set manifest), the
content-addressed SQLite result store, ``BENCH_*.json`` payloads and
the ``BENCH_history.ndjson`` trajectory — flattens here into one long
("tidy") table: one row per observed metric value, keyed by

    (set, experiment, key, metric, value, seed, git_sha, program, source)

where *set* labels the export set the value came from (the unit the
statistical comparisons in :mod:`repro.analysis.stat_tests` pair
across), *key* is the ``/``-joined path of the leaf inside the
experiment's data dict (e.g. ``nls-cache/8K direct``), and *metric*
names what the value measures (``bep``, ``cpi``, ``rank_corr``, ...).

The table is a plain list of dicts wrapped in :class:`ResultFrame` —
deliberately dependency-free so the analysis layer works in the bare
``numpy``-only environment; :meth:`ResultFrame.to_pandas` upgrades to
a real ``pandas.DataFrame`` when the optional ``[analysis]`` extra is
installed.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

#: per-directory export-set manifest filename (written by the CLI)
EXPORT_MANIFEST_NAME = "EXPORTS.json"

#: tidy-table column order (stable, part of the documented schema)
COLUMNS = (
    "set",
    "experiment",
    "key",
    "metric",
    "value",
    "seed",
    "git_sha",
    "program",
    "source",
)

#: metric names carried by a serialised report-like export object
REPORT_METRICS = (
    "bep",
    "bep_misfetch",
    "bep_mispredict",
    "pct_misfetched",
    "pct_mispredicted",
    "icache_miss_rate",
    "cpi",
)

#: what the scalar leaves of each experiment's data dict measure;
#: experiments absent here fall back to the leaf's last path component
DEFAULT_METRIC = {
    "fig3": "rbe",
    "fig4": "bep",
    "fig5": "bep",
    "fig6": "rbe",
    "fig8": "cpi",
    "johnson": "bep",
    "flush": "bep",
    "layout": "bep",
    "coupled": "bep",
    "misfetch-causes": "count",
    "gshare": "accuracy",
}

Row = Dict[str, Any]


class ResultFrame:
    """A tidy table of result rows with small pandas-like helpers.

    Rows are plain dicts sharing the :data:`COLUMNS` keys.  The class
    only implements the handful of verbs the analysis layer needs
    (filter / unique / group-by); anything heavier should go through
    :meth:`to_pandas`.
    """

    def __init__(self, rows: Optional[Iterable[Row]] = None) -> None:
        self.rows: List[Row] = [dict(row) for row in rows or ()]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def extend(self, rows: Iterable[Row]) -> "ResultFrame":
        """Append *rows* in place; returns self for chaining."""
        self.rows.extend(dict(row) for row in rows)
        return self

    def filter(self, **equals: Any) -> "ResultFrame":
        """Rows whose columns equal every given keyword value."""
        return ResultFrame(
            row
            for row in self.rows
            if all(row.get(column) == value for column, value in equals.items())
        )

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        return [row.get(name) for row in self.rows]

    def unique(self, name: str) -> List[Any]:
        """Sorted distinct non-``None`` values of one column."""
        return sorted(
            {row.get(name) for row in self.rows} - {None},
            key=lambda value: (str(type(value)), value),
        )

    def group_by(self, *names: str) -> Dict[Tuple[Any, ...], List[Row]]:
        """Rows bucketed by a column tuple (insertion-ordered)."""
        groups: Dict[Tuple[Any, ...], List[Row]] = {}
        for row in self.rows:
            groups.setdefault(
                tuple(row.get(name) for name in names), []
            ).append(row)
        return groups

    def to_pandas(self):
        """The same table as a ``pandas.DataFrame`` (requires the
        optional ``[analysis]`` extra)."""
        try:
            import pandas
        except ImportError as exc:  # pragma: no cover - env-dependent
            raise ImportError(
                "pandas is not installed; install the '[analysis]' extra "
                "(pip install repro[analysis]) for DataFrame output"
            ) from exc
        return pandas.DataFrame(self.rows, columns=list(COLUMNS))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ResultFrame({len(self.rows)} rows, "
            f"sets={self.unique('set')}, "
            f"experiments={self.unique('experiment')})"
        )


# ---------------------------------------------------------------------------
# export-directory loading
# ---------------------------------------------------------------------------


def _is_report_like(value: Any) -> bool:
    """A dict produced by serialising a :class:`SimulationReport`."""
    return isinstance(value, dict) and "bep" in value and "label" in value


def _report_rows(
    base: Row, path: Tuple[str, ...], payload: Dict[str, Any]
) -> Iterator[Row]:
    """One row per metric of a serialised report-like object, with the
    report's own ``meta``/``manifest`` provenance when present."""
    meta = payload.get("meta") or {}
    manifest = payload.get("manifest") or {}
    for metric in REPORT_METRICS:
        value = payload.get(metric)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        row = dict(base)
        row["key"] = "/".join(path) if path else payload.get("label", "")
        row["metric"] = metric
        row["value"] = float(value)
        row["program"] = payload.get("program") or row.get("program")
        if meta.get("seed") is not None:
            row["seed"] = meta["seed"]
        if manifest.get("git_sha"):
            row["git_sha"] = manifest["git_sha"]
        yield row


def _leaf_rows(
    base: Row, experiment: str, path: Tuple[str, ...], value: Any
) -> Iterator[Row]:
    """Flatten one data-dict subtree into tidy rows."""
    if _is_report_like(value):
        yield from _report_rows(base, path, value)
        return
    if isinstance(value, dict):
        for key in value:
            yield from _leaf_rows(base, experiment, path + (str(key),), value[key])
        return
    if isinstance(value, (list, tuple)):
        for position, inner in enumerate(value):
            yield from _leaf_rows(
                base, experiment, path + (str(position),), inner
            )
        return
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return  # strings and nulls carry no comparable measurement
    row = dict(base)
    if experiment == "calibration":
        # calibration's two leaves measure different things: the scalar
        # mean error and the per-attribute rank correlations
        if path and path[0] == "rank_correlations":
            row["key"] = "/".join(path[1:])
            row["metric"] = "rank_corr"
        else:
            row["key"] = "/".join(path[:-1])
            row["metric"] = path[-1] if path else "value"
    elif experiment in DEFAULT_METRIC:
        row["key"] = "/".join(path)
        row["metric"] = DEFAULT_METRIC[experiment]
    else:
        row["key"] = "/".join(path[:-1]) if len(path) > 1 else "/".join(path)
        row["metric"] = path[-1] if path else "value"
    row["value"] = float(value)
    yield row


def read_export_manifest(directory: str) -> Dict[str, Any]:
    """The ``EXPORTS.json`` set manifest of *directory* (``{}`` when
    absent or unreadable — older export sets have none)."""
    path = os.path.join(directory, EXPORT_MANIFEST_NAME)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return {}
    return manifest if isinstance(manifest, dict) else {}


def load_export_set(directory: str, label: Optional[str] = None) -> List[Row]:
    """Flatten one export directory into tidy rows.

    Every ``<experiment>.json`` file written by ``--out ... --formats
    json`` contributes rows; set-level provenance (seed, git SHA,
    label) comes from the directory's ``EXPORTS.json`` manifest when
    present, falling back to per-report ``meta``/``manifest`` fields
    and the directory basename.
    """
    manifest = read_export_manifest(directory)
    set_label = label or manifest.get("label") or os.path.basename(
        os.path.normpath(directory)
    )
    base: Row = {
        "set": set_label,
        "experiment": None,
        "key": "",
        "metric": "",
        "value": None,
        "seed": manifest.get("seed"),
        "git_sha": manifest.get("git_sha"),
        "program": None,
        "source": "",
    }
    rows: List[Row] = []
    for filename in sorted(os.listdir(directory)):
        if not filename.endswith(".json"):
            continue
        if filename == EXPORT_MANIFEST_NAME or filename.startswith(
            ("BENCH_", "FAILURES", "ATTRIBUTION")
        ):
            continue
        path = os.path.join(directory, filename)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(payload, dict) or "data" not in payload:
            continue
        experiment = payload.get("name") or filename[: -len(".json")]
        file_base = dict(base)
        file_base["experiment"] = experiment
        file_base["source"] = path
        rows.extend(_leaf_rows(file_base, experiment, (), payload["data"]))
    return rows


def load_export_sets(
    directories: Sequence[str], labels: Optional[Sequence[Optional[str]]] = None
) -> ResultFrame:
    """Load many export directories into one :class:`ResultFrame`.

    Duplicate set labels are disambiguated with a numeric suffix so
    two directories with identical manifests stay distinguishable.
    """
    frame = ResultFrame()
    seen: Dict[str, int] = {}
    for position, directory in enumerate(directories):
        label = labels[position] if labels else None
        rows = load_export_set(directory, label=label)
        if rows:
            used = rows[0]["set"]
            count = seen.get(used, 0)
            seen[used] = count + 1
            if count:
                for row in rows:
                    row["set"] = f"{used}#{count + 1}"
        frame.extend(rows)
    return frame


# ---------------------------------------------------------------------------
# result-store loading
# ---------------------------------------------------------------------------


def load_store(path: str, label: str = "store") -> List[Row]:
    """Flatten the SQLite result store into per-cell tidy rows.

    Each stored cell contributes one row per derived report metric,
    with ``key`` the stored config label and seed / git SHA recovered
    from the payload's own ``meta`` / ``manifest`` provenance.
    """
    import sqlite3

    from repro.harness.checkpoint import report_from_dict

    rows: List[Row] = []
    connection = sqlite3.connect(path)
    try:
        stored = connection.execute(
            "SELECT cell_key, config_label, program, payload FROM results "
            "ORDER BY cell_key"
        ).fetchall()
    finally:
        connection.close()
    for cell, config_label, program, payload_text in stored:
        try:
            report = report_from_dict(json.loads(payload_text))
        except (json.JSONDecodeError, KeyError, TypeError):
            continue  # verify/--fix owns corrupt rows; loading skips them
        meta = report.meta
        manifest = report.manifest
        for metric in REPORT_METRICS:
            rows.append(
                {
                    "set": label,
                    "experiment": "store",
                    "key": f"{config_label}/{cell}",
                    "metric": metric,
                    "value": float(getattr(report, metric)),
                    "seed": meta.seed if meta is not None else None,
                    "git_sha": manifest.git_sha if manifest is not None else None,
                    "program": program,
                    "source": path,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# benchmark trajectory loading
# ---------------------------------------------------------------------------


def load_bench_history(path: str) -> List[Dict[str, Any]]:
    """Parse a ``BENCH_history.ndjson`` trajectory file.

    Returns the well-formed entries in file order; torn or
    wrong-schema lines are skipped (the file is append-only, so a
    crash can at worst tear the final line).
    """
    from repro.telemetry.bench import BENCH_HISTORY_SCHEMA

    entries: List[Dict[str, Any]] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if (
                    isinstance(entry, dict)
                    and entry.get("schema") == BENCH_HISTORY_SCHEMA
                ):
                    entries.append(entry)
    except OSError:
        return []
    return entries


def find_bench_history(directories: Sequence[str]) -> Optional[str]:
    """The first ``BENCH_history.ndjson`` found in *directories*."""
    from repro.telemetry.bench import BENCH_HISTORY_FILE

    for directory in directories:
        candidate = os.path.join(directory, BENCH_HISTORY_FILE)
        if os.path.exists(candidate):
            return candidate
    return None

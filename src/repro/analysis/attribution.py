"""Per-static-branch-site attribution profiles (DESIGN.md §11).

The fetch engine's :class:`~repro.fetch.attribution.AttributionCollector`
records *which* cause each penalty event had and *which* static branch
site paid it.  This module folds that snapshot into the analyst-facing
view: a ranked table of the hottest offender sites — the handful of
static branches responsible for most of the BEP — with each site's
cause split, taken rate and simulated 2-bit-counter accuracy.

Site BEP contributions are exact shares of the report's BEP: a site
that misfetched ``mf`` times and mispredicted ``mp`` times out of
``n_breaks`` counted breaks contributes
``(mf × misfetch_penalty + mp × mispredict_penalty) / n_breaks``
cycles per break, and the contributions of all sites sum to the
report's BEP (the rendered table closes with an ``(other)`` row and a
total so the decomposition is visibly complete).

:func:`conservation_errors` is the audit used by tests and the CLI: it
re-checks, from the snapshot alone, that the per-cause totals
partition the report's misfetch + mispredict aggregates exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.fetch.attribution import ATTRIBUTION_SCHEMA, CAUSES
from repro.isa.branches import BranchKind
from repro.metrics.report import SimulationReport

#: schema stamped on rendered JSON payloads
PROFILE_SCHEMA = "repro-attribution-profile/v1"


@dataclass(frozen=True)
class SiteProfile:
    """One static branch site's attribution profile."""

    pc: int
    kind: BranchKind
    executed: int
    misfetched: int
    mispredicted: int
    taken: int
    two_bit_hits: int
    causes: Dict[str, int]
    #: this site's share of the report's BEP, in cycles per break
    bep_contribution: float

    @property
    def taken_rate(self) -> float:
        """Taken fraction of this site's executions."""
        return self.taken / self.executed if self.executed else 0.0

    @property
    def two_bit_accuracy(self) -> Optional[float]:
        """Accuracy a private 2-bit counter would have had at this
        site (``None`` for non-conditional kinds)."""
        if self.kind != BranchKind.CONDITIONAL or not self.executed:
            return None
        return self.two_bit_hits / self.executed

    @property
    def dominant_cause(self) -> Optional[str]:
        """The cause that charged this site most often."""
        if not self.causes:
            return None
        return max(self.causes, key=lambda cause: (self.causes[cause], cause))


@dataclass(frozen=True)
class AttributionProfile:
    """A folded attribution snapshot: ranked sites + cause totals."""

    label: str
    program: str
    n_breaks: int
    misfetches: int
    mispredicts: int
    bep: float
    #: per-cause totals over the whole run, every taxonomy member
    causes: Dict[str, int]
    #: every observed site, hottest (largest BEP contribution) first
    sites: Tuple[SiteProfile, ...]
    top_k: int
    sample: int
    gap_histogram: Dict[str, Any]
    trace: Dict[str, Any]

    @property
    def top_sites(self) -> Tuple[SiteProfile, ...]:
        """The ``top_k`` hottest offender sites."""
        return self.sites[: self.top_k]

    @property
    def other_bep(self) -> float:
        """BEP carried by sites below the top-K cut."""
        return sum(site.bep_contribution for site in self.sites[self.top_k :])

    @property
    def penalty_events(self) -> int:
        """Total attributed penalty events."""
        return sum(self.causes.values())


def fold_attribution(report: SimulationReport, top_k: int = 10) -> AttributionProfile:
    """Fold *report*'s attribution snapshot into a ranked profile.

    Requires the report to have been produced by an engine built with
    ``attribution=True`` (see
    :class:`~repro.harness.config.ArchitectureConfig`).
    """
    if top_k < 1:
        raise ValueError("top_k must be positive")
    snapshot = report.attribution
    if snapshot is None:
        raise ValueError(
            "report carries no attribution snapshot; run with "
            "ArchitectureConfig(attribution=True)"
        )
    if snapshot.get("schema") != ATTRIBUTION_SCHEMA:
        raise ValueError(f"unexpected attribution schema {snapshot.get('schema')!r}")
    penalties = report.penalties
    n_breaks = report.n_breaks
    sites: List[SiteProfile] = []
    for pc, stats in snapshot["sites"].items():
        contribution = 0.0
        if n_breaks:
            contribution = (
                stats["misfetched"] * penalties.misfetch
                + stats["mispredicted"] * penalties.mispredict
            ) / n_breaks
        sites.append(
            SiteProfile(
                pc=int(pc),
                kind=BranchKind(stats["kind"]),
                executed=stats["executed"],
                misfetched=stats["misfetched"],
                mispredicted=stats["mispredicted"],
                taken=stats["taken"],
                two_bit_hits=stats["two_bit_hits"],
                causes=dict(stats["causes"]),
                bep_contribution=contribution,
            )
        )
    # hottest first; pc breaks ties so the ranking is deterministic
    sites.sort(key=lambda site: (-site.bep_contribution, site.pc))
    causes = {cause: snapshot["causes"].get(cause, 0) for cause in CAUSES}
    return AttributionProfile(
        label=report.label,
        program=report.program,
        n_breaks=n_breaks,
        misfetches=report.misfetches,
        mispredicts=report.mispredicts,
        bep=report.bep,
        causes=causes,
        sites=tuple(sites),
        top_k=top_k,
        sample=snapshot["sample"],
        gap_histogram=dict(snapshot["gap_histogram"]),
        trace=dict(snapshot["trace"]),
    )


def conservation_errors(report: SimulationReport) -> List[str]:
    """Audit *report*'s attribution snapshot against its aggregates.

    Returns a list of human-readable violations (empty = conservative):
    the per-cause totals must sum to misfetches + mispredicts exactly,
    and the per-site tallies must re-derive every aggregate.
    """
    snapshot = report.attribution
    if snapshot is None:
        return ["report carries no attribution snapshot"]
    errors: List[str] = []
    cause_total = sum(snapshot["causes"].values())
    aggregate = report.misfetches + report.mispredicts
    if cause_total != aggregate:
        errors.append(
            f"cause totals sum to {cause_total}, aggregates say {aggregate}"
        )
    unknown = sorted(set(snapshot["causes"]) - set(CAUSES))
    if unknown:
        errors.append(f"unknown causes in snapshot: {unknown}")
    sites = snapshot["sites"].values()
    site_executed = sum(stats["executed"] for stats in sites)
    site_misfetched = sum(stats["misfetched"] for stats in sites)
    site_mispredicted = sum(stats["mispredicted"] for stats in sites)
    if site_executed != report.n_breaks:
        errors.append(
            f"site executions sum to {site_executed}, report counts "
            f"{report.n_breaks} breaks"
        )
    if site_misfetched != report.misfetches:
        errors.append(
            f"site misfetches sum to {site_misfetched}, report counts "
            f"{report.misfetches}"
        )
    if site_mispredicted != report.mispredicts:
        errors.append(
            f"site mispredicts sum to {site_mispredicted}, report counts "
            f"{report.mispredicts}"
        )
    for pc, stats in snapshot["sites"].items():
        per_site = sum(stats["causes"].values())
        penalised = stats["misfetched"] + stats["mispredicted"]
        if per_site != penalised:
            errors.append(
                f"site {pc:#x}: causes sum to {per_site}, "
                f"outcomes say {penalised}"
            )
    return errors


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


def cause_table(profile: AttributionProfile) -> str:
    """Render the per-cause totals as a markdown table."""
    total = profile.penalty_events
    lines = [
        "| cause | events | share |",
        "| --- | ---: | ---: |",
    ]
    for cause in CAUSES:
        count = profile.causes[cause]
        share = 100.0 * count / total if total else 0.0
        lines.append(f"| `{cause}` | {count} | {share:.1f}% |")
    lines.append(f"| **total** | **{total}** | **100.0%** |" if total else
                 "| **total** | **0** | — |")
    return "\n".join(lines)


def site_table(profile: AttributionProfile) -> str:
    """Render the top-K hottest sites as a markdown table.

    The BEP column is a true decomposition: top rows + ``(other)`` +
    nothing else sum to the report's BEP.
    """
    lines = [
        "| rank | pc | kind | exec | mf | mp | taken | 2-bit | "
        "dominant cause | BEP cyc/brk |",
        "| ---: | --- | --- | ---: | ---: | ---: | ---: | ---: | --- | ---: |",
    ]
    for rank, site in enumerate(profile.top_sites, start=1):
        accuracy = site.two_bit_accuracy
        lines.append(
            f"| {rank} | `{site.pc:#010x}` | {site.kind.name.lower()} "
            f"| {site.executed} | {site.misfetched} | {site.mispredicted} "
            f"| {100 * site.taken_rate:.0f}% "
            f"| {'—' if accuracy is None else f'{100 * accuracy:.0f}%'} "
            f"| {site.dominant_cause or '—'} "
            f"| {site.bep_contribution:.4f} |"
        )
    lines.append(
        f"| | (other: {max(len(profile.sites) - profile.top_k, 0)} sites) "
        f"| | | | | | | | {profile.other_bep:.4f} |"
    )
    lines.append(f"| | **total** | | | | | | | | **{profile.bep:.4f}** |")
    return "\n".join(lines)


def render_markdown(profiles: List[AttributionProfile]) -> str:
    """Render full attribution profiles as a markdown report."""
    lines = ["# Fetch-penalty attribution", ""]
    for profile in profiles:
        lines.extend(
            [
                f"## {profile.label} — {profile.program}",
                "",
                f"{profile.n_breaks} counted breaks, "
                f"{profile.misfetches} misfetches + "
                f"{profile.mispredicts} mispredicts = "
                f"{profile.penalty_events} penalty events; "
                f"BEP = {profile.bep:.4f} cycles/break "
                f"(event ring sampled 1/{profile.sample}).",
                "",
                "### Cause taxonomy",
                "",
                cause_table(profile),
                "",
                f"### Hottest {min(profile.top_k, len(profile.sites))} sites "
                f"(of {len(profile.sites)})",
                "",
                site_table(profile),
                "",
            ]
        )
    return "\n".join(lines)


def to_payload(profiles: List[AttributionProfile]) -> Dict[str, Any]:
    """JSON-ready payload mirroring :func:`render_markdown`."""
    return {
        "schema": PROFILE_SCHEMA,
        "profiles": [
            {
                "label": profile.label,
                "program": profile.program,
                "n_breaks": profile.n_breaks,
                "misfetches": profile.misfetches,
                "mispredicts": profile.mispredicts,
                "bep": profile.bep,
                "causes": dict(profile.causes),
                "sample": profile.sample,
                "gap_histogram": profile.gap_histogram,
                "trace": profile.trace,
                "top_sites": [
                    {
                        "pc": site.pc,
                        "kind": site.kind.name,
                        "executed": site.executed,
                        "misfetched": site.misfetched,
                        "mispredicted": site.mispredicted,
                        "taken": site.taken,
                        "two_bit_hits": site.two_bit_hits,
                        "two_bit_accuracy": site.two_bit_accuracy,
                        "causes": dict(site.causes),
                        "bep_contribution": site.bep_contribution,
                    }
                    for site in profile.top_sites
                ],
                "other_bep": profile.other_bep,
                "n_sites": len(profile.sites),
            }
            for profile in profiles
        ],
    }


def write_payload(path: str, profiles: List[AttributionProfile]) -> None:
    """Write :func:`to_payload` to *path* as indented JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_payload(profiles), handle, indent=2, sort_keys=True)
        handle.write("\n")

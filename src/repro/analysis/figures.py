"""Paper-figure reproductions for the regression dashboard.

Charts are built from tidy :class:`~repro.analysis.results.ResultFrame`
rows and rendered as **self-contained markup**: inline SVG by default
(no dependency beyond the standard library, so the dashboard renders
in the numpy-only environment), or matplotlib PNGs (base64 ``<img>``
tags) when the optional ``[analysis]`` extra is installed and
``backend="mpl"`` / ``"auto"`` selects it.

The three figure builders mirror the paper figures the harness
regenerates:

* :func:`fig4_chart` — grouped BEP bars, NLS-cache vs NLS-tables per
  instruction-cache configuration (Figure 4);
* :func:`fig5_chart` — BEP bars, BTBs vs the 1024-entry NLS-table,
  overlaying every loaded export set (Figure 5);
* :func:`fig8_chart` — CPI per cache configuration and front-end
  (Figure 8);

plus :func:`calibration_audit`, the Table 1 calibration table (mean
absolute error and per-attribute rank correlations per set).
"""

from __future__ import annotations

import base64
import io
from html import escape
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.results import ResultFrame

#: fill colours cycled across chart series (colourblind-safe-ish)
PALETTE = (
    "#4878cf",
    "#ee854a",
    "#6acc65",
    "#d65f5f",
    "#956cb4",
    "#8c613c",
    "#dc7ec0",
    "#797979",
)

#: grouped-bar data: ``[(category, {series: value})]`` plus series order
GroupedBars = Tuple[List[Tuple[str, Dict[str, float]]], List[str]]


def matplotlib_available() -> bool:
    """Whether the optional matplotlib backend can be imported."""
    try:
        import matplotlib  # noqa: F401
    except ImportError:
        return False
    return True


def _resolve_backend(backend: str) -> str:
    if backend == "auto":
        return "mpl" if matplotlib_available() else "svg"
    if backend not in ("svg", "mpl"):
        raise ValueError(f"unknown figure backend {backend!r}")
    return backend


# ---------------------------------------------------------------------------
# SVG primitives (the dependency-free default)
# ---------------------------------------------------------------------------


def _svg_grouped_bars(
    title: str,
    groups: List[Tuple[str, Dict[str, float]]],
    series: List[str],
    y_label: str,
    width: int = 760,
    height: int = 340,
) -> str:
    """Inline-SVG grouped bar chart (categories on x, one bar per
    series inside each category, legend on the right)."""
    margin_left, margin_right = 56, 150
    margin_top, margin_bottom = 34, 70
    plot_w = width - margin_left - margin_right
    plot_h = height - margin_top - margin_bottom
    peak = max(
        (value for _, values in groups for value in values.values()),
        default=0.0,
    )
    peak = peak or 1.0
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="sans-serif" font-size="11">',
        f'<text x="{margin_left}" y="18" font-size="13" '
        f'font-weight="bold">{escape(title)}</text>',
        f'<text x="12" y="{margin_top + plot_h / 2:.0f}" '
        f'transform="rotate(-90 12 {margin_top + plot_h / 2:.0f})" '
        f'text-anchor="middle">{escape(y_label)}</text>',
    ]
    # y grid: four ticks
    for tick in range(5):
        value = peak * tick / 4.0
        y = margin_top + plot_h - plot_h * tick / 4.0
        parts.append(
            f'<line x1="{margin_left}" y1="{y:.1f}" '
            f'x2="{margin_left + plot_w}" y2="{y:.1f}" '
            f'stroke="#ddd" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{margin_left - 6}" y="{y + 4:.1f}" '
            f'text-anchor="end">{value:.2f}</text>'
        )
    group_w = plot_w / max(len(groups), 1)
    bar_w = max(2.0, min(24.0, group_w * 0.8 / max(len(series), 1)))
    for position, (category, values) in enumerate(groups):
        group_x = margin_left + group_w * position
        cluster_w = bar_w * len(series)
        start_x = group_x + (group_w - cluster_w) / 2.0
        for rank, name in enumerate(series):
            value = values.get(name)
            if value is None:
                continue
            bar_h = plot_h * value / peak
            x = start_x + bar_w * rank
            y = margin_top + plot_h - bar_h
            colour = PALETTE[rank % len(PALETTE)]
            parts.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_w:.1f}" '
                f'height="{bar_h:.1f}" fill="{colour}">'
                f"<title>{escape(category)} / {escape(name)}: "
                f"{value:.4f}</title></rect>"
            )
        label_x = group_x + group_w / 2.0
        label_y = margin_top + plot_h + 12
        parts.append(
            f'<text x="{label_x:.1f}" y="{label_y}" text-anchor="end" '
            f'transform="rotate(-30 {label_x:.1f} {label_y})">'
            f"{escape(category)}</text>"
        )
    legend_x = margin_left + plot_w + 12
    for rank, name in enumerate(series):
        y = margin_top + 16 * rank
        colour = PALETTE[rank % len(PALETTE)]
        parts.append(
            f'<rect x="{legend_x}" y="{y}" width="10" height="10" '
            f'fill="{colour}"/>'
        )
        parts.append(
            f'<text x="{legend_x + 14}" y="{y + 9}">{escape(name)}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _svg_lines(
    title: str,
    series: Dict[str, List[Tuple[float, float]]],
    y_label: str,
    width: int = 760,
    height: int = 300,
) -> str:
    """Inline-SVG line chart (one polyline per named series)."""
    margin_left, margin_right = 64, 150
    margin_top, margin_bottom = 34, 30
    plot_w = width - margin_left - margin_right
    plot_h = height - margin_top - margin_bottom
    points = [point for line in series.values() for point in line]
    if not points:
        return ""
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_hi = max(ys) or 1.0
    x_span = (x_hi - x_lo) or 1.0
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="sans-serif" font-size="11">',
        f'<text x="{margin_left}" y="18" font-size="13" '
        f'font-weight="bold">{escape(title)}</text>',
        f'<text x="14" y="{margin_top + plot_h / 2:.0f}" '
        f'transform="rotate(-90 14 {margin_top + plot_h / 2:.0f})" '
        f'text-anchor="middle">{escape(y_label)}</text>',
    ]
    for tick in range(5):
        value = y_hi * tick / 4.0
        y = margin_top + plot_h - plot_h * tick / 4.0
        parts.append(
            f'<line x1="{margin_left}" y1="{y:.1f}" '
            f'x2="{margin_left + plot_w}" y2="{y:.1f}" '
            f'stroke="#ddd" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{margin_left - 6}" y="{y + 4:.1f}" '
            f'text-anchor="end">{value:,.0f}</text>'
        )
    for rank, (name, line) in enumerate(sorted(series.items())):
        colour = PALETTE[rank % len(PALETTE)]
        coords = " ".join(
            f"{margin_left + plot_w * (x - x_lo) / x_span:.1f},"
            f"{margin_top + plot_h - plot_h * y / y_hi:.1f}"
            for x, y in line
        )
        parts.append(
            f'<polyline points="{coords}" fill="none" stroke="{colour}" '
            f'stroke-width="2"/>'
        )
        legend_y = margin_top + 16 * rank
        parts.append(
            f'<rect x="{margin_left + plot_w + 12}" y="{legend_y}" '
            f'width="10" height="10" fill="{colour}"/>'
        )
        parts.append(
            f'<text x="{margin_left + plot_w + 26}" y="{legend_y + 9}">'
            f"{escape(name)}</text>"
        )
    parts.append("</svg>")
    return "".join(parts)


# ---------------------------------------------------------------------------
# matplotlib branch (optional [analysis] extra)
# ---------------------------------------------------------------------------


def _mpl_grouped_bars(
    title: str,
    groups: List[Tuple[str, Dict[str, float]]],
    series: List[str],
    y_label: str,
) -> str:  # pragma: no cover - requires the optional extra
    """Matplotlib rendering of the same grouped-bar chart, returned as
    a base64 ``<img>`` tag so the dashboard stays self-contained."""
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as pyplot

    figure, axes = pyplot.subplots(figsize=(9.0, 4.2), dpi=110)
    categories = [category for category, _ in groups]
    positions = range(len(categories))
    bar_w = 0.8 / max(len(series), 1)
    for rank, name in enumerate(series):
        values = [values.get(name, 0.0) for _, values in groups]
        offsets = [p + bar_w * rank for p in positions]
        axes.bar(
            offsets,
            values,
            width=bar_w,
            label=name,
            color=PALETTE[rank % len(PALETTE)],
        )
    axes.set_xticks([p + 0.4 - bar_w / 2 for p in positions])
    axes.set_xticklabels(categories, rotation=30, ha="right", fontsize=8)
    axes.set_ylabel(y_label)
    axes.set_title(title)
    axes.legend(fontsize=8)
    figure.tight_layout()
    buffer = io.BytesIO()
    figure.savefig(buffer, format="png")
    pyplot.close(figure)
    encoded = base64.b64encode(buffer.getvalue()).decode("ascii")
    return (
        f'<img alt="{escape(title)}" '
        f'src="data:image/png;base64,{encoded}"/>'
    )


def grouped_bars(
    title: str,
    groups: List[Tuple[str, Dict[str, float]]],
    series: List[str],
    y_label: str,
    backend: str = "auto",
) -> str:
    """Render one grouped-bar chart with the selected backend."""
    if not groups or not series:
        return ""
    if _resolve_backend(backend) == "mpl":  # pragma: no cover - optional
        try:
            return _mpl_grouped_bars(title, groups, series, y_label)
        except Exception:
            pass  # any matplotlib trouble degrades to the SVG path
    return _svg_grouped_bars(title, groups, series, y_label)


# ---------------------------------------------------------------------------
# figure builders (tidy rows -> chart)
# ---------------------------------------------------------------------------


def _pivot(
    frame: ResultFrame,
    experiment: str,
    metric: str,
    set_label: Optional[str] = None,
) -> Dict[str, Dict[str, float]]:
    """``{category: {series: mean value}}`` for one experiment/metric,
    averaging across seeds/programs; two-part keys split into
    (category, series), flat keys pivot sets as the series."""
    rows = frame.filter(experiment=experiment, metric=metric)
    if set_label is not None:
        rows = rows.filter(set=set_label)
    sums: Dict[Tuple[str, str], List[float]] = {}
    for row in rows:
        parts = str(row["key"]).split("/")
        if set_label is None:
            category, series = str(row["key"]), str(row["set"])
        elif len(parts) >= 2:
            category, series = parts[0], "/".join(parts[1:])
        else:
            category, series = parts[0], metric
        sums.setdefault((category, series), []).append(float(row["value"]))
    pivot: Dict[str, Dict[str, float]] = {}
    for (category, series), values in sums.items():
        pivot.setdefault(category, {})[series] = sum(values) / len(values)
    return pivot


def _as_groups(pivot: Dict[str, Dict[str, float]]) -> GroupedBars:
    groups = [(category, pivot[category]) for category in sorted(pivot)]
    series = sorted({name for _, values in pivot.items() for name in values})
    return groups, series


def fig4_chart(
    frame: ResultFrame, set_label: str, backend: str = "auto"
) -> str:
    """Figure 4 reproduction: BEP of the NLS-cache and NLS-tables per
    instruction-cache configuration, for one export set."""
    pivot = _pivot(frame, "fig4", "bep", set_label=set_label)
    groups, series = _as_groups(pivot)
    return grouped_bars(
        f"Figure 4 — average BEP, NLS predictors ({set_label})",
        groups,
        series,
        "branch execution penalty (cycles)",
        backend=backend,
    )


def fig5_chart(frame: ResultFrame, backend: str = "auto") -> str:
    """Figure 5 reproduction: BEP of BTBs vs the 1024-entry NLS-table,
    one bar series per loaded export set (baseline vs current)."""
    pivot = _pivot(frame, "fig5", "bep", set_label=None)
    groups, series = _as_groups(pivot)
    return grouped_bars(
        "Figure 5 — average BEP, BTBs vs 1024-entry NLS-table (all sets)",
        groups,
        series,
        "branch execution penalty (cycles)",
        backend=backend,
    )


def fig8_chart(
    frame: ResultFrame, set_label: str, backend: str = "auto"
) -> str:
    """Figure 8 reproduction: CPI per cache configuration and
    front-end, for one export set."""
    pivot = _pivot(frame, "fig8", "cpi", set_label=set_label)
    groups, series = _as_groups(pivot)
    return grouped_bars(
        f"Figure 8 — cycles per instruction ({set_label})",
        groups,
        series,
        "CPI (single issue)",
        backend=backend,
    )


def bench_trajectory_chart(
    history: Sequence[Dict[str, object]], metric: str = "cells_per_s"
) -> str:
    """Perf-trajectory line chart from ``BENCH_history.ndjson``
    entries: one line per ``kind/label`` carrying *metric*."""
    series: Dict[str, List[Tuple[float, float]]] = {}
    for position, entry in enumerate(history):
        results = entry.get("results")
        if not isinstance(results, dict):
            continue
        for label, metrics in results.items():
            if not isinstance(metrics, dict):
                continue
            value = metrics.get(metric)
            if isinstance(value, (int, float)):
                series.setdefault(
                    f"{entry.get('kind', '?')}/{label}", []
                ).append((float(position), float(value)))
    return _svg_lines(
        f"Benchmark trajectory — {metric} per recorded run",
        series,
        metric,
    )


def calibration_audit(frame: ResultFrame) -> List[Tuple[str, str, str]]:
    """Table 1 calibration audit rows: ``(set, measure, value)`` for
    the mean absolute error and each rank correlation, per set."""
    rows: List[Tuple[str, str, str]] = []
    for set_label in frame.unique("set"):
        subset = frame.filter(set=set_label, experiment="calibration")
        for row in subset.filter(metric="mean_abs_error"):
            rows.append(
                (str(set_label), "mean |error| (points)", f"{row['value']:.2f}")
            )
        for row in sorted(
            subset.filter(metric="rank_corr"), key=lambda r: str(r["key"])
        ):
            rows.append(
                (
                    str(set_label),
                    f"rank corr: {row['key']}",
                    f"{row['value']:+.2f}",
                )
            )
    return rows

"""Self-contained regression dashboard rendering (HTML / markdown).

Assembles everything the analysis layer computed — the tidy result
frame, the statistical verdict table, the paper-figure reproductions
and the benchmark trajectory — into one artifact a reviewer (or a CI
artifact browser) can open directly:

* **HTML** (``index.html``): inline CSS + inline SVG / base64 images,
  no external assets, so the file works from a CI artifact zip;
* **markdown** (``REPORT.md``): the same sections as GitHub-flavoured
  tables (figures render as their drill-down tables);

plus ``verdicts.json``, the machine-readable verdict table
(``repro-verdicts/v1``) the ``analyze --gate`` CI contract consumes.

Layout: a summary header (sets, seeds, git SHAs, verdict counts), the
verdict table, Figures 4/5/8, the Table 1 calibration audit, the
benchmark trajectory when a ``BENCH_history.ndjson`` was found, and a
per-experiment drill-down of every (key, metric) with baseline vs
current values and relative deltas.
"""

from __future__ import annotations

import json
import os
from html import escape
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis import figures as figures_module
from repro.analysis.results import ResultFrame

#: dashboard filenames inside the --out directory
HTML_NAME = "index.html"
MARKDOWN_NAME = "REPORT.md"
VERDICTS_NAME = "verdicts.json"

_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2rem;
       color: #1a1a1a; max-width: 72rem; }
h1 { border-bottom: 2px solid #4878cf; padding-bottom: .3rem; }
h2 { margin-top: 2rem; }
table { border-collapse: collapse; margin: .8rem 0; font-size: .9rem; }
th, td { border: 1px solid #ccc; padding: .25rem .6rem; text-align: left; }
th { background: #f0f3fa; }
tr.regressed td { background: #fde8e8; }
tr.improved td { background: #e8f8e8; }
.verdict-regressed { color: #b91c1c; font-weight: bold; }
.verdict-improved { color: #15803d; font-weight: bold; }
.verdict-no-change { color: #666; }
.verdict-shifted { color: #b45309; }
.summary-chip { display: inline-block; padding: .15rem .6rem;
                border-radius: 1rem; margin-right: .4rem;
                background: #f0f3fa; font-size: .9rem; }
figure { margin: 1rem 0; }
""".strip()


def _html_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    row_classes: Optional[Sequence[str]] = None,
) -> str:
    lines = ["<table>", "<tr>"]
    lines += [f"<th>{escape(str(header))}</th>" for header in headers]
    lines.append("</tr>")
    for position, row in enumerate(rows):
        cls = row_classes[position] if row_classes else ""
        lines.append(f'<tr class="{cls}">' if cls else "<tr>")
        lines += [f"<td>{escape(str(cell))}</td>" for cell in row]
        lines.append("</tr>")
    lines.append("</table>")
    return "".join(lines)


def _markdown_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]]
) -> str:
    def clean(cell: Any) -> str:
        return str(cell).replace("|", "\\|")

    lines = [
        "| " + " | ".join(clean(header) for header in headers) + " |",
        "|" + "---|" * len(headers),
    ]
    lines += ["| " + " | ".join(clean(cell) for cell in row) + " |" for row in rows]
    return "\n".join(lines)


def _verdict_rows(
    verdicts: Dict[str, Any]
) -> Tuple[List[List[str]], List[str]]:
    rows: List[List[str]] = []
    classes: List[str] = []
    ordered = sorted(
        verdicts.get("comparisons", []),
        key=lambda row: (
            {"regressed": 0, "improved": 1, "shifted": 2}.get(row["verdict"], 3),
            str(row["experiment"]),
            str(row["metric"]),
        ),
    )
    for row in ordered:
        rows.append(
            [
                str(row["experiment"]),
                str(row["metric"]),
                row["verdict"],
                f"{row['baseline_mean']:.4f}",
                f"{row['current_mean']:.4f}",
                f"{row['rel_diff']:+.2%}",
                f"{row['p_value']:.4f}",
                f"{row['q_value']:.4f}",
                f"{row['test']} (n={row['n_pairs'] or row['n_baseline']})",
            ]
        )
        classes.append(
            row["verdict"] if row["verdict"] in ("regressed", "improved") else ""
        )
    return rows, classes


_VERDICT_HEADERS = (
    "experiment",
    "metric",
    "verdict",
    "baseline",
    "current",
    "Δ rel",
    "p",
    "q (BH)",
    "test",
)


def _drilldown(
    frame: ResultFrame,
    experiment: str,
    baseline: Optional[str],
    sets: Sequence[str],
) -> Tuple[List[str], List[List[str]]]:
    """Per-experiment drill-down table: one row per (key, metric) with
    every set's mean value and the relative delta vs baseline."""
    subset = frame.filter(experiment=experiment)
    means: Dict[Tuple[str, str, str], List[float]] = {}
    for row in subset:
        means.setdefault(
            (str(row["key"]), str(row["metric"]), str(row["set"])), []
        ).append(float(row["value"]))
    keys = sorted({(key, metric) for key, metric, _ in means})
    headers = ["key", "metric"] + [str(s) for s in sets]
    if baseline is not None and len(sets) > 1:
        headers.append("Δ vs baseline")
    rows: List[List[str]] = []
    for key, metric in keys:
        cells = [key, metric]
        per_set: Dict[str, float] = {}
        for set_label in sets:
            values = means.get((key, metric, str(set_label)))
            if values:
                per_set[str(set_label)] = sum(values) / len(values)
                cells.append(f"{per_set[str(set_label)]:.4f}")
            else:
                cells.append("—")
        if baseline is not None and len(sets) > 1:
            base = per_set.get(str(baseline))
            others = [v for s, v in per_set.items() if s != str(baseline)]
            if base and others:
                cells.append(f"{(others[-1] - base) / abs(base):+.2%}")
            else:
                cells.append("—")
        rows.append(cells)
    return headers, rows


def render_dashboard(
    frame: ResultFrame,
    verdicts: Optional[Dict[str, Any]],
    out_dir: str,
    fmt: str = "html",
    backend: str = "auto",
    bench_history: Optional[Sequence[Dict[str, Any]]] = None,
    title: str = "NLS reproduction — cross-run analysis",
) -> List[str]:
    """Render the dashboard into *out_dir*; returns the written paths.

    *fmt* selects ``html`` (``index.html``) or ``md`` (``REPORT.md``);
    ``verdicts.json`` is always written when a verdict table exists.
    """
    if fmt not in ("html", "md"):
        raise ValueError(f"unknown dashboard format {fmt!r}")
    os.makedirs(out_dir, exist_ok=True)
    written: List[str] = []
    sets = [str(s) for s in frame.unique("set")]
    baseline = verdicts.get("baseline") if verdicts else None
    current = verdicts.get("current") if verdicts else None
    figure_set = current or (sets[-1] if sets else "")

    summary_bits: List[Tuple[str, str]] = []
    for set_label in sets:
        subset = frame.filter(set=set_label)
        seeds = subset.unique("seed")
        shas = [str(sha)[:12] for sha in subset.unique("git_sha")]
        summary_bits.append(
            (
                set_label,
                f"{len(subset)} rows, "
                f"experiments: {', '.join(map(str, subset.unique('experiment')))}"
                + (f", seeds: {', '.join(map(str, seeds))}" if seeds else "")
                + (f", git: {', '.join(shas)}" if shas else ""),
            )
        )
    counts = (verdicts or {}).get("counts", {})

    experiments = [str(e) for e in frame.unique("experiment")]
    drilldowns = [
        (experiment, _drilldown(frame, experiment, baseline, sets))
        for experiment in experiments
    ]
    calibration_rows = figures_module.calibration_audit(frame)
    verdict_rows, verdict_classes = (
        _verdict_rows(verdicts) if verdicts else ([], [])
    )

    if fmt == "html":
        charts = [
            figures_module.fig4_chart(frame, figure_set, backend=backend),
            figures_module.fig5_chart(frame, backend=backend),
            figures_module.fig8_chart(frame, figure_set, backend=backend),
        ]
        if bench_history:
            charts.append(
                figures_module.bench_trajectory_chart(bench_history)
            )
        parts = [
            "<!DOCTYPE html><html><head><meta charset='utf-8'/>",
            f"<title>{escape(title)}</title>",
            f"<style>{_CSS}</style></head><body>",
            f"<h1>{escape(title)}</h1>",
        ]
        for verdict_name in ("regressed", "improved", "no-change", "shifted"):
            if verdict_name in counts:
                parts.append(
                    f'<span class="summary-chip verdict-{verdict_name}">'
                    f"{counts[verdict_name]} {verdict_name}</span>"
                )
        parts.append("<h2>Export sets</h2>")
        parts.append(
            _html_table(["set", "contents"], [list(bit) for bit in summary_bits])
        )
        if verdict_rows:
            parts.append(
                f"<h2>Verdicts — {escape(str(baseline))} → "
                f"{escape(str(current))}</h2>"
            )
            parts.append(
                _html_table(_VERDICT_HEADERS, verdict_rows, verdict_classes)
            )
        parts.append("<h2>Paper figures</h2>")
        for chart in charts:
            if chart:
                parts.append(f"<figure>{chart}</figure>")
        if calibration_rows:
            parts.append("<h2>Table 1 calibration audit</h2>")
            parts.append(
                _html_table(
                    ["set", "measure", "value"],
                    [list(row) for row in calibration_rows],
                )
            )
        parts.append("<h2>Per-experiment drill-down</h2>")
        for experiment, (headers, rows) in drilldowns:
            parts.append(f"<h3>{escape(experiment)}</h3>")
            parts.append(_html_table(headers, rows))
        parts.append("</body></html>")
        path = os.path.join(out_dir, HTML_NAME)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(parts) + "\n")
        written.append(path)
    else:
        lines = [f"# {title}", ""]
        if counts:
            lines.append(
                " · ".join(
                    f"**{counts[name]} {name}**"
                    for name in ("regressed", "improved", "no-change", "shifted")
                    if name in counts
                )
            )
            lines.append("")
        lines += ["## Export sets", ""]
        lines.append(
            _markdown_table(
                ["set", "contents"], [list(bit) for bit in summary_bits]
            )
        )
        if verdict_rows:
            lines += ["", f"## Verdicts — {baseline} → {current}", ""]
            lines.append(_markdown_table(_VERDICT_HEADERS, verdict_rows))
        if calibration_rows:
            lines += ["", "## Table 1 calibration audit", ""]
            lines.append(
                _markdown_table(
                    ["set", "measure", "value"],
                    [list(row) for row in calibration_rows],
                )
            )
        lines += ["", "## Per-experiment drill-down", ""]
        for experiment, (headers, rows) in drilldowns:
            lines += [f"### {experiment}", ""]
            lines.append(_markdown_table(headers, rows))
            lines.append("")
        path = os.path.join(out_dir, MARKDOWN_NAME)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        written.append(path)

    if verdicts is not None:
        path = os.path.join(out_dir, VERDICTS_NAME)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(verdicts, handle, indent=2, sort_keys=True)
            handle.write("\n")
        written.append(path)
    return written

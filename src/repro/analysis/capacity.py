"""Structure-capacity curves.

§7 explains the NLS-table's win through capacity: "because each NLS
predictor is smaller than the comparable BTB entry, the NLS
architecture has many more prediction entries using the same
resources".  These helpers trace that argument quantitatively: hit/
misfetch rates as a function of the entry count, with the RBE cost of
each point so the curves can be compared at equal area.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cost.rbe import RBEModel
from repro.harness.config import ArchitectureConfig
from repro.harness.runner import DEFAULT_WARMUP, run_config
from repro.workloads.corpus import generate_trace


@dataclass(frozen=True)
class CapacityPoint:
    """One point of a capacity curve."""

    entries: int
    rbe: float
    bep: float
    bep_misfetch: float
    pct_misfetched: float
    pct_mispredicted: float


def btb_capacity_curve(
    program: str,
    entries_list: Sequence[int] = (32, 64, 128, 256, 512, 1024),
    associativity: int = 1,
    cache_kb: int = 16,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
) -> List[CapacityPoint]:
    """BEP vs BTB entry count on *program* (cost from the RBE model)."""
    model = RBEModel()
    trace = generate_trace(program, instructions=instructions)
    points: List[CapacityPoint] = []
    for entries in entries_list:
        config = ArchitectureConfig(
            frontend="btb",
            entries=entries,
            btb_assoc=associativity,
            cache_kb=cache_kb,
        )
        report = run_config(config, trace, warmup_fraction=warmup)
        points.append(
            CapacityPoint(
                entries=entries,
                rbe=model.btb_cost(entries, associativity).rbe,
                bep=report.bep,
                bep_misfetch=report.bep_misfetch,
                pct_misfetched=report.pct_misfetched,
                pct_mispredicted=report.pct_mispredicted,
            )
        )
    return points


def nls_capacity_curve(
    program: str,
    entries_list: Sequence[int] = (128, 256, 512, 1024, 2048, 4096),
    cache_kb: int = 16,
    cache_assoc: int = 1,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
) -> List[CapacityPoint]:
    """BEP vs NLS-table entry count on *program*."""
    model = RBEModel()
    trace = generate_trace(program, instructions=instructions)
    points: List[CapacityPoint] = []
    for entries in entries_list:
        config = ArchitectureConfig(
            frontend="nls-table",
            entries=entries,
            cache_kb=cache_kb,
            cache_assoc=cache_assoc,
        )
        report = run_config(config, trace, warmup_fraction=warmup)
        points.append(
            CapacityPoint(
                entries=entries,
                rbe=model.nls_table_cost(entries, config.geometry).rbe,
                bep=report.bep,
                bep_misfetch=report.bep_misfetch,
                pct_misfetched=report.pct_misfetched,
                pct_mispredicted=report.pct_mispredicted,
            )
        )
    return points


def format_capacity_curve(points: List[CapacityPoint], title: str = "") -> str:
    """Render a capacity curve as a monospace table."""
    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"{'entries':>8} {'RBE':>10} {'%MfB':>7} {'%MpB':>7} {'BEP':>7}"
    )
    for point in points:
        lines.append(
            f"{point.entries:>8} {point.rbe:>10,.0f} {point.pct_misfetched:>7.2f} "
            f"{point.pct_mispredicted:>7.2f} {point.bep:>7.3f}"
        )
    return "\n".join(lines)

"""Analysis tools layered on top of the simulator.

* :mod:`repro.analysis.attribution` — per-static-site cause profiles:
  fold an engine's attribution snapshot into ranked hot-offender
  tables with an exact BEP decomposition (DESIGN.md §11);
* :mod:`repro.analysis.breakdown` — per-branch-kind penalty
  attribution (which kinds pay misfetch vs mispredict cycles);
* :mod:`repro.analysis.capacity` — structure-capacity curves (BTB hit
  rate and NLS occupancy/alias rate vs entry count);
* :mod:`repro.analysis.sensitivity` — penalty-model sensitivity: how
  the NLS-vs-BTB conclusion moves as the misfetch/mispredict/miss
  penalties change with pipeline depth;
* :mod:`repro.analysis.results` — cross-run loading: export sets,
  the result store and bench artifacts flattened into one tidy table
  (:class:`~repro.analysis.results.ResultFrame`, pandas-upgradable);
* :mod:`repro.analysis.stat_tests` — paired-bootstrap / Mann-Whitney
  comparisons across seeds with Benjamini-Hochberg correction and a
  machine-readable verdict table;
* :mod:`repro.analysis.figures` / :mod:`repro.analysis.rendering` —
  paper-figure reproductions (Figs 4/5/8, Table 1 audit) rendered
  into a self-contained HTML/markdown regression dashboard
  (``harness analyze``, docs/ANALYSIS.md).
"""

from repro.analysis.attribution import (
    AttributionProfile,
    SiteProfile,
    conservation_errors,
    fold_attribution,
    render_markdown,
)
from repro.analysis.breakdown import penalty_breakdown
from repro.analysis.capacity import btb_capacity_curve, nls_capacity_curve
from repro.analysis.rendering import render_dashboard
from repro.analysis.results import ResultFrame, load_export_sets, load_store
from repro.analysis.sensitivity import penalty_sensitivity
from repro.analysis.stat_tests import compare, gate

__all__ = [
    "AttributionProfile",
    "SiteProfile",
    "conservation_errors",
    "fold_attribution",
    "render_markdown",
    "penalty_breakdown",
    "btb_capacity_curve",
    "nls_capacity_curve",
    "penalty_sensitivity",
    "ResultFrame",
    "load_export_sets",
    "load_store",
    "compare",
    "gate",
    "render_dashboard",
]

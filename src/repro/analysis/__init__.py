"""Analysis tools layered on top of the simulator.

* :mod:`repro.analysis.attribution` — per-static-site cause profiles:
  fold an engine's attribution snapshot into ranked hot-offender
  tables with an exact BEP decomposition (DESIGN.md §11);
* :mod:`repro.analysis.breakdown` — per-branch-kind penalty
  attribution (which kinds pay misfetch vs mispredict cycles);
* :mod:`repro.analysis.capacity` — structure-capacity curves (BTB hit
  rate and NLS occupancy/alias rate vs entry count);
* :mod:`repro.analysis.sensitivity` — penalty-model sensitivity: how
  the NLS-vs-BTB conclusion moves as the misfetch/mispredict/miss
  penalties change with pipeline depth.
"""

from repro.analysis.attribution import (
    AttributionProfile,
    SiteProfile,
    conservation_errors,
    fold_attribution,
    render_markdown,
)
from repro.analysis.breakdown import penalty_breakdown
from repro.analysis.capacity import btb_capacity_curve, nls_capacity_curve
from repro.analysis.sensitivity import penalty_sensitivity

__all__ = [
    "AttributionProfile",
    "SiteProfile",
    "conservation_errors",
    "fold_attribution",
    "render_markdown",
    "penalty_breakdown",
    "btb_capacity_curve",
    "nls_capacity_curve",
    "penalty_sensitivity",
]

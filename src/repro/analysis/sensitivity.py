"""Penalty-model sensitivity analysis.

The paper fixes a 1-cycle misfetch, 4-cycle mispredict and 5-cycle
I-cache miss "since these costs are reasonable for current superscalar
architectures" (§5.2).  Deeper pipelines raise the mispredict cost and
bigger memory gaps raise the miss cost; this module re-derives the
NLS-vs-BTB comparison across a penalty grid *without re-simulating* —
the raw event counts are penalty-independent, only the weighting
changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.config import ArchitectureConfig
from repro.harness.runner import DEFAULT_WARMUP, run_config
from repro.metrics.report import PenaltyModel, SimulationReport
from repro.workloads.corpus import generate_trace


def reweigh(report: SimulationReport, penalties: PenaltyModel) -> SimulationReport:
    """Return a copy of *report* scored under a different penalty
    model (event counts are unchanged)."""
    return SimulationReport(
        label=report.label,
        program=report.program,
        n_instructions=report.n_instructions,
        n_breaks=report.n_breaks,
        misfetches=report.misfetches,
        mispredicts=report.mispredicts,
        icache_accesses=report.icache_accesses,
        icache_misses=report.icache_misses,
        penalties=penalties,
        by_kind=report.by_kind,
    )


@dataclass(frozen=True)
class SensitivityPoint:
    """NLS-vs-BTB comparison under one penalty model."""

    penalties: PenaltyModel
    nls_bep: float
    btb_bep: float
    nls_cpi: float
    btb_cpi: float

    @property
    def nls_wins(self) -> bool:
        """Whether the NLS-table still has the lower CPI."""
        return self.nls_cpi <= self.btb_cpi

    @property
    def bep_advantage(self) -> float:
        """BTB BEP minus NLS BEP (positive = NLS ahead)."""
        return self.btb_bep - self.nls_bep


def penalty_sensitivity(
    program: str,
    mispredict_penalties: Sequence[float] = (2.0, 4.0, 8.0, 12.0),
    miss_penalties: Sequence[float] = (5.0, 10.0, 20.0),
    misfetch_penalty: float = 1.0,
    cache_kb: int = 16,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
) -> List[SensitivityPoint]:
    """Sweep the penalty grid for the canonical equal-cost comparison
    (1024-entry NLS-table vs 128-entry direct-mapped BTB).

    Simulates each architecture exactly once and re-weighs the event
    counts for every grid point.
    """
    trace = generate_trace(program, instructions=instructions)
    nls_report = run_config(
        ArchitectureConfig(frontend="nls-table", entries=1024, cache_kb=cache_kb),
        trace,
        warmup_fraction=warmup,
    )
    btb_report = run_config(
        ArchitectureConfig(frontend="btb", entries=128, cache_kb=cache_kb),
        trace,
        warmup_fraction=warmup,
    )
    points: List[SensitivityPoint] = []
    for mispredict in mispredict_penalties:
        for miss in miss_penalties:
            penalties = PenaltyModel(
                misfetch=misfetch_penalty, mispredict=mispredict, icache_miss=miss
            )
            nls = reweigh(nls_report, penalties)
            btb = reweigh(btb_report, penalties)
            points.append(
                SensitivityPoint(
                    penalties=penalties,
                    nls_bep=nls.bep,
                    btb_bep=btb.bep,
                    nls_cpi=nls.cpi,
                    btb_cpi=btb.cpi,
                )
            )
    return points


def format_sensitivity(points: List[SensitivityPoint], title: str = "") -> str:
    """Render a sensitivity sweep as a monospace table."""
    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"{'mp-pen':>7} {'miss-pen':>9} {'NLS BEP':>8} {'BTB BEP':>8} "
        f"{'NLS CPI':>8} {'BTB CPI':>8}  winner"
    )
    for point in points:
        lines.append(
            f"{point.penalties.mispredict:>7.1f} {point.penalties.icache_miss:>9.1f} "
            f"{point.nls_bep:>8.3f} {point.btb_bep:>8.3f} "
            f"{point.nls_cpi:>8.4f} {point.btb_cpi:>8.4f}  "
            f"{'NLS' if point.nls_wins else 'BTB'}"
        )
    return "\n".join(lines)

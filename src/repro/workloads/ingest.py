"""External trace ingestion: records → canonical ``Trace`` → corpus.

This module turns external branch-record streams (parsed by
:mod:`repro.workloads.formats`) into the repo's canonical
block-compressed :class:`~repro.workloads.trace.Trace`, names them by
content digest, and stores them in a content-addressed on-disk store
so every downstream layer — corpus memoisation, the on-disk trace
cache, the checkpoint journal, result-store dedup, and service jobs —
treats ingested traces as first-class corpus members.

Normalisation (specified in docs/TRACES.md):

* the first block starts at the entry PC the trace declares (CBP
  ``# entry`` directive / ChampSim ``CSBT`` header), else at the
  first record's PC (inferred single-instruction first block);
* each record closes the current block: ``count = (pc - start)/4 + 1``;
* the next block starts at ``target`` when taken, ``pc + 4``
  otherwise, so the resulting trace satisfies every
  :meth:`~repro.workloads.trace.Trace.validate` invariant **by
  construction**;
* rejected (with the record's exact position): misaligned PCs or
  targets, PCs before the current block start (control-flow
  discontinuities), addresses ≥ 2^63 (outside the packed ``int64``
  columns), not-taken records of unconditional kinds, and taken
  records with target 0.

Identity: :func:`trace_digest` hashes the packed NumPy columns (SHA-256
over dtype-tagged column bytes, *excluding* the name), and ingested
traces are named ``external:<digest>`` — the trace-key scheme
``corpus.trace_key`` recognises.  The digest is stable across formats:
the same control flow ingested from a CBP text file and a ChampSim
binary file dedups to one corpus entry.
"""

from __future__ import annotations

import hashlib
import os
from typing import Iterable, Optional, Tuple

from repro.isa.branches import BranchKind
from repro.isa.geometry import INSTRUCTION_BYTES
from repro.workloads.trace import Trace

#: prefix of content-addressed trace names (the corpus trace-key form)
EXTERNAL_PREFIX = "external:"

#: environment variable naming the external-trace store directory
EXTERNAL_DIR_ENV_VAR = "REPRO_EXTERNAL_TRACE_DIR"

#: default store directory (relative to the working directory)
DEFAULT_EXTERNAL_DIR = "external-traces"

#: version tag folded into the content digest; bump on any change to
#: the packed representation or the hashing scheme
DIGEST_VERSION = b"repro-trace/v1"

#: largest address representable in the packed int64 columns
_MAX_ADDRESS = (1 << 63) - 1

#: branch kinds that always redirect (a not-taken record is malformed)
_ALWAYS_TAKEN = frozenset(
    (BranchKind.UNCONDITIONAL, BranchKind.CALL, BranchKind.RETURN, BranchKind.INDIRECT)
)


def is_external(name: str) -> bool:
    """True when *name* is an ``external:<digest>`` trace key."""
    return name.startswith(EXTERNAL_PREFIX)


def external_trace_dir(directory: Optional[str] = None) -> str:
    """Resolve the external-trace store directory.

    Explicit *directory* wins, then ``REPRO_EXTERNAL_TRACE_DIR``, then
    the ``external-traces`` default.
    """
    return (
        directory
        or os.environ.get(EXTERNAL_DIR_ENV_VAR)
        or DEFAULT_EXTERNAL_DIR
    )


def trace_digest(trace: Trace) -> str:
    """Content digest of *trace*: SHA-256 over its packed columns.

    The name is excluded, so renaming a trace never changes its
    identity; dtypes are folded in so a representation change can
    never silently collide with the old scheme.
    """
    digest = hashlib.sha256(DIGEST_VERSION)
    for column, array in sorted(trace.packed().items()):
        digest.update(column.encode("ascii"))
        digest.update(str(array.dtype).encode("ascii"))
        digest.update(array.tobytes())
    return digest.hexdigest()


def external_name(trace: Trace) -> str:
    """The ``external:<sha256>`` corpus name of *trace*."""
    return EXTERNAL_PREFIX + trace_digest(trace)


def ingest_records(records: Iterable, source: str = "<records>") -> Trace:
    """Normalise a branch-record stream into a canonical ``Trace``.

    *records* is what a format reader yields: optionally an
    ``("entry", pc)`` sentinel first, then
    :class:`~repro.workloads.formats.BranchRecord` values.  Raises
    :class:`~repro.workloads.formats.TraceFormatError` (naming
    *source* and the offending record's position) on the first record
    that violates the normalisation rules, and returns a trace that
    passes :meth:`~repro.workloads.trace.Trace.validate` by
    construction.  The returned trace is named by content digest
    (``external:<sha256>``).
    """
    from repro.workloads.formats import TraceFormatError

    trace = Trace()
    start: Optional[int] = None
    iterator = iter(records)
    for item in iterator:
        if isinstance(item, tuple) and item and item[0] == "entry":
            entry = item[1]
            if entry % INSTRUCTION_BYTES:
                raise TraceFormatError(
                    source,
                    "entry",
                    f"entry address {entry:#x} is not 4-byte aligned",
                )
            start = entry
            continue
        record = item
        position = record.position
        if start is None:
            start = record.pc
        for field, value in (("PC", record.pc), ("target", record.target)):
            if value % INSTRUCTION_BYTES:
                raise TraceFormatError(
                    source,
                    position,
                    f"{field} {value:#x} is not 4-byte aligned",
                )
            if value > _MAX_ADDRESS:
                raise TraceFormatError(
                    source,
                    position,
                    f"{field} {value:#x} exceeds the 63-bit address space",
                )
        if record.kind == BranchKind.NOT_A_BRANCH:
            raise TraceFormatError(
                source, position, "NOT_A_BRANCH records cannot close a block"
            )
        if record.pc < start:
            raise TraceFormatError(
                source,
                position,
                f"branch PC {record.pc:#x} precedes the current block "
                f"start {start:#x} (control-flow discontinuity: the "
                f"previous record's direction/target contradicts this PC)",
            )
        if not record.taken and record.kind in _ALWAYS_TAKEN:
            raise TraceFormatError(
                source,
                position,
                f"{record.kind.name} branches always redirect; "
                f"a not-taken record is malformed",
            )
        if record.taken and record.target == 0:
            raise TraceFormatError(
                source, position, "taken branch with target 0x0"
            )
        count = (record.pc - start) // INSTRUCTION_BYTES + 1
        trace.append(
            start=start,
            count=count,
            kind=record.kind,
            taken=record.taken,
            target=record.target,
        )
        start = record.target if record.taken else record.pc + INSTRUCTION_BYTES
    if not trace.starts:
        raise TraceFormatError(source, "end of input", "contains no branch records")
    trace.name = external_name(trace)
    return trace


def ingest_file(path: str, fmt: str = "auto", source: str = "") -> Trace:
    """Parse + normalise the external trace at *path*.

    ``fmt`` is a registered format name or ``'auto'`` (magic-byte
    sniffing).  The returned trace is named ``external:<sha256>`` but
    **not** yet stored — use :func:`ingest_and_store` for the full
    pipeline.
    """
    from repro.workloads.formats import read_records

    source = source or path
    return ingest_records(read_records(path, fmt=fmt, source=source), source=source)


def external_trace_path(name: str, directory: Optional[str] = None) -> str:
    """On-disk path of the stored trace *name* (``external:<digest>``)."""
    if not is_external(name):
        raise ValueError(f"not an external trace name: {name!r}")
    digest = name[len(EXTERNAL_PREFIX) :]
    if len(digest) != 64 or any(c not in "0123456789abcdef" for c in digest):
        raise ValueError(
            f"malformed external trace name {name!r}: expected "
            f"'external:<64 hex sha256 chars>'"
        )
    return os.path.join(external_trace_dir(directory), f"{digest}.npz")


def store_external(trace: Trace, directory: Optional[str] = None) -> str:
    """Persist *trace* into the content-addressed store; return its name.

    Writes ``<digest>.npz`` with an atomic tmp + rename (concurrent
    ingests of the same trace are idempotent).  The trace is renamed
    to its ``external:<digest>`` form first, so what is stored replays
    under exactly the name the corpus resolves.
    """
    trace.name = external_name(trace)
    target_dir = external_trace_dir(directory)
    os.makedirs(target_dir, exist_ok=True)
    path = external_trace_path(trace.name, directory)
    if not os.path.exists(path):
        tmp = f"{path}.{os.getpid()}.tmp.npz"
        trace.save(tmp)
        os.replace(tmp, path)
    return trace.name


def load_external(name: str, directory: Optional[str] = None) -> Trace:
    """Load the stored external trace *name*, verifying its digest.

    Raises ``FileNotFoundError`` with an actionable message when the
    trace was never ingested (or the store directory is wrong), and
    ``ValueError`` when the stored bytes no longer hash to the name
    (store corruption) — external traces are immutable inputs, so
    unlike the synthetic trace cache they are never silently
    regenerated.
    """
    path = external_trace_path(name, directory)
    if not os.path.exists(path):
        raise FileNotFoundError(
            f"external trace {name!r} is not in the store at "
            f"{external_trace_dir(directory)!r}; ingest it first with "
            f"'python -m repro.harness ingest --trace FILE' or point "
            f"{EXTERNAL_DIR_ENV_VAR} at the right directory"
        )
    trace = Trace.load(path)
    digest = trace_digest(trace)
    if EXTERNAL_PREFIX + digest != name:
        raise ValueError(
            f"stored trace at {path} hashes to {digest}, not the "
            f"{name[len(EXTERNAL_PREFIX):]} its name claims: the store "
            f"file is corrupt; delete it and re-ingest"
        )
    trace.name = name
    return trace


def ingest_and_store(
    path: str, fmt: str = "auto", directory: Optional[str] = None
) -> Tuple[Trace, str]:
    """Full pipeline: parse, normalise, digest, store.

    Returns ``(trace, name)`` where *name* is the ``external:<sha256>``
    corpus key the trace replays under.
    """
    trace = ingest_file(path, fmt=fmt)
    name = store_external(trace, directory)
    return trace, name

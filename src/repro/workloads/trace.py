"""Block-compressed instruction traces.

A trace is a sequence of *events*; each event is one dynamic basic
block — a run of sequential instructions ending in (at most) one
break.  Block compression keeps pure-Python simulation tractable: the
fetch engine touches each event once instead of once per instruction.

Consistency invariants (checked by :meth:`Trace.validate` and relied
on by every simulator):

* ``branch_pc(i) == starts[i] + (counts[i] - 1) * 4`` — the break is
  the last instruction of its block;
* if event *i* is a taken branch, ``starts[i+1] == targets[i]``;
* if event *i* is a not-taken conditional, ``starts[i+1] ==
  branch_pc(i) + 4`` (the fall-through);
* returns transfer to the address following their matching call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from repro.isa.branches import BranchKind
from repro.isa.geometry import INSTRUCTION_BYTES


@dataclass(frozen=True)
class TraceEvent:
    """One dynamic basic block (a materialised view of a trace row)."""

    start: int
    count: int
    kind: BranchKind
    taken: bool
    target: int

    @property
    def branch_pc(self) -> int:
        """Address of the block's final (break) instruction."""
        return self.start + (self.count - 1) * INSTRUCTION_BYTES

    @property
    def fall_through(self) -> int:
        """Address of the instruction after the break."""
        return self.branch_pc + INSTRUCTION_BYTES


#: dtypes of the packed (structured-array) trace representation; the
#: on-disk ``.npz`` cache stores exactly these columns, so a loaded
#: trace hands the fast engine its arrays without any repacking
PACKED_DTYPES = {
    "starts": np.int64,
    "counts": np.int64,
    "kinds": np.int8,
    "takens": np.bool_,
    "targets": np.int64,
}


class Trace:
    """A block-compressed trace.

    Columns are plain Python lists (fast scalar access in the
    reference simulation loop); :meth:`packed` exposes the same
    columns as a memoised dict of NumPy arrays — the representation
    the vectorised fast engine replays — and :meth:`to_arrays`
    exports fresh copies for ad-hoc analysis.
    """

    __slots__ = ("starts", "counts", "kinds", "takens", "targets", "name", "_packed")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.starts: List[int] = []
        self.counts: List[int] = []
        self.kinds: List[int] = []
        self.takens: List[bool] = []
        #: taken-target address of the block's break (0 for non-breaks);
        #: recorded even when a conditional executes not-taken, so
        #: target-sensitive predictors (e.g. BTFNT) can be simulated.
        self.targets: List[int] = []
        #: memoised packed (NumPy) view; invalidated by :meth:`append`
        self._packed: Optional[dict] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def append(
        self,
        start: int,
        count: int,
        kind: BranchKind = BranchKind.NOT_A_BRANCH,
        taken: bool = False,
        target: int = 0,
    ) -> None:
        """Append one block event."""
        if count < 1:
            raise ValueError(f"a block must contain at least one instruction: {count}")
        if start % INSTRUCTION_BYTES:
            raise ValueError(f"block start {start:#x} is not instruction-aligned")
        self.starts.append(start)
        self.counts.append(count)
        self.kinds.append(int(kind))
        self.takens.append(bool(taken))
        self.targets.append(target)
        self._packed = None

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.starts)

    @property
    def n_events(self) -> int:
        """Number of block events."""
        return len(self.starts)

    @property
    def n_instructions(self) -> int:
        """Total dynamic instruction count."""
        return sum(self.counts)

    @property
    def n_breaks(self) -> int:
        """Number of executed break instructions."""
        return sum(1 for k in self.kinds if k != BranchKind.NOT_A_BRANCH)

    def event(self, index: int) -> TraceEvent:
        """Materialise event *index* as a :class:`TraceEvent`."""
        return TraceEvent(
            start=self.starts[index],
            count=self.counts[index],
            kind=BranchKind(self.kinds[index]),
            taken=self.takens[index],
            target=self.targets[index],
        )

    def events(self) -> Iterator[TraceEvent]:
        """Iterate over all events as :class:`TraceEvent` objects."""
        for index in range(len(self.starts)):
            yield self.event(index)

    def branch_pc(self, index: int) -> int:
        """Address of the break instruction of event *index*."""
        return self.starts[index] + (self.counts[index] - 1) * INSTRUCTION_BYTES

    def packed(self) -> dict:
        """Return the trace columns as a memoised dict of NumPy arrays.

        This is the representation the vectorised fast engine replays
        (dtypes per :data:`PACKED_DTYPES`).  The arrays are built once
        and cached on the trace; :meth:`append` invalidates the cache.
        Callers must treat the arrays as read-only.
        """
        if self._packed is None:
            self._packed = {
                name: np.asarray(getattr(self, name), dtype=dtype)
                for name, dtype in PACKED_DTYPES.items()
            }
        return self._packed

    def to_arrays(self) -> dict:
        """Export the trace columns as fresh NumPy array copies."""
        return {name: array.copy() for name, array in self.packed().items()}

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def save(self, path: str) -> None:
        """Save the trace (its packed form) to an ``.npz`` file."""
        np.savez_compressed(path, name=np.asarray(self.name), **self.packed())

    @classmethod
    def load(cls, path: str) -> "Trace":
        """Load a trace previously written by :meth:`save`.

        The packed arrays stored on disk seed both the list columns
        (via ``ndarray.tolist()``, much faster than per-element
        conversion) and the memoised :meth:`packed` view, so a
        cache-loaded trace is immediately ready for the fast engine.
        """
        data = np.load(path, allow_pickle=False)
        trace = cls(name=str(data["name"]))
        packed = {
            name: np.asarray(data[name], dtype=dtype)
            for name, dtype in PACKED_DTYPES.items()
        }
        trace.starts = packed["starts"].tolist()
        trace.counts = packed["counts"].tolist()
        trace.kinds = packed["kinds"].tolist()
        trace.takens = packed["takens"].tolist()
        trace.targets = packed["targets"].tolist()
        trace._packed = packed
        return trace

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check the control-flow consistency invariants; raises
        ``ValueError`` on the first violation."""
        not_a_branch = int(BranchKind.NOT_A_BRANCH)
        for i in range(len(self.starts) - 1):
            kind = self.kinds[i]
            branch_pc = self.branch_pc(i)
            next_start = self.starts[i + 1]
            if kind == not_a_branch or not self.takens[i]:
                expected = branch_pc + INSTRUCTION_BYTES
                if next_start != expected:
                    raise ValueError(
                        f"event {i}: fall-through to {next_start:#x}, "
                        f"expected {expected:#x}"
                    )
            else:
                if next_start != self.targets[i]:
                    raise ValueError(
                        f"event {i}: taken branch to {next_start:#x}, "
                        f"recorded target {self.targets[i]:#x}"
                    )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Trace({self.name!r}, events={self.n_events}, "
            f"instructions={self.n_instructions})"
        )

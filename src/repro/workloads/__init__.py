"""Synthetic workloads standing in for the paper's ATOM traces.

The paper traced SPEC92 programs and C++ applications on a DEC Alpha
with ATOM (§5).  Those binaries, inputs and the tracing infrastructure
are not available here, so this package synthesises *consistent*
control-flow traces from generated programs:

* :mod:`repro.workloads.program` — the static program model
  (procedures, basic blocks, branch sites with targets);
* :mod:`repro.workloads.generator` — builds a program from a
  :class:`~repro.workloads.profiles.WorkloadProfile`;
* :mod:`repro.workloads.interpreter` — executes the program with a
  seeded RNG, emitting a block-compressed :class:`Trace`;
* :mod:`repro.workloads.profiles` — six profiles calibrated to the
  per-program columns of Table 1 (branch density, type mix, taken
  rate, dynamic-site concentration, code footprint), plus two
  modern-server profiles (``server-frontend``, ``server-leaf``) with
  multi-MB footprints and flat site popularity (docs/WORKLOADS.md);
* :mod:`repro.workloads.stats` — re-measures the Table 1 attributes
  from a trace so the calibration is auditable;
* :mod:`repro.workloads.formats` / :mod:`repro.workloads.ingest` —
  external-trace ingestion: ChampSim/CBP-style readers normalising
  recorded branch streams into canonical traces named by content
  digest (``external:<sha256>``, docs/TRACES.md).

Traces are *consistent*: instruction runs fall through sequentially,
taken branches land exactly on the next event's start address, calls
and returns balance, and return targets equal the pushed return
addresses — the properties the cache and NLS simulations rely on.
"""

from repro.workloads.trace import Trace, TraceEvent
from repro.workloads.program import (
    Block,
    CallSite,
    ConditionalSite,
    IndirectSite,
    LoopSite,
    Procedure,
    ReturnSite,
    Site,
    SyntheticProgram,
    UnconditionalSite,
)
from repro.workloads.profiles import (
    WorkloadProfile,
    PROFILES,
    get_profile,
    paper_programs,
    server_programs,
)
from repro.workloads.generator import build_program
from repro.workloads.ingest import ingest_and_store, is_external, load_external
from repro.workloads.interpreter import execute
from repro.workloads.stats import TraceAttributes, TraceFootprint, footprint, measure
from repro.workloads.corpus import generate_trace, clear_trace_cache

__all__ = [
    "Trace",
    "TraceEvent",
    "SyntheticProgram",
    "Procedure",
    "Block",
    "Site",
    "ConditionalSite",
    "LoopSite",
    "UnconditionalSite",
    "CallSite",
    "IndirectSite",
    "ReturnSite",
    "WorkloadProfile",
    "PROFILES",
    "get_profile",
    "paper_programs",
    "server_programs",
    "ingest_and_store",
    "is_external",
    "load_external",
    "build_program",
    "execute",
    "TraceAttributes",
    "TraceFootprint",
    "footprint",
    "measure",
    "generate_trace",
    "clear_trace_cache",
]

"""Trace corpus: build-once, reuse-everywhere trace generation.

A full figure sweep simulates the same program trace under dozens of
architecture configurations; regenerating the trace each time would
dominate the runtime.  This module memoises traces keyed by
(program, instruction budget, seed, layout).

The global scale knob ``REPRO_TRACE_SCALE`` (an environment variable,
default 1.0) multiplies every requested budget, letting test runs use
short traces and full reproductions long ones without touching code.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from repro.workloads.generator import build_program
from repro.workloads.interpreter import execute
from repro.workloads.profiles import get_profile
from repro.workloads.trace import Trace

_CACHE: Dict[Tuple[str, int, int, str], Trace] = {}

#: environment variable multiplying every trace budget
SCALE_ENV_VAR = "REPRO_TRACE_SCALE"


def trace_scale() -> float:
    """Current global trace-length multiplier (>= 0, default 1.0)."""
    raw = os.environ.get(SCALE_ENV_VAR, "")
    if not raw:
        return 1.0
    try:
        scale = float(raw)
    except ValueError:
        raise ValueError(
            f"{SCALE_ENV_VAR} must be a number, got {raw!r}"
        ) from None
    if scale <= 0:
        raise ValueError(f"{SCALE_ENV_VAR} must be positive, got {scale}")
    return scale


def generate_trace(
    name: str,
    instructions: Optional[int] = None,
    seed: Optional[int] = None,
    layout: str = "natural",
) -> Trace:
    """Return the (memoised) trace for the calibrated program *name*.

    *instructions* defaults to the profile's calibrated trace length;
    either way it is multiplied by ``REPRO_TRACE_SCALE``.
    """
    profile = get_profile(name)
    if instructions is None:
        instructions = profile.default_instructions
    budget = max(1, int(instructions * trace_scale()))
    effective_seed = profile.seed if seed is None else seed
    key = (name, budget, effective_seed, layout)
    trace = _CACHE.get(key)
    if trace is None:
        program = build_program(profile, layout=layout, seed=effective_seed)
        trace = execute(
            program,
            budget,
            seed=effective_seed + 1,
            name=name,
            profile_indirect_repeat=profile.indirect_repeat,
        )
        _CACHE[key] = trace
    return trace


def clear_trace_cache() -> None:
    """Drop all memoised traces (tests use this to bound memory)."""
    _CACHE.clear()

"""Trace corpus: build-once, reuse-everywhere trace generation.

A full figure sweep simulates the same program trace under dozens of
architecture configurations; regenerating the trace each time would
dominate the runtime.  This module memoises traces keyed by the fully
resolved set of generation parameters — ``(program, instruction
budget, seed, layout)``, where the budget already folds in the global
``REPRO_TRACE_SCALE`` multiplier and the seed/length defaults come
from the program's calibrated profile.  :func:`trace_key` exposes that
key so the parallel run-plan executor can group simulation cells that
share a trace onto the same worker.

Worker processes each hold their own private cache (module state is
per process); :func:`clear_cache` gives pool initialisers and tests an
explicit way to start from — or return to — an empty corpus.

The global scale knob ``REPRO_TRACE_SCALE`` (an environment variable,
default 1.0) multiplies every requested budget, letting test runs use
short traces and full reproductions long ones without touching code.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from repro.telemetry.core import get_registry
from repro.workloads.generator import build_program
from repro.workloads.interpreter import execute
from repro.workloads.profiles import get_profile
from repro.workloads.trace import Trace

#: fully resolved memoisation key: (program, budget, seed, layout)
TraceKey = Tuple[str, int, int, str]

_CACHE: Dict[TraceKey, Trace] = {}

#: environment variable multiplying every trace budget
SCALE_ENV_VAR = "REPRO_TRACE_SCALE"


def trace_scale() -> float:
    """Current global trace-length multiplier (>= 0, default 1.0)."""
    raw = os.environ.get(SCALE_ENV_VAR, "")
    if not raw:
        return 1.0
    try:
        scale = float(raw)
    except ValueError:
        raise ValueError(
            f"{SCALE_ENV_VAR} must be a number, got {raw!r}"
        ) from None
    if scale <= 0:
        raise ValueError(f"{SCALE_ENV_VAR} must be positive, got {scale}")
    return scale


def trace_key(
    name: str,
    instructions: Optional[int] = None,
    seed: Optional[int] = None,
    layout: str = "natural",
) -> TraceKey:
    """Resolve every generation parameter into the memoisation key.

    ``instructions`` and ``seed`` default from the program's profile
    and the budget is scaled by ``REPRO_TRACE_SCALE``, so two requests
    that would generate the same trace always map to the same key —
    and two that would not, never do.
    """
    profile = get_profile(name)
    if instructions is None:
        instructions = profile.default_instructions
    budget = max(1, int(instructions * trace_scale()))
    effective_seed = profile.seed if seed is None else seed
    return (name, budget, effective_seed, layout)


def generate_trace(
    name: str,
    instructions: Optional[int] = None,
    seed: Optional[int] = None,
    layout: str = "natural",
) -> Trace:
    """Return the (memoised) trace for the calibrated program *name*.

    *instructions* defaults to the profile's calibrated trace length;
    either way it is multiplied by ``REPRO_TRACE_SCALE``.
    """
    key = trace_key(name, instructions=instructions, seed=seed, layout=layout)
    registry = get_registry()
    trace = _CACHE.get(key)
    if trace is None:
        registry.counter("corpus.trace_cache_misses").add()
        profile = get_profile(name)
        _, budget, effective_seed, _ = key
        with registry.span(
            "corpus.generate_trace", program=name, instructions=budget
        ):
            program = build_program(profile, layout=layout, seed=effective_seed)
            trace = execute(
                program,
                budget,
                seed=effective_seed + 1,
                name=name,
                profile_indirect_repeat=profile.indirect_repeat,
            )
        _CACHE[key] = trace
    else:
        registry.counter("corpus.trace_cache_hits").add()
    return trace


def cache_info() -> Dict[str, object]:
    """Snapshot of the memoised corpus: entry count, cached keys and
    total instructions held (workers use this to bound memory)."""
    return {
        "entries": len(_CACHE),
        "keys": tuple(_CACHE),
        "instructions": sum(t.n_instructions for t in _CACHE.values()),
    }


def clear_cache() -> None:
    """Drop all memoised traces.

    Pool workers call this from their initialiser so each worker
    starts from an empty, private corpus (no stale state inherited
    across forks); tests use it to bound memory.
    """
    _CACHE.clear()


#: backwards-compatible alias for :func:`clear_cache`
clear_trace_cache = clear_cache

"""Trace corpus: build-once, reuse-everywhere trace generation.

A full figure sweep simulates the same program trace under dozens of
architecture configurations; regenerating the trace each time would
dominate the runtime.  This module memoises traces keyed by the fully
resolved set of generation parameters — ``(program, instruction
budget, seed, layout)``, where the budget already folds in the global
``REPRO_TRACE_SCALE`` multiplier and the seed/length defaults come
from the program's calibrated profile.  :func:`trace_key` exposes that
key so the parallel run-plan executor can group simulation cells that
share a trace onto the same worker.

Worker processes each hold their own private cache (module state is
per process); :func:`clear_cache` gives pool initialisers and tests an
explicit way to start from — or return to — an empty corpus.

Setting ``REPRO_TRACE_CACHE_DIR`` adds a second, **on-disk** tier
shared across processes and runs: generated traces are written as
``.npz`` files (atomic tmp + rename) together with a SHA-256 checksum
sidecar.  Loads validate the checksum first — a corrupted or truncated
file (disk faults, torn writes, injected chaos) is **detected, evicted
and regenerated** instead of crashing the sweep, with
``corpus.trace_file_corrupt`` / ``corpus.trace_file_evictions``
telemetry counters making the recovery visible.

The global scale knob ``REPRO_TRACE_SCALE`` (an environment variable,
default 1.0) multiplies every requested budget, letting test runs use
short traces and full reproductions long ones without touching code.
"""

from __future__ import annotations

import hashlib
import os
import warnings
from typing import Dict, Optional, Tuple

from repro.telemetry.core import get_registry
from repro.testing import faults as faults_module
from repro.workloads.generator import build_program
from repro.workloads.ingest import is_external, load_external
from repro.workloads.interpreter import execute
from repro.workloads.profiles import get_profile
from repro.workloads.trace import Trace

#: fully resolved memoisation key: (program, budget, seed, layout)
TraceKey = Tuple[str, int, int, str]

_CACHE: Dict[TraceKey, Trace] = {}

#: environment variable multiplying every trace budget
SCALE_ENV_VAR = "REPRO_TRACE_SCALE"

#: environment variable naming the on-disk trace-cache directory
CACHE_DIR_ENV_VAR = "REPRO_TRACE_CACHE_DIR"


def trace_scale() -> float:
    """Current global trace-length multiplier (>= 0, default 1.0)."""
    raw = os.environ.get(SCALE_ENV_VAR, "")
    if not raw:
        return 1.0
    try:
        scale = float(raw)
    except ValueError:
        raise ValueError(
            f"{SCALE_ENV_VAR} must be a number, got {raw!r}"
        ) from None
    if scale <= 0:
        raise ValueError(f"{SCALE_ENV_VAR} must be positive, got {scale}")
    return scale


def trace_key(
    name: str,
    instructions: Optional[int] = None,
    seed: Optional[int] = None,
    layout: str = "natural",
) -> TraceKey:
    """Resolve every generation parameter into the memoisation key.

    ``instructions`` and ``seed`` default from the program's profile
    and the budget is scaled by ``REPRO_TRACE_SCALE``, so two requests
    that would generate the same trace always map to the same key —
    and two that would not, never do.

    Ingested ``external:<sha256>`` traces (docs/TRACES.md) are
    content-addressed immutable inputs: *instructions*, *seed* and the
    trace scale do not apply to them (a replay is always the full
    recorded stream), so their key is ``(name, 0, 0, layout)`` — the
    digest alone carries the identity.
    """
    if is_external(name):
        return (name, 0, 0, layout)
    profile = get_profile(name)
    if instructions is None:
        instructions = profile.default_instructions
    budget = max(1, int(instructions * trace_scale()))
    effective_seed = profile.seed if seed is None else seed
    return (name, budget, effective_seed, layout)


# ---------------------------------------------------------------------------
# the on-disk tier (checksum-validated, opt-in via REPRO_TRACE_CACHE_DIR)
# ---------------------------------------------------------------------------


def trace_cache_dir() -> Optional[str]:
    """The configured on-disk cache directory, or ``None``."""
    return os.environ.get(CACHE_DIR_ENV_VAR) or None


def _trace_file_path(directory: str, key: TraceKey) -> str:
    digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()[:16]
    return os.path.join(directory, f"{key[0]}-{digest}.npz")


def _checksum_path(path: str) -> str:
    return path + ".sha256"


def _file_sha256(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _evict_trace_file(path: str) -> None:
    """Remove a cached trace file and its checksum sidecar."""
    for victim in (path, _checksum_path(path)):
        try:
            os.remove(victim)
        except OSError:
            pass


def _store_trace_file(directory: str, key: TraceKey, trace: Trace) -> None:
    """Persist *trace* with atomic renames plus a checksum sidecar."""
    os.makedirs(directory, exist_ok=True)
    path = _trace_file_path(directory, key)
    tmp = f"{path}.{os.getpid()}.tmp.npz"
    try:
        trace.save(tmp)
        checksum = _file_sha256(tmp)
        os.replace(tmp, path)
        checksum_tmp = f"{_checksum_path(path)}.{os.getpid()}.tmp"
        with open(checksum_tmp, "w", encoding="utf-8") as handle:
            handle.write(checksum + "\n")
        os.replace(checksum_tmp, _checksum_path(path))
        get_registry().counter("corpus.trace_file_stores").add()
    except OSError:  # read-only / full disk: the cache is best-effort
        _evict_trace_file(path)


def _load_trace_file(directory: str, key: TraceKey) -> Optional[Trace]:
    """Load + validate the cached trace for *key*.

    Returns ``None`` when the file is absent, or when validation fails
    — in which case the corrupted entry is **evicted** so the caller
    regenerates it (never crashes the sweep on bad cached bytes)."""
    registry = get_registry()
    path = _trace_file_path(directory, key)
    if not os.path.exists(path):
        registry.counter("corpus.trace_file_misses").add()
        return None
    # chaos hook: lets the fault-injection harness corrupt the cached
    # file at the exact moment a real disk fault would surface
    faults_module.fire("trace-file", program=key[0], path=path)
    try:
        with open(_checksum_path(path), "r", encoding="utf-8") as handle:
            expected = handle.read().strip()
    except OSError:
        expected = ""
    corrupt = not expected or _file_sha256(path) != expected
    trace: Optional[Trace] = None
    if not corrupt:
        try:
            trace = Trace.load(path)
        except Exception:  # truncated archive, bad zip, wrong dtype ...
            corrupt = True
    if corrupt:
        registry.counter("corpus.trace_file_corrupt").add()
        registry.counter("corpus.trace_file_evictions").add()
        warnings.warn(
            f"evicting cached trace {path}: SHA-256 checksum "
            f"validation failed (sidecar {_checksum_path(path)}); the "
            f"trace will be regenerated",
            RuntimeWarning,
            stacklevel=2,
        )
        _evict_trace_file(path)
        return None
    registry.counter("corpus.trace_file_hits").add()
    return trace


def generate_trace(
    name: str,
    instructions: Optional[int] = None,
    seed: Optional[int] = None,
    layout: str = "natural",
) -> Trace:
    """Return the (memoised) trace for the calibrated program *name*.

    *instructions* defaults to the profile's calibrated trace length;
    either way it is multiplied by ``REPRO_TRACE_SCALE``.  With
    ``REPRO_TRACE_CACHE_DIR`` set, traces also persist on disk behind
    a checksum: corrupted files are evicted and regenerated.

    ``external:<sha256>`` names resolve through the content-addressed
    external-trace store instead of the synthetic generator (see
    :mod:`repro.workloads.ingest`); the in-process memo tier is shared,
    so sweeps mixing synthetic and ingested programs batch the same
    way.
    """
    key = trace_key(name, instructions=instructions, seed=seed, layout=layout)
    registry = get_registry()
    trace = _CACHE.get(key)
    if trace is not None:
        registry.counter("corpus.trace_cache_hits").add()
        return trace
    registry.counter("corpus.trace_cache_misses").add()
    if is_external(name):
        trace = load_external(name)
        _CACHE[key] = trace
        return trace
    directory = trace_cache_dir()
    if directory is not None:
        trace = _load_trace_file(directory, key)
        if trace is not None:
            _CACHE[key] = trace
            return trace
    profile = get_profile(name)
    _, budget, effective_seed, _ = key
    with registry.span(
        "corpus.generate_trace", program=name, instructions=budget
    ):
        program = build_program(profile, layout=layout, seed=effective_seed)
        trace = execute(
            program,
            budget,
            seed=effective_seed + 1,
            name=name,
            profile_indirect_repeat=profile.indirect_repeat,
        )
    _CACHE[key] = trace
    if directory is not None:
        _store_trace_file(directory, key, trace)
    return trace


def cache_info() -> Dict[str, object]:
    """Snapshot of the memoised corpus: entry count, cached keys and
    total instructions held (workers use this to bound memory)."""
    return {
        "entries": len(_CACHE),
        "keys": tuple(_CACHE),
        "instructions": sum(t.n_instructions for t in _CACHE.values()),
    }


def clear_cache() -> None:
    """Drop all memoised traces.

    Pool workers call this from their initialiser so each worker
    starts from an empty, private corpus (no stale state inherited
    across forks); tests use it to bound memory.
    """
    _CACHE.clear()


#: backwards-compatible alias for :func:`clear_cache`
clear_trace_cache = clear_cache

"""Static model of a synthetic program.

A :class:`SyntheticProgram` is a list of procedures; a procedure is a
contiguous run of basic blocks; every block ends in exactly one *site*
(a break-class instruction).  Straight-line runs between breaks are
represented by the block's instruction count, so the static model maps
one-to-one onto the block-compressed trace events the interpreter
emits.

Sites reference blocks by index within their procedure, which keeps
the model relocatable: addresses are assigned once by the generator's
layout pass and all runtime targets are derived from block addresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.isa.branches import BranchKind
from repro.isa.geometry import INSTRUCTION_BYTES


@dataclass(frozen=True)
class ConditionalSite:
    """A forward conditional branch (if/else shape).

    When ``correlation_bits`` is non-zero the site is *correlated*: its
    outcome is a deterministic (per-site-salted) hash of the last
    ``correlation_bits`` global conditional outcomes, biased by
    ``taken_prob``.  Correlated branches model the `if (x>0) ...
    if (x>=0)` pattern that two-level predictors exploit — they look
    random to a per-address predictor but are learnable through global
    history."""

    target_block: int
    taken_prob: float
    correlation_bits: int = 0
    salt: int = 0
    #: probability the outcome simply repeats the previous one — real
    #: data-dependent branches decide in runs, not i.i.d. coin flips
    sticky: float = 0.0

    kind = BranchKind.CONDITIONAL


@dataclass(frozen=True)
class LoopSite:
    """A backward conditional branch closing a loop.

    Two trip-count behaviours: when ``fixed_trips`` is set the loop
    always runs exactly that many times (a counted ``for`` loop —
    fully learnable by a history-based predictor when the count fits
    in the history window); otherwise each execution continues with
    probability ``continue_prob`` (a data-dependent ``while`` loop
    with geometric trip counts)."""

    head_block: int
    continue_prob: float
    fixed_trips: Optional[int] = None

    kind = BranchKind.CONDITIONAL


@dataclass(frozen=True)
class UnconditionalSite:
    """A direct unconditional jump within the procedure."""

    target_block: int

    kind = BranchKind.UNCONDITIONAL


@dataclass(frozen=True)
class CallSite:
    """A direct call to another procedure."""

    callee: int

    kind = BranchKind.CALL


@dataclass(frozen=True)
class IndirectSite:
    """An indirect jump (switch / virtual dispatch shape)."""

    target_blocks: Sequence[int]
    weights: Sequence[float]

    kind = BranchKind.INDIRECT

    def __post_init__(self) -> None:
        if len(self.target_blocks) != len(self.weights):
            raise ValueError("target_blocks and weights must have equal length")
        if not self.target_blocks:
            raise ValueError("an indirect site needs at least one target")


@dataclass(frozen=True)
class ReturnSite:
    """A procedure return."""

    kind = BranchKind.RETURN


Site = Union[
    ConditionalSite, LoopSite, UnconditionalSite, CallSite, IndirectSite, ReturnSite
]


@dataclass
class Block:
    """A basic block: a run of instructions ending in one break."""

    n_instructions: int
    site: Site
    #: byte address of the first instruction; assigned by the layout pass
    address: int = 0

    def __post_init__(self) -> None:
        if self.n_instructions < 1:
            raise ValueError("a block must contain at least one instruction")

    @property
    def size_bytes(self) -> int:
        """Code bytes occupied by the block."""
        return self.n_instructions * INSTRUCTION_BYTES

    @property
    def break_address(self) -> int:
        """Address of the block's final (break) instruction."""
        return self.address + (self.n_instructions - 1) * INSTRUCTION_BYTES


@dataclass
class Procedure:
    """A contiguous run of blocks, ending in a return block."""

    name: str
    blocks: List[Block] = field(default_factory=list)

    @property
    def entry(self) -> int:
        """Entry address (address of the first block)."""
        return self.blocks[0].address

    @property
    def n_instructions(self) -> int:
        """Static instruction count."""
        return sum(block.n_instructions for block in self.blocks)

    @property
    def size_bytes(self) -> int:
        """Static code size in bytes."""
        return self.n_instructions * INSTRUCTION_BYTES

    def check(self, n_procedures: int) -> None:
        """Validate structural invariants; raises ``ValueError``."""
        if not self.blocks:
            raise ValueError(f"procedure {self.name!r} has no blocks")
        last = len(self.blocks) - 1
        if not isinstance(self.blocks[last].site, ReturnSite):
            raise ValueError(f"procedure {self.name!r} does not end in a return")
        for index, block in enumerate(self.blocks):
            site = block.site
            if isinstance(site, ReturnSite):
                continue
            if index == last:
                raise ValueError(
                    f"procedure {self.name!r}: non-return site in the final block"
                )
            if isinstance(site, (ConditionalSite, UnconditionalSite)):
                if not 0 <= site.target_block < len(self.blocks):
                    raise ValueError(
                        f"procedure {self.name!r} block {index}: target out of range"
                    )
            elif isinstance(site, LoopSite):
                if not 0 <= site.head_block <= index:
                    raise ValueError(
                        f"procedure {self.name!r} block {index}: loop head must be "
                        "at or before the loop branch"
                    )
            elif isinstance(site, IndirectSite):
                for target in site.target_blocks:
                    if not 0 <= target < len(self.blocks):
                        raise ValueError(
                            f"procedure {self.name!r} block {index}: indirect "
                            "target out of range"
                        )
            elif isinstance(site, CallSite):
                if not 0 <= site.callee < n_procedures:
                    raise ValueError(
                        f"procedure {self.name!r} block {index}: callee out of range"
                    )


@dataclass
class SyntheticProgram:
    """A complete synthetic program: procedures with assigned addresses."""

    name: str
    procedures: List[Procedure]
    main: int = 0
    base_address: int = 0x0001_0000

    @property
    def code_bytes(self) -> int:
        """Total static code size."""
        return sum(procedure.size_bytes for procedure in self.procedures)

    @property
    def n_static_instructions(self) -> int:
        """Total static instruction count."""
        return sum(procedure.n_instructions for procedure in self.procedures)

    def static_site_counts(self) -> Dict[BranchKind, int]:
        """Static break sites by branch kind (Table 1's "static")."""
        counts: Dict[BranchKind, int] = {}
        for procedure in self.procedures:
            for block in procedure.blocks:
                kind = block.site.kind
                counts[kind] = counts.get(kind, 0) + 1
        return counts

    def check(self) -> None:
        """Validate the whole program: per-procedure invariants, blocks
        contiguous within each procedure, and no overlap between
        procedures (layout may place procedures in any order)."""
        n = len(self.procedures)
        if not 0 <= self.main < n:
            raise ValueError("main procedure index out of range")
        extents = []
        for procedure in self.procedures:
            procedure.check(n)
            expected = procedure.blocks[0].address
            for block in procedure.blocks:
                if block.address != expected:
                    raise ValueError(
                        f"procedure {procedure.name!r}: block at "
                        f"{block.address:#x}, expected {expected:#x}"
                    )
                expected += block.size_bytes
            extents.append((procedure.blocks[0].address, expected, procedure.name))
        extents.sort()
        for (start_a, end_a, name_a), (start_b, _, name_b) in zip(extents, extents[1:]):
            if start_b < end_a:
                raise ValueError(
                    f"procedures {name_a!r} and {name_b!r} overlap at {start_b:#x}"
                )

"""CFG interpreter: executes a synthetic program into a trace.

The interpreter walks the program's basic blocks with a seeded RNG,
maintaining a call stack, and emits one block-compressed trace event
per executed block.  All control transfers are *consistent* — the next
event always starts where the previous one's break actually went —
which :meth:`repro.workloads.trace.Trace.validate` can verify.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.isa.branches import BranchKind
from repro.workloads.program import (
    CallSite,
    ConditionalSite,
    IndirectSite,
    LoopSite,
    ReturnSite,
    SyntheticProgram,
    UnconditionalSite,
)
from repro.workloads.trace import Trace


class _IndirectChooser:
    """Per-site cumulative weights for indirect-target selection."""

    __slots__ = ("cumulative", "targets")

    def __init__(self, site: IndirectSite) -> None:
        total = 0.0
        self.cumulative: List[float] = []
        for weight in site.weights:
            total += weight
            self.cumulative.append(total)
        self.targets = list(site.target_blocks)

    def choose(self, rng: random.Random) -> int:
        u = rng.random() * self.cumulative[-1]
        for position, threshold in enumerate(self.cumulative):
            if u <= threshold:
                return self.targets[position]
        return self.targets[-1]


def execute(
    program: SyntheticProgram,
    instructions: int,
    seed: int = 0,
    name: Optional[str] = None,
    profile_indirect_repeat: Optional[float] = None,
) -> Trace:
    """Execute *program* for about *instructions* dynamic instructions.

    The budget is checked at block granularity, so the trace may
    overshoot by at most one block.  Execution is deterministic given
    (*program*, *seed*).  *profile_indirect_repeat* sets the sticky
    indirect-target probability (defaults to 0.60).
    """
    if instructions < 1:
        raise ValueError("instruction budget must be positive")
    rng = random.Random(seed)
    trace = Trace(name if name is not None else program.name)
    procedures = program.procedures
    # resume points: (procedure index, block index)
    stack: List[Tuple[int, int]] = []
    choosers: dict = {}

    proc_index = program.main
    block_index = 0
    emitted = 0
    loop_counters: dict = {}
    last_indirect: dict = {}
    last_outcome: dict = {}
    ghist = 0  # global history of conditional outcomes (1 = taken)
    indirect_repeat = (
        profile_indirect_repeat if profile_indirect_repeat is not None else 0.60
    )

    while emitted < instructions:
        procedure = procedures[proc_index]
        block = procedure.blocks[block_index]
        site = block.site
        blocks = procedure.blocks

        if isinstance(site, ConditionalSite):
            kind = BranchKind.CONDITIONAL
            target = blocks[site.target_block].address
            if site.correlation_bits:
                # outcome is a salted hash of the recent global
                # conditional history: deterministic per history value,
                # Bernoulli(taken_prob) across history values
                window = ghist & ((1 << site.correlation_bits) - 1)
                h = ((window ^ site.salt) * 0x9E3779B1) & 0xFFFFFFFF
                taken = ((h >> 16) & 0xFFFF) < site.taken_prob * 65536.0
            elif site.sticky:
                site_key = id(site)
                last = last_outcome.get(site_key)
                if last is not None and rng.random() < site.sticky:
                    taken = last
                else:
                    taken = rng.random() < site.taken_prob
                last_outcome[site_key] = taken
            else:
                taken = rng.random() < site.taken_prob
            next_state = (
                (proc_index, site.target_block)
                if taken
                else (proc_index, block_index + 1)
            )
        elif isinstance(site, LoopSite):
            kind = BranchKind.CONDITIONAL
            target = blocks[site.head_block].address
            if site.fixed_trips is not None:
                # counted loop: the branch executes fixed_trips times
                # per loop entry (taken on all but the last)
                site_key = id(site)
                remaining = loop_counters.get(site_key)
                if remaining is None:
                    remaining = site.fixed_trips
                remaining -= 1
                taken = remaining > 0
                if taken:
                    loop_counters[site_key] = remaining
                else:
                    loop_counters.pop(site_key, None)
            else:
                taken = rng.random() < site.continue_prob
            next_state = (
                (proc_index, site.head_block)
                if taken
                else (proc_index, block_index + 1)
            )
        elif isinstance(site, CallSite):
            kind = BranchKind.CALL
            target = procedures[site.callee].entry
            taken = True
            stack.append((proc_index, block_index + 1))
            next_state = (site.callee, 0)
        elif isinstance(site, ReturnSite):
            kind = BranchKind.RETURN
            taken = True
            if not stack:
                # main returned: emit the final event and stop
                trace.append(
                    start=block.address,
                    count=block.n_instructions,
                    kind=kind,
                    taken=True,
                    target=0,
                )
                break
            resume_proc, resume_block = stack.pop()
            target = procedures[resume_proc].blocks[resume_block].address
            next_state = (resume_proc, resume_block)
        elif isinstance(site, UnconditionalSite):
            kind = BranchKind.UNCONDITIONAL
            target = blocks[site.target_block].address
            taken = True
            next_state = (proc_index, site.target_block)
        elif isinstance(site, IndirectSite):
            kind = BranchKind.INDIRECT
            chooser_key = id(site)
            # sticky targets: real indirect jumps (virtual calls,
            # interpreter dispatch) repeat their previous destination
            # far more often than an i.i.d. draw would
            last = last_indirect.get(chooser_key)
            if last is not None and rng.random() < indirect_repeat:
                chosen = last
            else:
                chooser = choosers.get(chooser_key)
                if chooser is None:
                    chooser = _IndirectChooser(site)
                    choosers[chooser_key] = chooser
                chosen = chooser.choose(rng)
                last_indirect[chooser_key] = chosen
            target = blocks[chosen].address
            taken = True
            next_state = (proc_index, chosen)
        else:  # pragma: no cover - the site union is closed
            raise TypeError(f"unknown site type {type(site).__name__}")

        if kind == BranchKind.CONDITIONAL:
            ghist = ((ghist << 1) | int(taken)) & 0xFFFF

        trace.append(
            start=block.address,
            count=block.n_instructions,
            kind=kind,
            taken=taken,
            target=target,
        )
        emitted += block.n_instructions
        proc_index, block_index = next_state

    return trace

"""Calibration validation: measured trace attributes vs the paper.

Quantifies how close each synthetic workload sits to its Table 1 row.
Used by ``repro.harness calibration`` and recorded in EXPERIMENTS.md so
the fidelity of the ATOM-trace substitution is auditable rather than
asserted.

Two kinds of agreement are tracked:

* **value agreement** — per-column relative/absolute error of the
  scalar attributes (break density, taken rate, type mix);
* **rank agreement** — whether the six programs keep the paper's
  ordering on each attribute (the comparisons in §7 depend on program
  *character*, not exact values): Spearman-style rank correlation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.workloads.profiles import PaperAttributes
from repro.workloads.stats import TraceAttributes


@dataclass(frozen=True)
class FieldComparison:
    """One attribute compared against the paper's value."""

    field: str
    measured: float
    paper: float

    @property
    def absolute_error(self) -> float:
        return self.measured - self.paper

    @property
    def relative_error(self) -> float:
        """Relative error; falls back to absolute when paper ~ 0."""
        if abs(self.paper) < 1e-9:
            return self.absolute_error
        return self.absolute_error / self.paper


#: scalar columns compared per program (name, measured attr, paper attr)
_SCALAR_FIELDS: Tuple[Tuple[str, str, str], ...] = (
    ("%breaks", "pct_breaks", "pct_breaks"),
    ("%taken", "pct_taken", "pct_taken"),
    ("%CBr", "pct_cbr", "pct_cbr"),
    ("%IJ", "pct_ij", "pct_ij"),
    ("%Br", "pct_br", "pct_br"),
    ("%Call", "pct_call", "pct_call"),
    ("%Ret", "pct_ret", "pct_ret"),
)

#: rank-compared columns (dynamic concentration scales with trace
#: length, so only the cross-program ordering is meaningful)
_RANK_FIELDS: Tuple[str, ...] = ("q50", "q90", "q99", "q100")


def compare_program(
    measured: TraceAttributes, paper: PaperAttributes
) -> List[FieldComparison]:
    """Compare one program's measured attributes with its Table 1 row."""
    comparisons = []
    for label, measured_attr, paper_attr in _SCALAR_FIELDS:
        comparisons.append(
            FieldComparison(
                field=label,
                measured=getattr(measured, measured_attr),
                paper=getattr(paper, paper_attr),
            )
        )
    return comparisons


def _ranks(values: Sequence[float]) -> List[int]:
    order = sorted(range(len(values)), key=lambda index: values[index])
    ranks = [0] * len(values)
    for rank, index in enumerate(order):
        ranks[index] = rank
    return ranks


def rank_correlation(a: Sequence[float], b: Sequence[float]) -> float:
    """Spearman rank correlation of two equal-length sequences."""
    if len(a) != len(b) or len(a) < 2:
        raise ValueError("need two equal-length sequences of at least 2")
    ranks_a = _ranks(a)
    ranks_b = _ranks(b)
    n = len(a)
    d_squared = sum((x - y) ** 2 for x, y in zip(ranks_a, ranks_b))
    return 1.0 - 6.0 * d_squared / (n * (n * n - 1))


@dataclass(frozen=True)
class CalibrationSummary:
    """Aggregate calibration quality over all programs."""

    per_program: Dict[str, List[FieldComparison]]
    rank_correlations: Dict[str, float]

    @property
    def mean_absolute_scalar_error(self) -> float:
        """Mean |absolute error| over all scalar comparisons (all the
        scalar columns are percentages, so this is in points)."""
        errors = [
            abs(comparison.absolute_error)
            for comparisons in self.per_program.values()
            for comparison in comparisons
        ]
        return sum(errors) / len(errors) if errors else 0.0

    @property
    def worst_field(self) -> Tuple[str, str, float]:
        """(program, field, absolute error) of the worst comparison."""
        worst = ("", "", 0.0)
        for program, comparisons in self.per_program.items():
            for comparison in comparisons:
                if abs(comparison.absolute_error) > abs(worst[2]):
                    worst = (program, comparison.field, comparison.absolute_error)
        return worst


def summarise(
    measured: Dict[str, TraceAttributes],
    papers: Dict[str, PaperAttributes],
) -> CalibrationSummary:
    """Build the full calibration summary for a set of programs."""
    per_program = {
        name: compare_program(measured[name], papers[name]) for name in measured
    }
    names = list(measured)
    correlations: Dict[str, float] = {}
    if len(names) >= 2:
        for field in _RANK_FIELDS:
            correlations[field] = rank_correlation(
                [getattr(measured[name], field) for name in names],
                [getattr(papers[name], field) for name in names],
            )
        for label, measured_attr, paper_attr in _SCALAR_FIELDS:
            correlations[label] = rank_correlation(
                [getattr(measured[name], measured_attr) for name in names],
                [getattr(papers[name], paper_attr) for name in names],
            )
    return CalibrationSummary(
        per_program=per_program, rank_correlations=correlations
    )

"""Synthetic program synthesis.

Builds a :class:`~repro.workloads.program.SyntheticProgram` from a
:class:`~repro.workloads.profiles.WorkloadProfile`.  The construction
is fully deterministic given (profile, seed).

Shape of the generated code:

* procedure 0 is ``main``: a long loop over call sites whose callees
  are drawn from a Zipf popularity distribution over the other
  procedures — hot procedures appear at many call sites;
* every other procedure is a forward-flowing CFG of basic blocks;
  each block ends in one site (conditional, loop-back conditional,
  unconditional jump, call, indirect jump) and the last block returns;
* loops branch backward over a short run of call-free blocks, so loop
  iteration inflates only conditional-branch counts;
* all forward targets point strictly forward and loop-back branches
  terminate probabilistically, so execution always reaches the return.

Layout strategies (the §7 program-restructuring knob):

* ``natural`` — procedures laid out in popularity order (hot first),
  approximating what profile-guided procedure placement achieves;
* ``random`` — procedures shuffled, approximating link-order layout
  with poor locality.
"""

from __future__ import annotations

import bisect
import itertools
import math
import random
from typing import List, Optional, Sequence

from repro.workloads.profiles import TakenBiasClass, WorkloadProfile
from repro.workloads.program import (
    Block,
    CallSite,
    ConditionalSite,
    IndirectSite,
    LoopSite,
    Procedure,
    ReturnSite,
    Site,
    SyntheticProgram,
    UnconditionalSite,
)

_LAYOUTS = ("natural", "random")

#: maximum blocks a loop may span (keeps loop bodies call-free and short)
_MAX_LOOP_SPAN = 3

#: cap on a loop's continue probability (mean <= ~1000 iterations)
_MAX_CONTINUE_PROB = 0.999


def zipf_weights(n: int, alpha: float) -> List[float]:
    """Zipf popularity weights ``1/(k+1)**alpha`` for ``k in range(n)``,
    normalised to sum to 1."""
    if n < 1:
        raise ValueError("need at least one item")
    raw = [1.0 / (k + 1) ** alpha for k in range(n)]
    total = sum(raw)
    return [w / total for w in raw]


class _ZipfSampler:
    """Samples indices by Zipf weight, optionally restricted to a
    suffix of the index range (used for forward-only call graphs)."""

    def __init__(self, n: int, alpha: float, rng: random.Random, base: int = 0) -> None:
        self._weights = zipf_weights(n, alpha)
        self._cumulative = list(itertools.accumulate(self._weights))
        self._rng = rng
        self._n = n
        self._base = base

    def sample(self) -> int:
        """Sample from the full range (returns ``base + offset``)."""
        u = self._rng.random() * self._cumulative[-1]
        return self._base + bisect.bisect_left(self._cumulative, u)

    def sample_from(self, low: int) -> int:
        """Sample an index ``>= low`` with renormalised weights
        (*low* is an absolute index; returns an absolute index)."""
        offset = low - self._base
        if offset >= self._n:
            raise ValueError("empty suffix")
        floor = self._cumulative[offset - 1] if offset > 0 else 0.0
        u = floor + self._rng.random() * (self._cumulative[-1] - floor)
        index = bisect.bisect_left(self._cumulative, u)
        return self._base + min(index, self._n - 1)


class CallGraph:
    """Callee selection implementing the profile's call-graph shape.

    Procedures split into three bands: ``main`` (index 0), *drivers*
    (1 .. leaf_start-1, full-size bodies) and *leaves* (leaf_start ..
    n-1, small utility bodies).  Calls always target a strictly higher
    index (the graph is a DAG, so execution cannot recurse):

    * ``main`` calls drivers with Zipf popularity;
    * a driver calls a Zipf-hot leaf with probability
      ``leaf_call_bias``, otherwise a uniformly-chosen deeper driver;
    * a leaf only ever calls deeper leaves.

    Leaves being small keeps the dynamic call tree subcritical — a
    single top-level call terminates instead of swallowing the whole
    trace budget — while hot leaves concentrate dynamic branch
    executions the way real utility routines do.
    """

    def __init__(self, profile: WorkloadProfile, rng: random.Random) -> None:
        n = profile.n_procedures
        self.n = n
        self.leaf_start = max(2, min(n - 1, int(round(n * (1.0 - profile.leaf_fraction)))))
        self.leaf_call_bias = profile.leaf_call_bias
        self._rng = rng
        self._driver_sampler = _ZipfSampler(
            max(1, self.leaf_start - 1), profile.zipf_alpha, rng, base=1
        )
        self._leaf_sampler = _ZipfSampler(
            max(1, n - self.leaf_start), profile.zipf_alpha, rng, base=self.leaf_start
        )

    def is_leaf(self, proc_index: int) -> bool:
        """Whether *proc_index* falls in the leaf band."""
        return proc_index >= self.leaf_start

    def main_callee(self) -> int:
        """Callee for one of ``main``'s top-level call sites."""
        return self._driver_sampler.sample()

    def interior_callee(self, proc_index: int) -> Optional[int]:
        """Callee for a call site inside *proc_index*, or ``None`` when
        no deeper procedure exists (the site degrades to a jump)."""
        if proc_index >= self.n - 1:
            return None
        if self.is_leaf(proc_index):
            return self._leaf_sampler.sample_from(proc_index + 1)
        if (
            self._rng.random() < self.leaf_call_bias
            or proc_index + 1 >= self.leaf_start
        ):
            return self._leaf_sampler.sample()
        return self._rng.randint(proc_index + 1, self.leaf_start - 1)


def _draw_block_length(rng: random.Random, mean: float) -> int:
    """Block length: 1 + (approximately) exponential filler."""
    if mean <= 1.0:
        return 1
    return 1 + int(rng.expovariate(1.0 / (mean - 1.0)) + 0.5)


def _draw_bias_class(
    rng: random.Random, classes: Sequence[TakenBiasClass]
) -> TakenBiasClass:
    """Pick one mixture component by weight."""
    total = sum(c.weight for c in classes)
    u = rng.random() * total
    acc = 0.0
    for cls in classes:
        acc += cls.weight
        if u <= acc:
            return cls
    return classes[-1]


def _make_conditional(
    target_block: int, rng: random.Random, profile: WorkloadProfile
) -> ConditionalSite:
    """Build a conditional site from the profile's bias mixture."""
    cls = _draw_bias_class(rng, profile.taken_bias_classes)
    taken_prob = rng.uniform(cls.low, cls.high)
    if cls.correlated:
        return ConditionalSite(
            target_block=target_block,
            taken_prob=taken_prob,
            correlation_bits=rng.randint(2, 4),
            salt=rng.getrandbits(32),
        )
    return ConditionalSite(
        target_block=target_block, taken_prob=taken_prob, sticky=cls.sticky
    )


def _draw_taken_prob(
    rng: random.Random, classes: Sequence[TakenBiasClass]
) -> float:
    """Draw a per-site taken probability from the profile's mixture."""
    cls = _draw_bias_class(rng, classes)
    return rng.uniform(cls.low, cls.high)


def _draw_trip_mean(rng: random.Random, profile: WorkloadProfile) -> float:
    """Mean trip count of a loop, lognormal, clamped to [1, 64]."""
    mean_iterations = rng.lognormvariate(
        profile.loop_iterations_log_mean, profile.loop_iterations_log_sigma
    )
    return min(max(1.0, mean_iterations), 64.0)


def _make_loop_site(
    head: int, rng: random.Random, profile: WorkloadProfile
) -> LoopSite:
    """Build a loop-back branch: counted (fixed trips) with probability
    ``loop_fixed_fraction``, otherwise geometric (data-dependent)."""
    mean = _draw_trip_mean(rng, profile)
    if rng.random() < profile.loop_fixed_fraction:
        return LoopSite(
            head_block=head,
            continue_prob=0.0,
            fixed_trips=max(1, int(round(mean))),
        )
    return LoopSite(
        head_block=head,
        continue_prob=min(mean / (mean + 1.0), _MAX_CONTINUE_PROB),
    )


def _emit_loop(
    blocks: List[Block],
    n_blocks: int,
    rng: random.Random,
    profile: WorkloadProfile,
) -> None:
    """Append a complete loop: 1..``_MAX_LOOP_SPAN``-1 conditional body
    blocks followed by the backward loop branch.

    Loop bodies are built from plain conditional blocks only: spanning
    calls would turn iteration into a call storm, and nesting loops
    would create multiplicative nests that swallow the whole trace
    budget.  The body conditionals are loop-carried ifs — re-executed
    every iteration — which is what keeps the taken rate of loop-heavy
    programs near the paper's 47–62 % instead of the ~95 % a bare
    loop-back branch would produce.
    """
    body = rng.randint(1, _MAX_LOOP_SPAN - 1)
    head = len(blocks)
    for _ in range(body):
        if len(blocks) >= n_blocks - 2:
            break
        index = len(blocks)
        blocks.append(
            Block(
                n_instructions=_draw_block_length(
                    rng, profile.mean_block_instructions
                ),
                site=_make_conditional(
                    _forward_target(rng, index, n_blocks), rng, profile
                ),
            )
        )
    blocks.append(
        Block(
            n_instructions=_draw_block_length(rng, profile.mean_block_instructions),
            site=_make_loop_site(head, rng, profile),
        )
    )


def _forward_target(
    rng: random.Random, current: int, n_blocks: int, reach: int = 5
) -> int:
    """A strictly-forward target block index."""
    return min(current + rng.randint(2, max(2, reach)), n_blocks - 1)


def _build_site(
    kind: str,
    blocks: List[Block],
    index: int,
    n_blocks: int,
    proc_index: int,
    rng: random.Random,
    profile: WorkloadProfile,
    call_graph: CallGraph,
) -> Site:
    """Construct one site of the requested kind; degrades gracefully
    (e.g. a call in the last procedure becomes an unconditional)."""
    if kind == "conditional":
        return _make_conditional(_forward_target(rng, index, n_blocks), rng, profile)
    if kind == "unconditional":
        return UnconditionalSite(target_block=_forward_target(rng, index, n_blocks))
    if kind == "call":
        callee = call_graph.interior_callee(proc_index)
        if callee is None:
            return UnconditionalSite(
                target_block=_forward_target(rng, index, n_blocks)
            )
        return CallSite(callee=callee)
    if kind == "indirect":
        low, high = profile.indirect_fanout
        fanout = rng.randint(low, high)
        candidates = list(range(index + 1, n_blocks))
        if not candidates:
            candidates = [n_blocks - 1]
        rng.shuffle(candidates)
        targets = sorted(candidates[: max(1, min(fanout, len(candidates)))])
        weights = zipf_weights(len(targets), profile.indirect_skew)
        rng.shuffle(weights)
        return IndirectSite(target_blocks=tuple(targets), weights=tuple(weights))
    raise ValueError(f"unknown site kind {kind!r}")


def _build_procedure(
    proc_index: int,
    name: str,
    rng: random.Random,
    profile: WorkloadProfile,
    call_graph: CallGraph,
) -> Procedure:
    """Build one non-main procedure (driver or leaf)."""
    if call_graph.is_leaf(proc_index):
        low, high = profile.leaf_blocks
    else:
        low, high = profile.blocks_per_procedure
    n_blocks = rng.randint(low, high)
    mix = profile.site_mix
    kinds = list(mix.keys())
    weights = list(mix.values())
    blocks: List[Block] = []
    while len(blocks) < n_blocks - 1:
        kind = rng.choices(kinds, weights=weights)[0]
        if kind == "loop":
            _emit_loop(blocks, n_blocks, rng, profile)
            continue
        index = len(blocks)
        site = _build_site(
            kind,
            blocks,
            index,
            n_blocks,
            proc_index,
            rng,
            profile,
            call_graph,
        )
        blocks.append(
            Block(
                n_instructions=_draw_block_length(
                    rng, profile.mean_block_instructions
                ),
                site=site,
            )
        )
    blocks.append(
        Block(
            n_instructions=_draw_block_length(rng, profile.mean_block_instructions),
            site=ReturnSite(),
        )
    )
    return Procedure(name=name, blocks=blocks)


def _build_main(
    rng: random.Random, profile: WorkloadProfile, call_graph: CallGraph
) -> Procedure:
    """Build ``main``: a perpetual loop over Zipf-popular call sites."""
    blocks: List[Block] = []
    run_low, run_high = profile.phase_run
    callee = call_graph.main_callee()
    remaining = rng.randint(run_low, run_high)
    for _ in range(profile.main_call_sites):
        if remaining == 0:
            callee = call_graph.main_callee()
            remaining = rng.randint(run_low, run_high)
        remaining -= 1
        blocks.append(
            Block(
                n_instructions=_draw_block_length(
                    rng, profile.mean_block_instructions
                ),
                site=CallSite(callee=callee),
            )
        )
    # the driver loop back to the first call site; probability 1.0 —
    # execution length is bounded by the interpreter's budget instead
    blocks.append(Block(n_instructions=1, site=LoopSite(head_block=0, continue_prob=1.0)))
    blocks.append(Block(n_instructions=1, site=ReturnSite()))
    return Procedure(name="main", blocks=blocks)


def _assign_layout(
    program: SyntheticProgram, layout: str, rng: random.Random
) -> None:
    """Assign block addresses, placing procedures in layout order.

    Only *addresses* change: procedure indices (used by call sites)
    stay stable.  ``natural`` places procedures in popularity order
    (main, then hottest first); ``random`` shuffles the placement.
    """
    order = list(range(len(program.procedures)))
    if layout == "random":
        tail = order[1:]
        rng.shuffle(tail)
        order[1:] = tail
    address = program.base_address
    for index in order:
        for block in program.procedures[index].blocks:
            block.address = address
            address += block.size_bytes


def build_program(
    profile: WorkloadProfile,
    layout: str = "natural",
    seed: Optional[int] = None,
) -> SyntheticProgram:
    """Build the synthetic program for *profile*.

    *layout* selects the procedure-placement strategy (``natural`` or
    ``random``); *seed* overrides the profile's default seed.
    """
    if layout not in _LAYOUTS:
        raise ValueError(f"unknown layout {layout!r}; expected one of {_LAYOUTS}")
    rng = random.Random(profile.seed if seed is None else seed)
    call_graph = CallGraph(profile, rng)
    procedures = [_build_main(rng, profile, call_graph)]
    for proc_index in range(1, profile.n_procedures):
        procedures.append(
            _build_procedure(
                proc_index, f"proc_{proc_index:04d}", rng, profile, call_graph
            )
        )
    program = SyntheticProgram(name=profile.name, procedures=procedures, main=0)
    _assign_layout(program, layout, rng)
    program.check()
    return program

"""External branch-trace formats (docs/TRACES.md).

This package is the documented trace-format layer of the ingestion
pipeline: one module per accepted external format, each exposing the
same two-function surface —

* ``read(path_or_stream, source=...)`` — a **streaming** parser
  yielding :class:`BranchRecord` values one at a time (never holding
  the whole file), raising :class:`TraceFormatError` with an exact
  record position on the first malformed byte/line;
* ``write(trace, path)`` — the inverse serialiser, used by the
  round-trip property tests and for exporting synthetic traces to
  external tools.

Registered formats (``FORMATS``):

* ``champsim`` — :mod:`repro.workloads.formats.champsim`, a binary
  ChampSim-style branch-record stream (fixed 18-byte little-endian
  records using ChampSim's branch-type codes, optional ``CSBT``
  header carrying the entry PC);
* ``cbp`` — :mod:`repro.workloads.formats.cbp`, a CBP-style text
  format (one ``PC KIND TARGET TAKEN`` record per line, ``#``
  comments, optional ``# entry`` directive).

Both readers are transparently gzip/xz-aware: :func:`open_stream`
sniffs the compression magic (not the file name), so ``trace.gz`` and
``trace.xz`` ingest exactly like their uncompressed forms.
:func:`detect_format` sniffs the *format* the same way — the ``CSBT``
magic or a plausible binary record stream means ``champsim``,
anything decodable as text means ``cbp``.

The grammar of each format, the normalisation rules that turn record
streams into the canonical block-compressed
:class:`~repro.workloads.trace.Trace`, and the error taxonomy are
specified normatively in docs/TRACES.md; the parsers here implement
that spec and the spec documents the parsers.
"""

from __future__ import annotations

import gzip
import io
import lzma
from dataclasses import dataclass
from typing import BinaryIO, Dict, Iterator, Union

from repro.isa.branches import BranchKind

#: magic prefixes of the supported stream compressors
_GZIP_MAGIC = b"\x1f\x8b"
_XZ_MAGIC = b"\xfd7zXZ\x00"


@dataclass(frozen=True)
class BranchRecord:
    """One normalised external branch record.

    The least common denominator of ChampSim- and CBP-style traces:
    the branch instruction's address, its class, the (taken-)target
    and the executed direction.  ``position`` is the human-readable
    location of the record in its source file (``line 12`` /
    ``record 3 (byte offset 70)``) — every validation error downstream
    of the parser quotes it verbatim.
    """

    pc: int
    kind: BranchKind
    target: int
    taken: bool
    position: str


class TraceFormatError(ValueError):
    """An external trace file failed parsing or normalisation.

    Carries the source name, the exact record position, and the
    reason; the rendered message is always the one-line
    ``<source>: <position>: <reason>`` form docs/TRACES.md specifies,
    which the CLI surfaces without a traceback.
    """

    def __init__(self, source: str, position: str, reason: str) -> None:
        super().__init__(f"{source}: {position}: {reason}")
        self.source = source
        self.position = position
        self.reason = reason


def open_stream(path_or_stream: Union[str, BinaryIO]) -> BinaryIO:
    """Open *path_or_stream* as a binary stream, decompressing if needed.

    Compression is detected from the stream's **magic bytes** (gzip
    ``1f 8b``, xz ``fd 37 7a 58 5a 00``), never from the file name,
    so renamed or extension-less files still ingest.  The returned
    stream reads the decompressed bytes lazily — multi-hundred-MB
    traces never materialise in memory.
    """
    if isinstance(path_or_stream, str):
        raw: BinaryIO = open(path_or_stream, "rb")
    else:
        raw = path_or_stream
    buffered = io.BufferedReader(raw)  # type: ignore[arg-type]
    magic = buffered.peek(len(_XZ_MAGIC))[: len(_XZ_MAGIC)]
    if magic.startswith(_GZIP_MAGIC):
        return io.BufferedReader(gzip.GzipFile(fileobj=buffered))  # type: ignore[arg-type]
    if magic.startswith(_XZ_MAGIC):
        return io.BufferedReader(lzma.LZMAFile(buffered))  # type: ignore[arg-type]
    return buffered


def detect_format(path: str) -> str:
    """Sniff which registered format *path* holds.

    Detection order (docs/TRACES.md): a ``CSBT`` magic (after
    transparent decompression) is ``champsim``; a decompressed size
    that is an exact multiple of the champsim record width whose first
    record carries a valid type/taken byte pair is ``champsim``;
    anything else is tried as ``cbp`` text.  Ambiguity is resolved
    toward text, which fails loudly (with a position) if it was wrong.
    """
    from repro.workloads.formats import champsim

    with open_stream(path) as stream:
        head = stream.read(champsim.RECORD_BYTES)
    if head.startswith(champsim.MAGIC):
        return "champsim"
    if len(head) == champsim.RECORD_BYTES and champsim.plausible_record(head):
        return "champsim"
    return "cbp"


def get_format(name: str):
    """Look up a registered format module by name."""
    try:
        return FORMATS[name]
    except KeyError:
        raise ValueError(
            f"unknown trace format {name!r}; available: {sorted(FORMATS)}"
        ) from None


def read_records(
    path: str, fmt: str = "auto", source: str = ""
) -> Iterator[BranchRecord]:
    """Stream the :class:`BranchRecord` values of *path*.

    ``fmt='auto'`` delegates to :func:`detect_format`; *source* (for
    error messages) defaults to the path itself.
    """
    if fmt == "auto":
        fmt = detect_format(path)
    module = get_format(fmt)
    return module.read(path, source=source or path)


from repro.workloads.formats import cbp, champsim  # noqa: E402

#: registry of format modules, keyed by the names the CLI accepts
FORMATS: Dict[str, object] = {
    "champsim": champsim,
    "cbp": cbp,
}

__all__ = [
    "BranchRecord",
    "TraceFormatError",
    "FORMATS",
    "open_stream",
    "detect_format",
    "get_format",
    "read_records",
]

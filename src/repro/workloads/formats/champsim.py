"""ChampSim-style binary branch-trace format.

A fixed-width little-endian binary stream of executed-branch records
modelled on ChampSim's branch-trace representation: each record is
``RECORD_BYTES`` (18) bytes, struct format ``<QBBQ`` —

    pc      u64   address of the branch instruction
    type    u8    ChampSim branch-type code (see ``TYPE_CODES``)
    taken   u8    0 or 1
    target  u64   branch target address

ChampSim branch-type codes map onto the canonical
:class:`~repro.isa.branches.BranchKind` as::

    1 BRANCH_DIRECT_JUMP   -> UNCONDITIONAL
    2 BRANCH_INDIRECT      -> INDIRECT
    3 BRANCH_CONDITIONAL   -> CONDITIONAL
    4 BRANCH_DIRECT_CALL   -> CALL
    5 BRANCH_INDIRECT_CALL -> CALL
    6 BRANCH_RETURN        -> RETURN

Code 0 (``NOT_BRANCH``) is rejected: this format carries only
block-terminating branch records, matching what the repro's engines
replay.  An optional 16-byte header — magic ``CSBT``, u32 version
(currently 1), u64 entry PC, all little-endian — pins the address the
traced program entered at; headerless files infer the entry as the
first record's PC.  Grammar and error taxonomy: docs/TRACES.md.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterator, Union

from repro.isa.branches import BranchKind
from repro.workloads.trace import Trace

#: header magic for traces that carry an explicit entry PC
MAGIC = b"CSBT"
#: header layout: magic, u32 version, u64 entry pc (little-endian)
HEADER_STRUCT = struct.Struct("<4sIQ")
HEADER_BYTES = HEADER_STRUCT.size
#: current (and only) header version
HEADER_VERSION = 1

#: record layout: pc u64, type u8, taken u8, target u64 (little-endian)
RECORD_STRUCT = struct.Struct("<QBBQ")
RECORD_BYTES = RECORD_STRUCT.size

#: ChampSim branch-type code -> canonical branch kind
TYPE_CODES = {
    1: BranchKind.UNCONDITIONAL,  # BRANCH_DIRECT_JUMP
    2: BranchKind.INDIRECT,  # BRANCH_INDIRECT
    3: BranchKind.CONDITIONAL,  # BRANCH_CONDITIONAL
    4: BranchKind.CALL,  # BRANCH_DIRECT_CALL
    5: BranchKind.CALL,  # BRANCH_INDIRECT_CALL
    6: BranchKind.RETURN,  # BRANCH_RETURN
}
#: canonical kind -> the code the writer emits (calls always direct)
_WRITE_CODES = {
    BranchKind.UNCONDITIONAL: 1,
    BranchKind.INDIRECT: 2,
    BranchKind.CONDITIONAL: 3,
    BranchKind.CALL: 4,
    BranchKind.RETURN: 6,
}


def plausible_record(chunk: bytes) -> bool:
    """Heuristic format sniff: could *chunk* be one valid record?

    Used by auto-detection for headerless files: the type byte must
    be a known ChampSim code and the taken byte 0/1.  Text files
    essentially never satisfy both at these offsets.
    """
    if len(chunk) != RECORD_BYTES:
        return False
    _, type_code, taken, _ = RECORD_STRUCT.unpack(chunk)
    return type_code in TYPE_CODES and taken in (0, 1)


def _error(source: str, position: str, reason: str):
    from repro.workloads.formats import TraceFormatError

    raise TraceFormatError(source, position, reason)


def read(
    path_or_stream: Union[str, BinaryIO], source: str = ""
) -> Iterator:
    """Stream ``BranchRecord`` values from a ChampSim-style binary trace.

    When the file opens with a ``CSBT`` header, the first yielded
    item is the sentinel tuple ``("entry", pc)``; every subsequent
    item is a :class:`~repro.workloads.formats.BranchRecord`.
    Truncated records, unknown type codes, and bad taken bytes raise
    ``TraceFormatError`` naming the 0-based record index and its byte
    offset in the (decompressed) stream.
    """
    from repro.workloads.formats import BranchRecord, open_stream

    if isinstance(path_or_stream, str):
        source = source or path_or_stream
    source = source or "<stream>"
    stream = open_stream(path_or_stream)
    try:
        offset = 0
        head = stream.read(len(MAGIC))
        if head == MAGIC:
            rest = stream.read(HEADER_BYTES - len(MAGIC))
            if len(rest) != HEADER_BYTES - len(MAGIC):
                _error(source, "header", "truncated CSBT header")
            _, version, entry = HEADER_STRUCT.unpack(MAGIC + rest)
            if version != HEADER_VERSION:
                _error(
                    source,
                    "header",
                    f"unsupported CSBT header version {version} "
                    f"(supported: {HEADER_VERSION})",
                )
            offset = HEADER_BYTES
            yield ("entry", entry)
            head = b""
        index = 0
        while True:
            chunk = head + stream.read(RECORD_BYTES - len(head))
            head = b""
            if not chunk:
                return
            if len(chunk) < RECORD_BYTES:
                _error(
                    source,
                    f"record {index} (byte offset {offset})",
                    f"truncated record: got {len(chunk)} of "
                    f"{RECORD_BYTES} bytes",
                )
            pc, type_code, taken_byte, target = RECORD_STRUCT.unpack(chunk)
            position = f"record {index} (byte offset {offset})"
            if type_code not in TYPE_CODES:
                if type_code == 0:
                    _error(
                        source,
                        position,
                        "type code 0 (NOT_BRANCH): this reader accepts "
                        "branch-record streams only",
                    )
                _error(
                    source,
                    position,
                    f"unknown ChampSim branch-type code {type_code}; "
                    f"expected one of {sorted(TYPE_CODES)}",
                )
            if taken_byte not in (0, 1):
                _error(
                    source, position, f"taken byte must be 0 or 1, got {taken_byte}"
                )
            yield BranchRecord(
                pc=pc,
                kind=TYPE_CODES[type_code],
                target=target,
                taken=bool(taken_byte),
                position=position,
            )
            index += 1
            offset += RECORD_BYTES
    finally:
        stream.close()


def write(trace: Trace, path: str) -> None:
    """Serialise *trace* to a ChampSim-style binary file at *path*.

    Always emits the ``CSBT`` header carrying the first block's start
    address so that ingestion reconstructs the exact block structure
    (headerless export would lose the length of the first block).
    """
    from repro.workloads.trace import INSTRUCTION_BYTES

    with open(path, "wb") as handle:
        entry = trace.starts[0] if trace.starts else 0
        handle.write(HEADER_STRUCT.pack(MAGIC, HEADER_VERSION, entry))
        for start, count, kind, taken, target in zip(
            trace.starts, trace.counts, trace.kinds, trace.takens, trace.targets
        ):
            pc = start + (count - 1) * INSTRUCTION_BYTES
            handle.write(
                RECORD_STRUCT.pack(
                    pc, _WRITE_CODES[BranchKind(kind)], int(taken), target
                )
            )

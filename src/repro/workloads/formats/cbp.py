"""CBP-style text branch-trace format.

A line-oriented UTF-8 text format modelled on the Championship Branch
Prediction (CBP) workload distributions: one executed-branch record
per line, whitespace-separated —

    PC KIND TARGET TAKEN

* ``PC`` / ``TARGET`` — non-negative integers, decimal or ``0x`` hex
  (parsed with base auto-detection), 4-byte aligned;
* ``KIND`` — one of ``CND`` (conditional), ``JMP`` (direct
  unconditional), ``CALL``, ``RET``, ``IND`` (indirect jump),
  case-insensitive;
* ``TAKEN`` — ``T``/``1`` (taken) or ``N``/``0`` (not taken).

Blank lines are skipped.  Lines starting with ``#`` are comments,
with one recognised directive: ``# entry 0xADDR`` before the first
record pins the address the traced program entered at — the start of
the first basic block.  Without it, ingestion infers the entry as the
first record's PC (a single-instruction first block).  The full
grammar and error taxonomy live in docs/TRACES.md.
"""

from __future__ import annotations

import io
from typing import BinaryIO, Iterator, Union

from repro.isa.branches import BranchKind
from repro.workloads.trace import Trace

#: mapping between the textual kind mnemonics and canonical kinds
KIND_NAMES = {
    "CND": BranchKind.CONDITIONAL,
    "JMP": BranchKind.UNCONDITIONAL,
    "CALL": BranchKind.CALL,
    "RET": BranchKind.RETURN,
    "IND": BranchKind.INDIRECT,
}
_KIND_MNEMONICS = {kind: name for name, kind in KIND_NAMES.items()}

#: directive pinning the traced program's entry address
ENTRY_DIRECTIVE = "# entry"


def _error(source: str, line_no: int, reason: str):
    from repro.workloads.formats import TraceFormatError

    raise TraceFormatError(source, f"line {line_no}", reason)


def _parse_int(text: str, source: str, line_no: int, field: str) -> int:
    try:
        value = int(text, 0)
    except ValueError:
        _error(source, line_no, f"{field} {text!r} is not an integer")
    if value < 0:
        _error(source, line_no, f"{field} {text!r} is negative")
    return value


def read(
    path_or_stream: Union[str, BinaryIO], source: str = ""
) -> Iterator:
    """Stream ``BranchRecord`` values from a CBP-style text trace.

    Yields an ``('entry', address)``-style sentinel first when the
    file carries an ``# entry`` directive — concretely, a
    :class:`~repro.workloads.formats.BranchRecord` is yielded per
    data line, and the entry address (or ``None``) is exposed via the
    generator's first yielded item being a tuple ``("entry", addr)``.
    Malformed lines raise ``TraceFormatError`` naming the 1-based
    line number.
    """
    from repro.workloads.formats import BranchRecord, open_stream

    if isinstance(path_or_stream, str):
        source = source or path_or_stream
    source = source or "<stream>"
    stream = open_stream(path_or_stream)
    text = io.TextIOWrapper(stream, encoding="utf-8", errors="strict")
    entry_seen = False
    records_seen = False
    try:
        for line_no, raw_line in enumerate(text, start=1):
            line = raw_line.strip()
            if not line:
                continue
            if line.startswith("#"):
                lowered = line.lower()
                if lowered.startswith(ENTRY_DIRECTIVE):
                    if records_seen:
                        _error(
                            source,
                            line_no,
                            "entry directive must precede the first record",
                        )
                    if entry_seen:
                        _error(source, line_no, "duplicate entry directive")
                    parts = line.split()
                    if len(parts) != 3:
                        _error(
                            source,
                            line_no,
                            "entry directive needs exactly one address",
                        )
                    entry = _parse_int(parts[2], source, line_no, "entry address")
                    entry_seen = True
                    yield ("entry", entry)
                continue
            fields = line.split()
            if len(fields) != 4:
                _error(
                    source,
                    line_no,
                    f"expected 4 fields (PC KIND TARGET TAKEN), got {len(fields)}",
                )
            pc = _parse_int(fields[0], source, line_no, "PC")
            kind_name = fields[1].upper()
            if kind_name not in KIND_NAMES:
                _error(
                    source,
                    line_no,
                    f"unknown branch kind {fields[1]!r}; "
                    f"expected one of {sorted(KIND_NAMES)}",
                )
            target = _parse_int(fields[2], source, line_no, "target")
            taken_name = fields[3].upper()
            if taken_name in ("T", "1"):
                taken = True
            elif taken_name in ("N", "0"):
                taken = False
            else:
                _error(
                    source,
                    line_no,
                    f"taken flag {fields[3]!r} must be one of T, N, 1, 0",
                )
            records_seen = True
            yield BranchRecord(
                pc=pc,
                kind=KIND_NAMES[kind_name],
                target=target,
                taken=taken,
                position=f"line {line_no}",
            )
    except UnicodeDecodeError as exc:
        _error(source, f"byte offset {exc.start}", "file is not valid UTF-8 text")
    finally:
        # the wrapper may already be closed when an abandoned
        # generator is finalised by the garbage collector
        try:
            text.detach()
        except ValueError:
            pass
        stream.close()


def write(trace: Trace, path: str) -> None:
    """Serialise *trace* to a CBP-style text file at *path*.

    Emits a version comment, an ``# entry`` directive pinning the
    first block's start (so ingestion reconstructs the exact block
    structure), and one record per block-terminating branch.  The
    synthetic interpreter never emits ``NOT_A_BRANCH`` events, so
    every block maps to exactly one line.
    """
    from repro.workloads.trace import INSTRUCTION_BYTES

    with open(path, "w", encoding="utf-8") as handle:
        handle.write("# repro-cbp v1\n")
        if trace.starts:
            handle.write(f"{ENTRY_DIRECTIVE} {hex(trace.starts[0])}\n")
        for start, count, kind, taken, target in zip(
            trace.starts, trace.counts, trace.kinds, trace.takens, trace.targets
        ):
            pc = start + (count - 1) * INSTRUCTION_BYTES
            mnemonic = _KIND_MNEMONICS[BranchKind(kind)]
            flag = "T" if taken else "N"
            handle.write(f"{pc:#x} {mnemonic} {target:#x} {flag}\n")

"""Trace utility CLI: generate, inspect and export synthetic traces.

Examples::

    python -m repro.workloads gcc                      # Table-1 row
    python -m repro.workloads gcc --instructions 2000000 --out gcc.npz
    python -m repro.workloads li --layout random --validate
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.workloads.corpus import generate_trace
from repro.workloads.generator import build_program
from repro.workloads.profiles import PROFILES, get_profile
from repro.workloads.stats import TraceAttributes, measure


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads",
        description="Generate and inspect the calibrated synthetic traces.",
    )
    parser.add_argument("program", choices=sorted(PROFILES))
    parser.add_argument(
        "--instructions",
        type=int,
        default=None,
        help="trace length (default: the profile's calibrated length)",
    )
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--layout",
        choices=("natural", "random"),
        default="natural",
        help="procedure placement strategy",
    )
    parser.add_argument(
        "--out", default=None, help="write the trace to this .npz file"
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="check the control-flow consistency invariants",
    )
    args = parser.parse_args(argv)

    profile = get_profile(args.program)
    trace = generate_trace(
        args.program,
        instructions=args.instructions,
        seed=args.seed,
        layout=args.layout,
    )
    if args.validate:
        trace.validate()
        print("trace is consistent")

    program = build_program(
        profile, layout=args.layout, seed=args.seed if args.seed is not None else None
    )
    print(
        f"{args.program}: {trace.n_events:,} events, "
        f"{trace.n_instructions:,} instructions, "
        f"{program.code_bytes / 1024:.0f} KB static code"
    )
    print()
    print(TraceAttributes.header())
    print(measure(trace, program).row())

    if args.out:
        trace.save(args.out)
        print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Trace attribute measurement — reproduces the columns of Table 1.

Given a trace (and optionally its program, for static site counts)
this module computes exactly what Table 1 of the paper reports:
instruction count, break density, the Q-50/90/99/100 dynamic
concentration quantiles of conditional branches, static conditional
site counts, the conditional taken rate, and the break-type mix.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Optional

from repro.isa.branches import BranchKind
from repro.workloads.program import SyntheticProgram
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class TraceAttributes:
    """One row of Table 1."""

    name: str
    instructions: int
    pct_breaks: float
    q50: int
    q90: int
    q99: int
    q100: int
    static_conditionals: Optional[int]
    pct_taken: float
    pct_cbr: float
    pct_ij: float
    pct_br: float
    pct_call: float
    pct_ret: float

    def row(self) -> str:
        """Format as a Table 1 row."""
        static = "-" if self.static_conditionals is None else str(self.static_conditionals)
        return (
            f"{self.name:<10} {self.instructions:>13,} {self.pct_breaks:>7.2f} "
            f"{self.q50:>6} {self.q90:>6} {self.q99:>6} {self.q100:>7} "
            f"{static:>7} {self.pct_taken:>7.2f} "
            f"{self.pct_cbr:>6.2f} {self.pct_ij:>5.2f} {self.pct_br:>5.2f} "
            f"{self.pct_call:>6.2f} {self.pct_ret:>6.2f}"
        )

    @staticmethod
    def header() -> str:
        """Column header matching :meth:`row`."""
        return (
            f"{'program':<10} {'#insns':>13} {'%brks':>7} "
            f"{'Q-50':>6} {'Q-90':>6} {'Q-99':>6} {'Q-100':>7} "
            f"{'static':>7} {'%taken':>7} "
            f"{'%CBr':>6} {'%IJ':>5} {'%Br':>5} {'%Call':>6} {'%Ret':>6}"
        )


def _quantile_sites(counts: Counter, fraction: float) -> int:
    """Number of most-frequent sites covering *fraction* of executions."""
    total = sum(counts.values())
    if total == 0:
        return 0
    threshold = total * fraction
    covered = 0
    for n_sites, (_, count) in enumerate(counts.most_common(), start=1):
        covered += count
        if covered >= threshold:
            return n_sites
    return len(counts)


@dataclass(frozen=True)
class TraceFootprint:
    """Static/dynamic footprint of a trace against a line size."""

    distinct_lines: int
    distinct_branch_sites: int
    code_bytes_touched: int

    def lines_for_cache_kb(self, line_bytes: int = 32) -> float:
        """Cache size (KB) needed to hold every touched line."""
        return self.distinct_lines * line_bytes / 1024.0


def footprint(trace: Trace, line_bytes: int = 32) -> TraceFootprint:
    """Measure the instruction footprint of *trace*.

    ``distinct_lines`` drives the I-cache miss behaviour (and hence
    the NLS displacement misfetches): a footprint much larger than the
    cache produces the gcc/cfront behaviour of §7, a small one the
    doduc/espresso behaviour.
    """
    mask = ~(line_bytes - 1)
    lines = set()
    sites = set()
    starts = trace.starts
    counts = trace.counts
    kinds = trace.kinds
    not_a_branch = int(BranchKind.NOT_A_BRANCH)
    for index in range(len(starts)):
        start = starts[index]
        end = start + (counts[index] - 1) * 4
        line = start & mask
        last = end & mask
        while True:
            lines.add(line)
            if line == last:
                break
            line += line_bytes
        if kinds[index] != not_a_branch:
            sites.add(end)
    return TraceFootprint(
        distinct_lines=len(lines),
        distinct_branch_sites=len(sites),
        code_bytes_touched=len(lines) * line_bytes,
    )


def measure(
    trace: Trace, program: Optional[SyntheticProgram] = None
) -> TraceAttributes:
    """Measure Table 1 attributes of *trace*.

    When *program* is given its static conditional-site count is
    reported too (the trace alone can only see executed sites).
    """
    kind_counts: Dict[int, int] = {int(kind): 0 for kind in BranchKind}
    conditional_executions: Counter = Counter()
    taken_conditionals = 0
    total_conditionals = 0

    kinds = trace.kinds
    takens = trace.takens
    starts = trace.starts
    counts = trace.counts
    conditional = int(BranchKind.CONDITIONAL)
    for index in range(len(kinds)):
        kind = kinds[index]
        kind_counts[kind] += 1
        if kind == conditional:
            pc = starts[index] + (counts[index] - 1) * 4
            conditional_executions[pc] += 1
            total_conditionals += 1
            if takens[index]:
                taken_conditionals += 1

    n_instructions = trace.n_instructions
    n_breaks = sum(
        count
        for kind, count in kind_counts.items()
        if kind != int(BranchKind.NOT_A_BRANCH)
    )

    def pct_of_breaks(kind: BranchKind) -> float:
        if n_breaks == 0:
            return 0.0
        return 100.0 * kind_counts[int(kind)] / n_breaks

    static_conditionals: Optional[int] = None
    if program is not None:
        static_conditionals = program.static_site_counts().get(
            BranchKind.CONDITIONAL, 0
        )

    return TraceAttributes(
        name=trace.name,
        instructions=n_instructions,
        pct_breaks=100.0 * n_breaks / n_instructions if n_instructions else 0.0,
        q50=_quantile_sites(conditional_executions, 0.50),
        q90=_quantile_sites(conditional_executions, 0.90),
        q99=_quantile_sites(conditional_executions, 0.99),
        q100=len(conditional_executions),
        static_conditionals=static_conditionals,
        pct_taken=(
            100.0 * taken_conditionals / total_conditionals
            if total_conditionals
            else 0.0
        ),
        pct_cbr=pct_of_breaks(BranchKind.CONDITIONAL),
        pct_ij=pct_of_breaks(BranchKind.INDIRECT),
        pct_br=pct_of_breaks(BranchKind.UNCONDITIONAL),
        pct_call=pct_of_breaks(BranchKind.CALL),
        pct_ret=pct_of_breaks(BranchKind.RETURN),
    )

"""Workload profiles calibrated to Table 1 of the paper.

One profile per traced program.  The structural knobs (procedure
count, block lengths, site mix, loop behaviour, popularity skew) shape
the synthetic program and its execution so that the *measured*
attributes of the generated trace — branch density, branch-type mix,
taken rate, dynamic-site concentration (Q-50/90/99/100), and
instruction-cache pressure — land near the paper's measured values.
``paper`` carries the original Table 1 row for side-by-side reporting
(see EXPERIMENTS.md for measured-vs-paper numbers).

Scale note: the paper traced 16 M – 1.36 G instructions; the default
trace lengths here are ~1 M instructions so a full sweep runs in
minutes of pure Python.  Static site counts are scaled toward the
paper's *executed*-site counts (the Q-100 column) rather than its raw
static counts, which preserves the capacity pressure on the studied
512–2048-entry predictors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class TakenBiasClass:
    """A mixture component for per-site taken probabilities: with
    probability *weight*, a conditional site's taken probability is
    drawn uniformly from [*low*, *high*].  When *correlated* is true
    the site's outcome is a history-hash (see
    :class:`repro.workloads.program.ConditionalSite`) instead of an
    independent coin flip."""

    weight: float
    low: float
    high: float
    correlated: bool = False
    #: outcome run-length stickiness for sites of this class
    sticky: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.low <= self.high <= 1.0:
            raise ValueError("bias class bounds must satisfy 0 <= low <= high <= 1")
        if self.weight < 0:
            raise ValueError("bias class weight must be non-negative")


@dataclass(frozen=True)
class PaperAttributes:
    """The Table 1 row for a traced program (reference values)."""

    instructions: int
    pct_breaks: float
    q50: int
    q90: int
    q99: int
    q100: int
    static_conditionals: int
    pct_taken: float
    pct_cbr: float
    pct_ij: float
    pct_br: float
    pct_call: float
    pct_ret: float


@dataclass(frozen=True)
class WorkloadProfile:
    """All knobs of one synthetic workload."""

    name: str
    description: str

    # --- static structure -------------------------------------------------
    n_procedures: int
    blocks_per_procedure: Tuple[int, int]
    mean_block_instructions: float
    main_call_sites: int
    zipf_alpha: float

    # --- site mix (relative weights of non-return sites in a body) --------
    frac_conditional: float
    frac_loop: float
    frac_unconditional: float
    frac_call: float
    frac_indirect: float

    # --- dynamic behaviour -------------------------------------------------
    taken_bias_classes: Tuple[TakenBiasClass, ...]
    loop_iterations_log_mean: float
    loop_iterations_log_sigma: float
    indirect_fanout: Tuple[int, int] = (2, 8)
    indirect_skew: float = 1.2
    #: probability an indirect jump repeats its previous target
    #: (virtual-call monomorphism / switch locality)
    indirect_repeat: float = 0.60
    #: fraction of loops that are counted (fixed trips) rather than
    #: geometric while-loops
    loop_fixed_fraction: float = 0.80

    # --- call-graph shape ------------------------------------------------
    #: fraction of procedures that are small leaf utilities (the last
    #: ``leaf_fraction`` of the index range)
    leaf_fraction: float = 0.30
    #: probability an interior call targets the leaf band (hot shared
    #: utilities) rather than a uniformly-chosen deeper procedure
    leaf_call_bias: float = 0.70
    #: block-count range of leaf procedures
    leaf_blocks: Tuple[int, int] = (3, 8)
    #: run length of consecutive main call sites sharing a callee —
    #: the workload's phase behaviour (temporal locality knob)
    phase_run: Tuple[int, int] = (4, 16)

    # --- scale ---------------------------------------------------------------
    default_instructions: int = 1_000_000
    seed: int = 1995

    # --- reference -----------------------------------------------------------
    paper: Optional[PaperAttributes] = None

    def __post_init__(self) -> None:
        if self.n_procedures < 2:
            raise ValueError("need at least two procedures (main + one callee)")
        low, high = self.blocks_per_procedure
        if not 3 <= low <= high:
            raise ValueError("blocks_per_procedure must satisfy 3 <= low <= high")
        if self.mean_block_instructions < 1.0:
            raise ValueError("mean block length must be >= 1 instruction")
        total = (
            self.frac_conditional
            + self.frac_loop
            + self.frac_unconditional
            + self.frac_call
            + self.frac_indirect
        )
        if total <= 0:
            raise ValueError("site mix weights must sum to a positive value")

    @property
    def site_mix(self) -> Dict[str, float]:
        """Normalised site-kind mixture."""
        weights = {
            "conditional": self.frac_conditional,
            "loop": self.frac_loop,
            "unconditional": self.frac_unconditional,
            "call": self.frac_call,
            "indirect": self.frac_indirect,
        }
        total = sum(weights.values())
        return {key: value / total for key, value in weights.items()}


def _bias(*classes) -> Tuple[TakenBiasClass, ...]:
    return tuple(TakenBiasClass(*cls) for cls in classes)


# ---------------------------------------------------------------------------
# The six paper programs.
#
# Calibration targets (Table 1):
#   program   %breaks  q50   q90    q99   q100   static  %taken  cbr/ij/br/call/ret
#   doduc        8.53    3   175    296   1447    7073    48.68  81.3/0.0/5.0/6.9/6.9
#   espresso    17.12   44   163    470   1737    4568    61.90  93.3/0.2/1.9/2.3/2.4
#   gcc         15.97  245  1612   3742   7640   16294    59.42  78.9/2.9/5.8/6.0/6.5
#   li          17.67   16    52    127    556    2428    47.30  63.9/2.2/7.7/12.9/13.2
#   cfront      13.66   69   833   2894   5644   17565    53.18  73.5/2.2/6.4/8.7/9.3
#   groff       16.38  107   408    976   2889    7434    54.17  66.1/4.8/7.8/8.8/12.5
# ---------------------------------------------------------------------------

DODUC = WorkloadProfile(
    name="doduc",
    description=(
        "FORTRAN nuclear-reactor simulation: few, extremely hot inner loops; "
        "low branch density; tiny hot code footprint"
    ),
    n_procedures=48,
    blocks_per_procedure=(30, 90),
    mean_block_instructions=11.7,
    main_call_sites=120,
    zipf_alpha=1.8,
    frac_conditional=0.35,
    frac_loop=0.28,
    frac_unconditional=0.13,
    frac_call=0.235,
    frac_indirect=0.005,
    taken_bias_classes=_bias((0.70, 0.002, 0.02), (0.17, 0.98, 0.998), (0.10, 0.30, 0.70, True), (0.03, 0.30, 0.70, False, 0.90)),
    loop_iterations_log_mean=2.2,
    loop_iterations_log_sigma=1.0,
    indirect_fanout=(2, 3),
    default_instructions=2_000_000,
    paper=PaperAttributes(
        1_149_864_756, 8.53, 3, 175, 296, 1447, 7073, 48.68, 81.31, 0.01, 4.97, 6.86, 6.86
    ),
)

ESPRESSO = WorkloadProfile(
    name="espresso",
    description=(
        "logic minimiser: branch-heavy bit-twiddling loops, very few calls, "
        "conditionals dominate the break mix"
    ),
    n_procedures=70,
    blocks_per_procedure=(30, 95),
    mean_block_instructions=4.8,
    main_call_sites=150,
    zipf_alpha=1.9,
    frac_conditional=0.58,
    frac_loop=0.30,
    frac_unconditional=0.06,
    frac_call=0.055,
    frac_indirect=0.005,
    taken_bias_classes=_bias((0.36, 0.002, 0.02), (0.46, 0.98, 0.998), (0.15, 0.35, 0.75, True), (0.03, 0.35, 0.75, False, 0.88)),
    loop_iterations_log_mean=1.3,
    loop_iterations_log_sigma=0.7,
    indirect_fanout=(2, 4),
    default_instructions=2_000_000,
    paper=PaperAttributes(
        513_008_174, 17.12, 44, 163, 470, 1737, 4568, 61.90, 93.25, 0.20, 1.88, 2.29, 2.39
    ),
)

GCC = WorkloadProfile(
    name="gcc",
    description=(
        "C compiler: huge flat code footprint, thousands of lukewarm branch "
        "sites, high I-cache miss rate, hard-to-predict branches"
    ),
    n_procedures=340,
    blocks_per_procedure=(35, 100),
    mean_block_instructions=6.3,
    main_call_sites=900,
    zipf_alpha=0.8,
    frac_conditional=0.60,
    frac_loop=0.14,
    frac_unconditional=0.075,
    frac_call=0.085,
    frac_indirect=0.04,
    taken_bias_classes=_bias((0.28, 0.002, 0.03), (0.44, 0.97, 0.998), (0.22, 0.30, 0.70, True), (0.06, 0.30, 0.70, False, 0.85)),
    loop_iterations_log_mean=0.7,
    loop_iterations_log_sigma=0.7,
    indirect_fanout=(3, 12),
    default_instructions=3_000_000,
    phase_run=(12, 32),
    paper=PaperAttributes(
        143_737_915, 15.97, 245, 1612, 3742, 7640, 16294, 59.42, 78.85, 2.86, 5.75, 6.04, 6.49
    ),
)

LI = WorkloadProfile(
    name="li",
    description=(
        "XLISP interpreter: call/return dominated (eval recursion shape), "
        "small hot core, low taken rate"
    ),
    n_procedures=110,
    blocks_per_procedure=(12, 40),
    mean_block_instructions=5.7,
    main_call_sites=220,
    zipf_alpha=1.4,
    frac_conditional=0.46,
    frac_loop=0.10,
    frac_unconditional=0.14,
    frac_call=0.25,
    frac_indirect=0.025,
    taken_bias_classes=_bias((0.53, 0.002, 0.02), (0.27, 0.97, 0.998), (0.16, 0.30, 0.70, True), (0.04, 0.30, 0.70, False, 0.88)),
    loop_iterations_log_mean=1.0,
    loop_iterations_log_sigma=0.5,
    indirect_fanout=(2, 6),
    default_instructions=2_000_000,
    paper=PaperAttributes(
        1_355_059_387, 17.67, 16, 52, 127, 556, 2428, 47.30, 63.94, 2.24, 7.74, 12.92, 13.16
    ),
)

CFRONT = WorkloadProfile(
    name="cfront",
    description=(
        "AT&T C++ front end: large footprint, many branch sites, moderate "
        "call density, virtual-dispatch indirect jumps"
    ),
    n_procedures=280,
    blocks_per_procedure=(30, 95),
    mean_block_instructions=7.3,
    main_call_sites=800,
    zipf_alpha=1.0,
    frac_conditional=0.57,
    frac_loop=0.11,
    frac_unconditional=0.09,
    frac_call=0.15,
    frac_indirect=0.04,
    taken_bias_classes=_bias((0.43, 0.002, 0.02), (0.36, 0.97, 0.998), (0.17, 0.30, 0.70, True), (0.04, 0.30, 0.70, False, 0.88)),
    loop_iterations_log_mean=0.7,
    loop_iterations_log_sigma=0.7,
    indirect_fanout=(2, 10),
    default_instructions=3_000_000,
    phase_run=(12, 32),
    paper=PaperAttributes(
        16_529_540, 13.66, 69, 833, 2894, 5644, 17565, 53.18, 73.45, 2.17, 6.40, 8.72, 9.26
    ),
)

GROFF = WorkloadProfile(
    name="groff",
    description=(
        "C++ ditroff formatter: call- and return-rich, frequent indirect "
        "jumps (virtual calls), mid-size footprint"
    ),
    n_procedures=190,
    blocks_per_procedure=(20, 75),
    mean_block_instructions=6.1,
    main_call_sites=450,
    zipf_alpha=1.2,
    frac_conditional=0.53,
    frac_loop=0.11,
    frac_unconditional=0.10,
    frac_call=0.13,
    frac_indirect=0.06,
    taken_bias_classes=_bias((0.44, 0.002, 0.03), (0.35, 0.97, 0.998), (0.17, 0.30, 0.70, True), (0.04, 0.30, 0.70, False, 0.88)),
    loop_iterations_log_mean=0.9,
    loop_iterations_log_sigma=0.7,
    indirect_fanout=(3, 10),
    default_instructions=2_500_000,
    phase_run=(10, 24),
    paper=PaperAttributes(
        56_840_596, 16.38, 107, 408, 976, 2889, 7434, 54.17, 66.12, 4.80, 7.80, 8.77, 12.51
    ),
)

# ---------------------------------------------------------------------------
# Modern-server profiles (docs/WORKLOADS.md, docs/TRACES.md).
#
# These are NOT paper programs (``paper=None``): they model the
# multi-MB instruction footprints and flat site-popularity skew of
# today's server binaries ("Micro BTB"; "Fetch-Directed Instruction
# Prefetching Revisited" — PAPERS.md), regimes the 1995 corpus never
# reaches.  Calibration targets, checked by tests/ingest_smoke.py via
# the attribution layer: code footprint > 2 MB, flat concentration
# (Q-90 in the thousands of sites), and fetch-penalty mass majority on
# capacity causes (btb-miss + nls-displaced) rather than direction
# prediction.
# ---------------------------------------------------------------------------

SERVER_FRONTEND = WorkloadProfile(
    name="server-frontend",
    description=(
        "modern server front end (RPC handling, protocol translation): "
        "multi-MB flat code footprint, thousands of lukewarm branch "
        "sites, BTB/NLS capacity pressure dominates the fetch penalty"
    ),
    n_procedures=2600,
    blocks_per_procedure=(35, 100),
    mean_block_instructions=8.0,
    main_call_sites=6000,
    zipf_alpha=0.35,
    frac_conditional=0.58,
    frac_loop=0.10,
    frac_unconditional=0.08,
    frac_call=0.19,
    frac_indirect=0.05,
    taken_bias_classes=_bias(
        (0.46, 0.002, 0.02), (0.42, 0.98, 0.998), (0.08, 0.30, 0.70, True), (0.04, 0.30, 0.70, False, 0.85)
    ),
    loop_iterations_log_mean=0.6,
    loop_iterations_log_sigma=0.6,
    indirect_fanout=(3, 14),
    indirect_repeat=0.55,
    leaf_fraction=0.25,
    leaf_call_bias=0.90,
    phase_run=(1, 3),
    default_instructions=6_000_000,
    paper=None,
)

SERVER_LEAF = WorkloadProfile(
    name="server-leaf",
    description=(
        "modern server leaf service (storage/cache node): multi-MB "
        "footprint with deep call/return chains and virtual dispatch; "
        "call-heavy break mix stresses BTB capacity and NLS "
        "displacement at once"
    ),
    n_procedures=2400,
    blocks_per_procedure=(25, 80),
    mean_block_instructions=7.0,
    main_call_sites=5000,
    zipf_alpha=0.45,
    frac_conditional=0.44,
    frac_loop=0.08,
    frac_unconditional=0.09,
    frac_call=0.30,
    frac_indirect=0.09,
    taken_bias_classes=_bias(
        (0.44, 0.002, 0.02), (0.40, 0.98, 0.998), (0.11, 0.30, 0.70, True), (0.05, 0.30, 0.70, False, 0.85)
    ),
    loop_iterations_log_mean=0.6,
    loop_iterations_log_sigma=0.6,
    indirect_fanout=(4, 16),
    indirect_repeat=0.50,
    leaf_fraction=0.35,
    leaf_call_bias=0.90,
    leaf_blocks=(3, 10),
    phase_run=(2, 6),
    default_instructions=6_000_000,
    paper=None,
)

#: registry of all calibrated profiles, keyed by program name
PROFILES: Dict[str, WorkloadProfile] = {
    profile.name: profile
    for profile in (DODUC, ESPRESSO, GCC, LI, CFRONT, GROFF, SERVER_FRONTEND, SERVER_LEAF)
}


def get_profile(name: str) -> WorkloadProfile:
    """Look up a calibrated profile by program name."""
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; available: {sorted(PROFILES)}"
        ) from None


def paper_programs() -> Tuple[str, ...]:
    """The six program names, in the paper's Table 1 order."""
    return ("doduc", "espresso", "gcc", "li", "cfront", "groff")


def server_programs() -> Tuple[str, ...]:
    """The modern-server profile names (not part of Table 1)."""
    return ("server-frontend", "server-leaf")

"""repro — reproduction of Calder & Grunwald, "Next Cache Line and Set
Prediction" (ISCA 1995).

The package implements the paper's NLS fetch predictors plus every
substrate the evaluation depends on: a synthetic-workload generator
standing in for the ATOM traces, an instruction-cache simulator,
direction predictors (gshare PHT, return stack), branch target
buffers, the trace-driven fetch engine with the paper's penalty
accounting, and the RBE-area / access-time cost models.

Quick start::

    from repro import ArchitectureConfig, simulate

    nls = ArchitectureConfig(frontend="nls-table", entries=1024,
                             cache_kb=16, cache_assoc=1)
    report = simulate(nls, "gcc", instructions=200_000)
    print(report.summary())

See ``examples/`` for runnable scenarios and ``repro.harness`` for the
per-figure experiment drivers (``python -m repro.harness --help``).
"""

from repro.cache import CacheGeometry, InstructionCache
from repro.analysis import (
    btb_capacity_curve,
    nls_capacity_curve,
    penalty_breakdown,
    penalty_sensitivity,
)
from repro.core import (
    JohnsonSuccessorIndex,
    NLSCache,
    NLSEntryType,
    NLSPrediction,
    NLSTable,
    SteelySagerTable,
)
from repro.fetch.multiissue import FetchBandwidthModel, MultiIssueReport
from repro.cost import AccessTimeModel, RBEModel
from repro.fetch import (
    BTBFrontEnd,
    FallThroughFrontEnd,
    FetchEngine,
    JohnsonFrontEnd,
    NLSCacheFrontEnd,
    NLSTableFrontEnd,
    OracleFrontEnd,
)
from repro.harness.config import ArchitectureConfig
from repro.harness.runner import simulate, sweep
from repro.isa import BranchKind
from repro.metrics import PenaltyModel, SimulationReport, average_reports
from repro.predictors import (
    BranchTargetBuffer,
    GSharePredictor,
    ReturnAddressStack,
)
from repro.workloads import (
    Trace,
    WorkloadProfile,
    build_program,
    execute,
    generate_trace,
    get_profile,
    measure,
    paper_programs,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # architecture building blocks
    "CacheGeometry",
    "InstructionCache",
    "NLSTable",
    "NLSCache",
    "NLSEntryType",
    "NLSPrediction",
    "JohnsonSuccessorIndex",
    "SteelySagerTable",
    "BranchTargetBuffer",
    "GSharePredictor",
    "ReturnAddressStack",
    # fetch simulation
    "FetchEngine",
    "BTBFrontEnd",
    "NLSTableFrontEnd",
    "NLSCacheFrontEnd",
    "JohnsonFrontEnd",
    "OracleFrontEnd",
    "FallThroughFrontEnd",
    # metrics & costs
    "PenaltyModel",
    "SimulationReport",
    "average_reports",
    "RBEModel",
    "AccessTimeModel",
    "FetchBandwidthModel",
    "MultiIssueReport",
    # analysis
    "penalty_breakdown",
    "penalty_sensitivity",
    "btb_capacity_curve",
    "nls_capacity_curve",
    # workloads
    "BranchKind",
    "Trace",
    "WorkloadProfile",
    "get_profile",
    "paper_programs",
    "build_program",
    "execute",
    "generate_trace",
    "measure",
    # harness
    "ArchitectureConfig",
    "simulate",
    "sweep",
]

"""Test-support subsystems shipped with the library.

:mod:`repro.testing.faults` is the deterministic fault-injection
harness the resilience layer is exercised with (see DESIGN.md §12);
it ships inside ``src`` so the CI chaos-smoke job and downstream users
can inject the same failures the test suite does.
"""

from repro.testing.faults import (
    FaultInjectedError,
    FaultPlan,
    FaultSpec,
    active_plan,
    fire,
    write_plan,
)

__all__ = [
    "FaultInjectedError",
    "FaultPlan",
    "FaultSpec",
    "active_plan",
    "fire",
    "write_plan",
]

"""Deterministic fault injection for the resilient run-plan executor.

Every recovery path of the harness (retry, quarantine, pool rebuild,
trace-corruption eviction — DESIGN.md §12) is exercised through this
module rather than through ad-hoc monkeypatching, so the same faults
run identically in unit tests, in the CI chaos-smoke job, and from the
CLI's ``--faults FILE`` flag.

A *fault plan* is a JSON file naming a list of :class:`FaultSpec`
entries plus a *spool* directory.  The plan is armed by exporting the
file's path in the ``REPRO_FAULTS`` environment variable (the CLI flag
does exactly that), which means forked pool workers inherit the plan
with no extra plumbing.  Instrumented sites call :func:`fire`; a spec
matches a site by name plus ``fnmatch`` patterns over the cell's
program and config label.

Determinism has two parts:

* **targeting** — faults name their victim cell by pattern, never by
  wall clock or randomness, so a plan always hits the same cells;
* **budgets** — each spec fires at most ``times`` times *across all
  processes*.  Claims are arbitrated through the spool directory: the
  *k*-th firing of spec *i* atomically creates ``fault-i-k.fired``
  with ``O_CREAT | O_EXCL``, so concurrent pool workers can never
  overspend a budget, and a claim survives the worker being killed —
  which is precisely what the ``kill`` action does.

Actions:

``raise``
    Raise :class:`FaultInjectedError` (a deterministic cell failure —
    two identical firings trigger the executor's quarantine rule).
``hang``
    Sleep ``hang_s`` seconds, long enough to trip the per-cell
    deadline.
``kill``
    ``SIGKILL`` the current process — in a pool worker this surfaces
    as ``BrokenProcessPool`` in the supervisor; in a serial run it is
    a hard abort (what ``--resume`` recovers from).
``corrupt``
    Deterministically flip bytes of the file passed by the calling
    site (the corpus trace cache fires this before validating a
    cached trace, so the checksum path sees real corruption).
"""

from __future__ import annotations

import errno
import json
import os
import random
import signal
import time
from dataclasses import asdict, dataclass, field
from fnmatch import fnmatch
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: environment variable naming the armed fault-plan JSON file
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: schema stamp written into every fault-plan file
PLAN_SCHEMA = "repro-faults/v1"

#: known injection sites (callers pass one of these to :func:`fire`)
SITES: Tuple[str, ...] = ("cell", "trace-file")

#: known actions a spec may request
ACTIONS: Tuple[str, ...] = ("raise", "hang", "kill", "corrupt")


class FaultInjectedError(RuntimeError):
    """The deterministic exception raised by ``raise`` faults."""


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault: where it fires, what it does, how often."""

    action: str
    site: str = "cell"
    #: ``fnmatch`` pattern over the cell's program name
    program: str = "*"
    #: ``fnmatch`` pattern over the cell's config label
    config: str = "*"
    #: total firings allowed across every process sharing the spool
    times: int = 1
    #: ``hang`` action: how long to sleep
    hang_s: float = 60.0
    #: ``raise`` action: exception message (stable, so two firings
    #: look deterministic to the executor's quarantine rule)
    message: str = "injected fault"
    #: ``corrupt`` action: seed of the deterministic byte flips
    seed: int = 0

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; expected one of {ACTIONS}"
            )
        if self.site not in SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; expected one of {SITES}"
            )
        if self.times < 1:
            raise ValueError("a fault must fire at least once: times >= 1")

    def matches(self, site: str, program: str, config: str) -> bool:
        """Does this spec target the given site/cell?"""
        return (
            self.site == site
            and fnmatch(program, self.program)
            and fnmatch(config, self.config)
        )


@dataclass(frozen=True)
class FaultPlan:
    """A loaded fault plan: the specs plus the claim-spool directory."""

    specs: Tuple[FaultSpec, ...] = ()
    spool: str = ""
    path: str = field(default="", compare=False)

    def fired(self, index: int) -> int:
        """How many budget claims spec *index* has burned so far."""
        spec = self.specs[index]
        return sum(
            1
            for k in range(spec.times)
            if os.path.exists(self._claim_path(index, k))
        )

    def _claim_path(self, index: int, k: int) -> str:
        return os.path.join(self.spool, f"fault-{index}-{k}.fired")

    def claim(self, index: int) -> bool:
        """Atomically claim one firing of spec *index*; ``False`` when
        the budget is exhausted.  Safe across concurrent processes."""
        spec = self.specs[index]
        os.makedirs(self.spool, exist_ok=True)
        for k in range(spec.times):
            try:
                handle = os.open(
                    self._claim_path(index, k),
                    os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                )
            except OSError as exc:  # pragma: no cover - non-EEXIST is exotic
                if exc.errno != errno.EEXIST:
                    raise
                continue
            os.write(handle, f"pid={os.getpid()}\n".encode())
            os.close(handle)
            return True
        return False


def write_plan(
    path: str, specs: Sequence[FaultSpec], spool: Optional[str] = None
) -> str:
    """Serialise *specs* as a fault-plan file and return its path.

    *spool* defaults to ``<path>.spool`` next to the plan file; the
    directory is created so claims can be filed immediately.
    """
    spool = spool or path + ".spool"
    os.makedirs(spool, exist_ok=True)
    payload = {
        "schema": PLAN_SCHEMA,
        "spool": spool,
        "faults": [asdict(spec) for spec in specs],
    }
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return path


def load_plan(path: str) -> FaultPlan:
    """Load a fault-plan file written by :func:`write_plan` (or by
    hand — the format is plain JSON)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    specs = tuple(FaultSpec(**spec) for spec in payload.get("faults", ()))
    spool = payload.get("spool") or path + ".spool"
    return FaultPlan(specs=specs, spool=spool, path=path)


#: (path, mtime_ns) → plan cache so per-cell fire() calls stay cheap
_PLAN_CACHE: Dict[Tuple[str, int], FaultPlan] = {}


def active_plan() -> Optional[FaultPlan]:
    """The armed plan named by ``REPRO_FAULTS``, or ``None``."""
    path = os.environ.get(FAULTS_ENV_VAR)
    if not path:
        return None
    try:
        mtime = os.stat(path).st_mtime_ns
    except OSError:
        return None
    key = (path, mtime)
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        plan = _PLAN_CACHE[key] = load_plan(path)
    return plan


def corrupt_file(path: str, seed: int = 0, flips: int = 16) -> None:
    """Deterministically flip *flips* bytes of *path* in place.

    The flipped offsets and XOR masks come from ``random.Random(seed)``
    over the file size, so the same seed corrupts the same file the
    same way every run.  Short files are truncated instead, which is
    just as detectable by a checksum."""
    size = os.path.getsize(path)
    if size < flips * 2:
        with open(path, "r+b") as handle:
            handle.truncate(max(size // 2, 0))
        return
    rng = random.Random(seed)
    offsets = sorted(rng.sample(range(size), flips))
    with open(path, "r+b") as handle:
        for offset in offsets:
            handle.seek(offset)
            byte = handle.read(1)
            handle.seek(offset)
            handle.write(bytes([byte[0] ^ (rng.randrange(255) + 1)]))


def fire(
    site: str,
    program: str = "",
    config: str = "",
    path: Optional[str] = None,
) -> None:
    """Fire any armed faults matching *site* for the given cell.

    A no-op unless ``REPRO_FAULTS`` names a plan with an unspent,
    matching spec.  ``raise`` faults raise :class:`FaultInjectedError`;
    ``hang`` sleeps; ``kill`` SIGKILLs the process; ``corrupt``
    rewrites *path* (skipped when the caller passed no path)."""
    plan = active_plan()
    if plan is None:
        return
    for index, spec in enumerate(plan.specs):
        if not spec.matches(site, program, config):
            continue
        if spec.action == "corrupt" and path is None:
            continue
        if not plan.claim(index):
            continue
        if spec.action == "raise":
            raise FaultInjectedError(
                f"{spec.message} [site={site} program={program} config={config}]"
            )
        if spec.action == "hang":
            time.sleep(spec.hang_s)
        elif spec.action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif spec.action == "corrupt":
            corrupt_file(path, seed=spec.seed)


def plan_summary(plan: FaultPlan) -> List[Dict[str, Any]]:
    """Spec-by-spec ``fired/times`` accounting (for logs and tests)."""
    return [
        {**asdict(spec), "fired": plan.fired(index)}
        for index, spec in enumerate(plan.specs)
    ]

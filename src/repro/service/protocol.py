"""Wire formats of the simulation service.

Everything that crosses the HTTP boundary is defined here, as plain
JSON-ready dicts (docs/SERVICE.md documents the schemas):

* **cells** — :func:`request_to_dict` / :func:`request_from_dict`
  round-trip a :class:`~repro.harness.runner.RunRequest` (including
  its full :class:`~repro.harness.config.ArchitectureConfig`) so
  clients can submit explicit design-space points;
* **job specs** — :func:`parse_job_spec` validates a submission body:
  either a registered experiment by name (``{"experiment": "fig5",
  "programs": [...], "instructions": N}``) or explicit ``cells``,
  plus execution knobs (``engine``, ``backend``, ``jobs``) — worker
  counts go through the same validated resolver as the CLI's
  ``--jobs`` (:func:`repro.harness.runner.resolve_worker_count`);
* **results** — :func:`job_result_payload` renders a completed job's
  reports (checkpoint-serialised, byte-stable) and, for experiment
  jobs, the rendered table/figure.

Validation failures raise :class:`JobSpecError` with a one-line
message the API maps to HTTP 400.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.harness.checkpoint import cell_key, report_to_dict
from repro.harness.config import ENGINES, ArchitectureConfig
from repro.harness.runner import (
    DEFAULT_WARMUP,
    BACKENDS,
    RunRequest,
    resolve_worker_count,
)
from repro.metrics.report import SimulationReport

#: service wire-schema stamp (submissions, events, results)
SERVICE_SCHEMA = "repro-service/v1"


class JobSpecError(ValueError):
    """A job submission failed validation (maps to HTTP 400)."""


# ---------------------------------------------------------------------------
# cell (de)serialisation
# ---------------------------------------------------------------------------

_CONFIG_FIELDS = tuple(spec.name for spec in fields(ArchitectureConfig))


def config_from_dict(payload: Mapping[str, Any]) -> ArchitectureConfig:
    """Rebuild an :class:`ArchitectureConfig` from its dict form.

    Accepts the compact :meth:`ArchitectureConfig.describe` shape
    (``label`` is ignored) as well as a full field dump; unknown keys
    are a :class:`JobSpecError`, not silently dropped."""
    cleaned = {
        key: value for key, value in payload.items() if key != "label"
    }
    unknown = sorted(set(cleaned) - set(_CONFIG_FIELDS))
    if unknown:
        raise JobSpecError(f"unknown config field(s): {', '.join(unknown)}")
    try:
        config = ArchitectureConfig(**cleaned)
    except (TypeError, ValueError) as exc:
        raise JobSpecError(f"invalid config: {exc}") from None
    if "flush_interval" in cleaned and cleaned["flush_interval"] is not None:
        if not isinstance(cleaned["flush_interval"], int):
            raise JobSpecError("flush_interval must be an integer or null")
    return config


def request_to_dict(request: RunRequest) -> Dict[str, Any]:
    """JSON-encodable form of one simulation cell."""
    return {
        "config": request.config.describe(),
        "program": request.program,
        "instructions": request.instructions,
        "seed": request.seed,
        "layout": request.layout,
        "warmup": request.warmup,
    }


def request_from_dict(payload: Mapping[str, Any]) -> RunRequest:
    """Rebuild one simulation cell from its wire form."""
    if "config" not in payload or "program" not in payload:
        raise JobSpecError("each cell needs at least 'config' and 'program'")
    unknown = sorted(
        set(payload)
        - {"config", "program", "instructions", "seed", "layout", "warmup"}
    )
    if unknown:
        raise JobSpecError(f"unknown cell field(s): {', '.join(unknown)}")
    try:
        return RunRequest(
            config=config_from_dict(payload["config"]),
            program=str(payload["program"]),
            instructions=payload.get("instructions"),
            seed=payload.get("seed"),
            layout=str(payload.get("layout", "natural")),
            warmup=float(
                DEFAULT_WARMUP
                if payload.get("warmup") is None
                else payload["warmup"]
            ),
        )
    except JobSpecError:
        raise
    except (TypeError, ValueError) as exc:
        raise JobSpecError(f"invalid cell: {exc}") from None


# ---------------------------------------------------------------------------
# job specs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ParsedJobSpec:
    """A validated job submission, ready for the scheduler.

    ``finish`` is the experiment's renderer when the job was submitted
    by experiment name (``None`` for explicit-cell jobs); ``jobs`` is
    the resolved concrete worker count for the plan execution."""

    kind: str  # "experiment" or "cells"
    name: str
    cells: Tuple[RunRequest, ...]
    finish: Optional[Callable[..., Any]]
    backend: str
    jobs: Optional[int]
    engine: str
    raw: Dict[str, Any]


def parse_job_spec(payload: Any) -> ParsedJobSpec:
    """Validate one submission body into a :class:`ParsedJobSpec`.

    Exactly one of ``experiment`` (a registered spec name, with
    optional ``programs``/``instructions`` knobs) or ``cells`` (a
    non-empty list of explicit cell dicts) must be present."""
    from repro.harness.experiments import SPECS
    from repro.harness.spec import with_engine

    if not isinstance(payload, Mapping):
        raise JobSpecError("job spec must be a JSON object")
    has_experiment = "experiment" in payload
    has_cells = "cells" in payload
    if has_experiment == has_cells:
        raise JobSpecError(
            "job spec needs exactly one of 'experiment' or 'cells'"
        )
    engine = str(payload.get("engine", "reference"))
    if engine not in ENGINES:
        raise JobSpecError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )
    backend = str(payload.get("backend", "serial"))
    if backend not in BACKENDS:
        raise JobSpecError(
            f"unknown backend {backend!r}; expected one of "
            f"{tuple(sorted(BACKENDS))}"
        )
    jobs: Optional[int] = None
    if payload.get("jobs") is not None:
        try:
            jobs = resolve_worker_count(payload["jobs"], warn=False)
        except ValueError as exc:
            raise JobSpecError(str(exc)) from None

    if has_experiment:
        name = str(payload["experiment"])
        if name not in SPECS:
            raise JobSpecError(
                f"unknown experiment {name!r}; see GET /api/v1/experiments"
            )
        knobs: Dict[str, Any] = {}
        if payload.get("programs") is not None:
            programs = payload["programs"]
            if not isinstance(programs, (list, tuple)) or not programs:
                raise JobSpecError("'programs' must be a non-empty list")
            # any registered profile (paper + server) plus ingested
            # external:<sha256> trace keys (docs/TRACES.md) — the
            # worker resolves the key through the external-trace store
            from repro.workloads.ingest import is_external
            from repro.workloads.profiles import PROFILES

            known = set(PROFILES)
            bad = sorted(
                name
                for name in set(map(str, programs))
                if name not in known and not is_external(name)
            )
            if bad:
                raise JobSpecError(f"unknown program(s): {', '.join(bad)}")
            knobs["programs"] = [str(program) for program in programs]
        if payload.get("instructions") is not None:
            if (
                not isinstance(payload["instructions"], int)
                or payload["instructions"] < 1
            ):
                raise JobSpecError("'instructions' must be a positive integer")
            knobs["instructions"] = payload["instructions"]
        try:
            plan = SPECS[name].plan(**knobs)
        except (TypeError, ValueError) as exc:
            raise JobSpecError(f"cannot build {name!r} plan: {exc}") from None
        plan = with_engine([plan], engine)[0]
        return ParsedJobSpec(
            kind="experiment",
            name=name,
            cells=tuple(plan.cells),
            finish=plan.finish,
            backend=backend,
            jobs=jobs,
            engine=engine,
            raw=dict(payload),
        )

    cells_payload = payload["cells"]
    if not isinstance(cells_payload, (list, tuple)) or not cells_payload:
        raise JobSpecError("'cells' must be a non-empty list")
    cells = tuple(request_from_dict(cell) for cell in cells_payload)
    if engine != "reference":
        from dataclasses import replace

        cells = tuple(
            replace(cell, config=replace(cell.config, engine=engine))
            for cell in cells
        )
    return ParsedJobSpec(
        kind="cells",
        name=str(payload.get("name", "cells")),
        cells=cells,
        finish=None,
        backend=backend,
        jobs=jobs,
        engine=engine,
        raw=dict(payload),
    )


# ---------------------------------------------------------------------------
# results
# ---------------------------------------------------------------------------


def job_result_payload(
    job_id: str,
    spec: ParsedJobSpec,
    reports: Mapping[RunRequest, SimulationReport],
    sources: Mapping[RunRequest, str],
    rendered: Optional[Any] = None,
) -> Dict[str, Any]:
    """The ``GET /api/v1/jobs/<id>/result`` document.

    One entry per unique cell (submission order) with its content
    address, provenance source (``store`` / ``computed`` / ``resumed``
    / ``quarantined``) and checkpoint-serialised report — cells served
    from the store are byte-identical to the job that first computed
    them.  Experiment jobs additionally carry the rendered result."""
    seen = set()
    cells: List[Dict[str, Any]] = []
    for request in spec.cells:
        if request in seen:
            continue
        seen.add(request)
        report = reports.get(request)
        cells.append(
            {
                "cell": cell_key(request),
                "config": request.config.label(),
                "program": request.program,
                "source": sources.get(request, "unknown"),
                "report": None if report is None else report_to_dict(report),
            }
        )
    payload: Dict[str, Any] = {
        "schema": SERVICE_SCHEMA,
        "job_id": job_id,
        "kind": spec.kind,
        "name": spec.name,
        "cells": cells,
    }
    if rendered is not None:
        from repro.harness.export import _jsonable

        payload["result"] = {
            "name": rendered.name,
            "title": rendered.title,
            "text": rendered.text,
            "data": _jsonable(rendered.data),
        }
    return payload

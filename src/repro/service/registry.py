"""Durable job registry: jobs, events and leases in the store file.

The promotion of the in-memory job table (:mod:`repro.service.jobs`)
to the same SQLite database file as the content-addressed
:class:`~repro.service.store.ResultStore`, so one ``--store`` path
carries everything a restarted — or additional — ``serve`` process
needs to pick up exactly where the last one stopped:

* **job rows** (``job_registry``) — the raw submission spec (replayed
  through :func:`~repro.service.protocol.parse_job_spec` on
  recovery, so a recovered plan is cell-for-cell identical), state
  transitions with timestamps, the cooperative ``cancel_requested``
  flag, and the persisted event-log offset;
* **event rows** (``job_events``) — every event appended to a job's
  :class:`~repro.service.jobs.JobEventLog` lands here *before* it
  becomes visible to streamers, which makes ``/events?from=N``
  exactly-once across crashes: any event a client ever saw is durable,
  and a reconnect after restart replays the persisted prefix and
  continues seamlessly into the recovered run's fresh events.  The
  same table is the spill target that keeps week-long jobs' in-memory
  event windows bounded (:data:`repro.service.jobs.EVENT_MEMORY_CAP`);
* **leases** — each non-terminal job is owned by at most one replica
  (``owner`` + ``lease_expires_s``); owners heartbeat their leases,
  and a lease that expires (crashed or SIGKILLed replica) makes the
  job an *orphan* that any peer's recovery sweep can atomically
  claim (``service.lease_takeovers``).  Claims are single ``UPDATE …
  WHERE`` statements, so two replicas racing on the same orphan
  resolve to exactly one winner.

Everything here is WAL-mode SQLite with a busy timeout — the same
concurrency envelope as the result store — so scheduler threads
within a replica and multiple replica processes sharing the database
file coordinate without extra locking.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
import uuid
from typing import Any, Dict, List, Optional, Tuple

#: registry schema stamp (bump on any table change)
REGISTRY_SCHEMA = "repro-registry/v1"

#: job states a replica may recover (everything non-terminal)
RECOVERABLE_STATES = ("queued", "running")

_JOBS_DDL = """
CREATE TABLE IF NOT EXISTS job_registry (
    job_id           TEXT PRIMARY KEY,
    schema           TEXT NOT NULL,
    spec             TEXT NOT NULL,
    kind             TEXT NOT NULL,
    name             TEXT NOT NULL,
    client           TEXT NOT NULL DEFAULT '',
    state            TEXT NOT NULL,
    cells            INTEGER NOT NULL,
    submitted_s      REAL NOT NULL,
    started_s        REAL,
    finished_s       REAL,
    error            TEXT,
    cancel_requested INTEGER NOT NULL DEFAULT 0,
    owner            TEXT,
    lease_expires_s  REAL,
    events           INTEGER NOT NULL DEFAULT 0
)
"""

_EVENTS_DDL = """
CREATE TABLE IF NOT EXISTS job_events (
    job_id  TEXT NOT NULL,
    seq     INTEGER NOT NULL,
    payload TEXT NOT NULL,
    PRIMARY KEY (job_id, seq)
)
"""


def replica_id() -> str:
    """A unique owner identity for one ``serve`` process."""
    return f"{os.getpid()}-{uuid.uuid4().hex[:8]}"


class RegistryEventBacking:
    """Adapter binding one job's durable event rows to its in-memory
    :class:`~repro.service.jobs.JobEventLog` (the spill/replay seam)."""

    def __init__(self, registry: "JobRegistry", job_id: str) -> None:
        self.registry = registry
        self.job_id = job_id

    def append(self, record: Dict[str, Any]) -> None:
        """Persist one stamped event record durably."""
        self.registry.append_event(self.job_id, record)

    def read(self, start: int, stop: int) -> List[Dict[str, Any]]:
        """Persisted events with ``start <= seq < stop``."""
        return self.registry.events(self.job_id, start, stop)


class JobRegistry:
    """Durable job table + event log + leases on one SQLite file.

    One instance wraps one connection (safe across threads via an
    interlock); separate replicas open their own instances on the same
    path.  All mutating statements are single autocommitted
    transactions, so cross-replica races resolve by row, never by
    convention."""

    def __init__(self, path: str) -> None:
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(path, check_same_thread=False)
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute("PRAGMA busy_timeout=10000")
            self._conn.execute(_JOBS_DDL)
            self._conn.execute(_EVENTS_DDL)
            self._conn.commit()

    # -- job rows ------------------------------------------------------

    def create(
        self,
        job_id: str,
        raw_spec: Dict[str, Any],
        kind: str,
        name: str,
        cells: int,
        client: str = "",
        owner: Optional[str] = None,
        lease_s: float = 15.0,
    ) -> None:
        """Insert one submitted job, leased to its submitting replica."""
        now = time.time()
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO job_registry "
                "(job_id, schema, spec, kind, name, client, state, cells, "
                " submitted_s, owner, lease_expires_s, events) "
                "VALUES (?, ?, ?, ?, ?, ?, 'queued', ?, ?, ?, ?, 0)",
                (
                    job_id,
                    REGISTRY_SCHEMA,
                    json.dumps(raw_spec, sort_keys=True),
                    kind,
                    name,
                    client,
                    cells,
                    now,
                    owner,
                    None if owner is None else now + lease_s,
                ),
            )
            self._conn.commit()

    def get(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The registry row for *job_id* as a dict, or ``None``."""
        with self._lock:
            cursor = self._conn.execute(
                "SELECT * FROM job_registry WHERE job_id = ?", (job_id,)
            )
            row = cursor.fetchone()
            if row is None:
                return None
            columns = [entry[0] for entry in cursor.description]
        record = dict(zip(columns, row))
        record["cancel_requested"] = bool(record["cancel_requested"])
        return record

    def list_jobs(self) -> List[Dict[str, Any]]:
        """Every registry row, oldest submission first."""
        with self._lock:
            cursor = self._conn.execute(
                "SELECT job_id FROM job_registry ORDER BY submitted_s, job_id"
            )
            ids = [row[0] for row in cursor.fetchall()]
        rows = []
        for job_id in ids:
            record = self.get(job_id)
            if record is not None:
                rows.append(record)
        return rows

    def set_state(
        self,
        job_id: str,
        state: str,
        error: Optional[str] = None,
        release_lease: bool = False,
    ) -> None:
        """Record a state transition (terminal states release the
        lease automatically; *release_lease* forces it for requeues)."""
        now = time.time()
        terminal = state in ("completed", "failed", "cancelled")
        sets = ["state = ?"]
        params: List[Any] = [state]
        if state == "running":
            sets.append("started_s = ?")
            params.append(now)
        if terminal:
            sets.append("finished_s = ?")
            params.append(now)
        if error is not None:
            sets.append("error = ?")
            params.append(error)
        if terminal or release_lease:
            sets.append("owner = NULL")
            sets.append("lease_expires_s = NULL")
        params.append(job_id)
        with self._lock:
            self._conn.execute(
                f"UPDATE job_registry SET {', '.join(sets)} WHERE job_id = ?",
                params,
            )
            self._conn.commit()

    # -- cancellation --------------------------------------------------

    def request_cancel(self, job_id: str) -> bool:
        """Set the cooperative cancel flag; ``False`` for unknown or
        already-terminal jobs."""
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE job_registry SET cancel_requested = 1 "
                "WHERE job_id = ? AND state IN ('queued', 'running')",
                (job_id,),
            )
            self._conn.commit()
            return cursor.rowcount == 1

    def cancel_requested(self, job_id: str) -> bool:
        """Whether someone asked *job_id* to stop (polled between
        cells by the owning scheduler)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT cancel_requested FROM job_registry WHERE job_id = ?",
                (job_id,),
            ).fetchone()
        return bool(row and row[0])

    # -- leases --------------------------------------------------------

    def heartbeat(self, owner: str, lease_s: float) -> int:
        """Extend the lease on every non-terminal job *owner* holds;
        returns how many leases were renewed."""
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE job_registry SET lease_expires_s = ? "
                "WHERE owner = ? AND state IN ('queued', 'running')",
                (time.time() + lease_s, owner),
            )
            self._conn.commit()
            return cursor.rowcount

    def release_owner(self, owner: str) -> int:
        """Release every non-terminal job *owner* holds back to the
        queued pool (the graceful-drain path); returns the count."""
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE job_registry SET owner = NULL, lease_expires_s = NULL, "
                "state = 'queued' "
                "WHERE owner = ? AND state IN ('queued', 'running')",
                (owner,),
            )
            self._conn.commit()
            return cursor.rowcount

    def claim_orphans(
        self, owner: str, lease_s: float
    ) -> List[Tuple[Dict[str, Any], bool]]:
        """Atomically claim every recoverable job whose lease lapsed.

        Returns ``(row, takeover)`` pairs — *takeover* is ``True`` when
        the job was stolen from a (dead) previous owner rather than
        picked up ownerless.  The claim is one conditional ``UPDATE``
        per candidate, so concurrent sweeps on other replicas can never
        double-claim."""
        now = time.time()
        with self._lock:
            candidates = self._conn.execute(
                "SELECT job_id, owner FROM job_registry "
                "WHERE state IN ('queued', 'running') "
                "AND (owner IS NULL OR (lease_expires_s < ? AND owner != ?)) "
                "ORDER BY submitted_s, job_id",
                (now, owner),
            ).fetchall()
        claimed: List[Tuple[Dict[str, Any], bool]] = []
        for job_id, previous_owner in candidates:
            with self._lock:
                cursor = self._conn.execute(
                    "UPDATE job_registry SET owner = ?, lease_expires_s = ? "
                    "WHERE job_id = ? AND state IN ('queued', 'running') "
                    "AND (owner IS NULL OR (lease_expires_s < ? AND owner != ?))",
                    (owner, now + lease_s, job_id, now, owner),
                )
                self._conn.commit()
                if cursor.rowcount != 1:
                    continue  # another replica won the race
            row = self.get(job_id)
            if row is not None:
                claimed.append((row, previous_owner is not None))
        return claimed

    # -- events --------------------------------------------------------

    def append_event(self, job_id: str, record: Dict[str, Any]) -> None:
        """Durably persist one stamped event (idempotent per seq)."""
        with self._lock:
            self._conn.execute(
                "INSERT OR IGNORE INTO job_events (job_id, seq, payload) "
                "VALUES (?, ?, ?)",
                (job_id, record["seq"], json.dumps(record, sort_keys=True)),
            )
            self._conn.execute(
                "UPDATE job_registry SET events = "
                "(SELECT COUNT(*) FROM job_events WHERE job_id = ?) "
                "WHERE job_id = ?",
                (job_id, job_id),
            )
            self._conn.commit()

    def events(
        self, job_id: str, start: int = 0, stop: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        """Persisted events with ``start <= seq`` (``< stop`` if given),
        in sequence order."""
        query = (
            "SELECT payload FROM job_events WHERE job_id = ? AND seq >= ?"
        )
        params: List[Any] = [job_id, start]
        if stop is not None:
            query += " AND seq < ?"
            params.append(stop)
        query += " ORDER BY seq"
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
        return [json.loads(row[0]) for row in rows]

    def event_count(self, job_id: str) -> int:
        """How many events *job_id* has persisted."""
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM job_events WHERE job_id = ?", (job_id,)
            ).fetchone()
        return int(row[0])

    def log_backing(self, job_id: str) -> RegistryEventBacking:
        """The durable backing for one job's in-memory event log."""
        return RegistryEventBacking(self, job_id)

    # -- summaries -----------------------------------------------------

    def counts(self) -> Dict[str, int]:
        """Job totals by state across every replica sharing the file."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) FROM job_registry GROUP BY state"
            ).fetchall()
        totals = {
            state: 0
            for state in ("queued", "running", "completed", "failed", "cancelled")
        }
        for state, count in rows:
            totals[state] = count
        return totals

    def close(self) -> None:
        """Close the connection (safe to call repeatedly)."""
        with self._lock:
            try:
                self._conn.close()
            except sqlite3.ProgrammingError:  # pragma: no cover - already closed
                pass

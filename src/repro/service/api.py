"""Async HTTP face of the simulation service (stdlib asyncio only).

A deliberately small HTTP/1.1 server built on
:func:`asyncio.start_server` — no web framework, matching the repo's
no-new-dependencies rule.  Blocking simulation work never runs on the
event loop: the loop only parses requests, serialises JSON and streams
event-log tails; the :class:`~repro.service.scheduler.JobScheduler`
threads do the simulating.

Routes (all JSON; ``Connection: close`` per request):

=======  ==============================  =====================================
GET      /healthz                        liveness + job-state totals
GET      /readyz                         readiness: store reachable and the
                                         submit queue below the shed
                                         threshold (503 + Retry-After if not)
GET      /metrics                        Prometheus text exposition of the
                                         active telemetry registry plus
                                         scheduler/store counters
GET      /api/v1/experiments             registered experiment names
GET      /api/v1/store/stats             result-store statistics
POST     /api/v1/jobs                    submit a job spec → 202 + status
GET      /api/v1/jobs                    list all jobs (oldest first)
GET      /api/v1/jobs/<id>               one job's status
POST     /api/v1/jobs/<id>/cancel        cooperative cancel → 202 (409 if
                                         the job is already terminal)
GET      /api/v1/jobs/<id>/events        NDJSON event stream (chunked);
                                         ``?from=N`` resumes at seq N
GET      /api/v1/jobs/<id>/result        result document (409 until done)
GET      /api/v1/jobs/<id>/manifest      job manifest (409 until done)
=======  ==============================  =====================================

The event stream is plain newline-delimited JSON over chunked
transfer encoding: one object per event, ending when the job reaches
a terminal state (every event is flushed before the terminal state is
set, so the stream never truncates).  ``?from=N`` offsets below the
in-memory window are served from the durable registry, so a client
reconnecting after a replica restart replays exactly the events it
missed — no gaps, no duplicates.

When the scheduler carries an
:class:`~repro.service.admission.AdmissionController` (``serve
--keys`` / quota flags), every ``/api/v1`` request is authenticated
(``Authorization: Bearer <key>`` → 401 on failure) and submissions
pass rate limits and in-flight quotas; refused work is shed with
``429`` and an honest ``Retry-After``, never queued unbounded.  All
error responses — including 413 oversized bodies and malformed
request lines — are well-formed JSON with ``Content-Length`` set.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from typing import Any, Dict, Optional, Tuple

from repro.service.admission import AdmissionError
from repro.service.jobs import Job
from repro.service.protocol import SERVICE_SCHEMA, JobSpecError, parse_job_spec
from repro.service.scheduler import JobScheduler

#: maximum accepted request-body size (a full 48-cell sweep spec is ~20 kB)
MAX_BODY_BYTES = 4 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ServiceServer:
    """One service instance: a scheduler plus its asyncio HTTP server.

    Construct, then either ``await serve_forever()`` on a running loop
    (the CLI path) or call :meth:`start_background` to run loop and
    server on a daemon thread (the test / embedding path).

    *read_timeout* bounds how long one connection may take to deliver
    its request (slowloris protection): expiry answers ``408`` and
    closes."""

    def __init__(
        self,
        scheduler: JobScheduler,
        host: str = "127.0.0.1",
        port: int = 0,
        read_timeout: Optional[float] = None,
    ) -> None:
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self.read_timeout = read_timeout
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()

    # -- request plumbing ----------------------------------------------

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        """Parse one HTTP/1.1 request; ``None`` on malformed input."""
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            return None
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length < 0 or length > MAX_BODY_BYTES:
            return method, target, headers, b"\x00"  # sentinel: too large
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    @staticmethod
    def _json_bytes(payload: Any) -> bytes:
        return json.dumps(payload, sort_keys=True).encode("utf-8")

    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = self._json_bytes(payload) + b"\n"
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        lines.append("Connection: close")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    async def _send_text(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: str,
        content_type: str = "text/plain; charset=utf-8",
    ) -> None:
        encoded = body.encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(encoded)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + encoded)
        await writer.drain()

    async def _send_error(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        message: str,
        retry_after: Optional[float] = None,
    ) -> None:
        """One JSON error body, always with ``Content-Length`` (and
        ``Retry-After`` on shed/unavailable responses)."""
        extra: Optional[Dict[str, str]] = None
        if retry_after is not None:
            extra = {"Retry-After": str(int(max(1, round(retry_after))))}
        await self._send_json(
            writer,
            status,
            {"schema": SERVICE_SCHEMA, "error": message, "status": status},
            extra_headers=extra,
        )

    # -- routing -------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one connection (one request; ``Connection: close``)."""
        try:
            try:
                if self.read_timeout is not None:
                    parsed = await asyncio.wait_for(
                        self._read_request(reader), self.read_timeout
                    )
                else:
                    parsed = await self._read_request(reader)
            except asyncio.TimeoutError:
                await self._send_error(
                    writer,
                    408,
                    f"request not received within {self.read_timeout}s",
                )
                return
            if parsed is None:
                await self._send_error(writer, 400, "malformed HTTP request")
                return
            method, target, headers, body = parsed
            if body == b"\x00":
                await self._send_error(writer, 413, "request body too large")
                return
            path, _, query = target.partition("?")
            await self._route(writer, method, path, query, headers, body)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # the server must outlive a bad handler
            try:
                await self._send_error(
                    writer, 500, f"{type(exc).__name__}: {exc}"
                )
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    def _authenticate(self, headers: Dict[str, str]) -> str:
        """Resolve the request's client identity (may raise
        :class:`AdmissionError` → 401)."""
        admission = self.scheduler.admission
        if admission is None:
            return "anonymous"
        return admission.authenticate(headers.get("authorization"))

    async def _route(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        query: str,
        headers: Dict[str, str],
        body: bytes,
    ) -> None:
        if path == "/healthz" and method == "GET":
            await self._send_json(
                writer,
                200,
                {
                    "schema": SERVICE_SCHEMA,
                    "ok": True,
                    "jobs": self.scheduler.counts(),
                },
            )
            return
        if path == "/readyz" and method == "GET":
            await self._send_readyz(writer)
            return
        if path == "/metrics" and method == "GET":
            from repro.telemetry.core import get_registry
            from repro.telemetry.exposition import render_prometheus

            text = render_prometheus(
                get_registry(),
                job_counts=self.scheduler.counts(),
                store_stats=self.scheduler.store.stats(),
                extra_gauges={
                    "service_queue_depth": self.scheduler.queue_depth(),
                },
            )
            await self._send_text(
                writer,
                200,
                text,
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
            return
        # everything under /api/v1 is authenticated (when keys are on)
        try:
            client = self._authenticate(headers)
        except AdmissionError as exc:
            await self._send_error(
                writer, exc.status, exc.message, retry_after=exc.retry_after
            )
            return
        if path == "/api/v1/experiments" and method == "GET":
            from repro.harness.experiments import SPECS

            await self._send_json(
                writer,
                200,
                {
                    "schema": SERVICE_SCHEMA,
                    "experiments": {
                        name: SPECS[name].summary for name in sorted(SPECS)
                    },
                },
            )
            return
        if path == "/api/v1/store/stats" and method == "GET":
            await self._send_json(
                writer,
                200,
                {"schema": SERVICE_SCHEMA, "store": self.scheduler.store.stats()},
            )
            return
        if path == "/api/v1/jobs" and method == "POST":
            await self._submit_job(writer, client, body)
            return
        if path == "/api/v1/jobs" and method == "GET":
            await self._send_json(
                writer,
                200,
                {"schema": SERVICE_SCHEMA, "jobs": self.scheduler.list_jobs()},
            )
            return
        if path.startswith("/api/v1/jobs/"):
            await self._route_job(writer, method, path, query)
            return
        await self._send_error(writer, 404, f"no route for {method} {path}")

    async def _send_readyz(self, writer: asyncio.StreamWriter) -> None:
        """Readiness: the store answers a query and the submit queue is
        below the shed threshold; 503 + Retry-After otherwise."""
        admission = self.scheduler.admission
        depth = self.scheduler.queue_depth()
        store_ok = await asyncio.get_running_loop().run_in_executor(
            None, self.scheduler.store.ping
        )
        queue_ok = (
            admission is None
            or admission.max_queue is None
            or depth < admission.max_queue
        )
        payload = {
            "schema": SERVICE_SCHEMA,
            "ready": store_ok and queue_ok,
            "store_ok": store_ok,
            "queue_ok": queue_ok,
            "queue_depth": depth,
        }
        if store_ok and queue_ok:
            await self._send_json(writer, 200, payload)
        else:
            await self._send_json(
                writer, 503, payload, extra_headers={"Retry-After": "5"}
            )

    async def _submit_job(
        self, writer: asyncio.StreamWriter, client: str, body: bytes
    ) -> None:
        """Admission-checked submission: rate → parse → quota → enqueue."""
        admission = self.scheduler.admission
        try:
            payload = json.loads(body.decode("utf-8")) if body else None
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            await self._send_error(writer, 400, f"invalid JSON body: {exc}")
            return

        def _submit() -> Job:
            if admission is not None:
                admission.check_rate(client)
            spec = parse_job_spec(payload)
            if admission is not None:
                admission.admit(
                    client, len(spec.cells), self.scheduler.queue_depth()
                )
            try:
                return self.scheduler.submit(payload, client=client)
            except BaseException:
                if admission is not None:
                    admission.job_finished(client, len(spec.cells))
                raise

        try:
            job = await asyncio.get_running_loop().run_in_executor(
                None, _submit
            )
        except JobSpecError as exc:
            await self._send_error(writer, 400, str(exc))
            return
        except AdmissionError as exc:
            await self._send_error(
                writer, exc.status, exc.message, retry_after=exc.retry_after
            )
            return
        await self._send_json(writer, 202, job.status_dict())

    async def _route_job(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        query: str,
    ) -> None:
        parts = path[len("/api/v1/jobs/") :].split("/")
        job_id = parts[0]
        action = parts[1] if len(parts) > 1 else ""
        job = self.scheduler.get(job_id)
        if method == "POST" and action == "cancel":
            await self._cancel_job(writer, job_id, job)
            return
        if method != "GET":
            await self._send_error(writer, 405, f"{method} not allowed here")
            return
        if job is None:
            # not resident on this replica: answer status queries from
            # the shared registry (peer-owned or not-yet-recovered jobs)
            row = self.scheduler.registry.get(job_id)
            if row is not None and action == "events":
                await self._replay_registry_events(writer, job_id, query)
                return
            if row is not None and action == "":
                await self._send_json(
                    writer,
                    200,
                    {
                        "schema": SERVICE_SCHEMA,
                        "job_id": row["job_id"],
                        "kind": row["kind"],
                        "name": row["name"],
                        "state": row["state"],
                        "cells": row["cells"],
                        "events": row["events"],
                        "submitted_s": row["submitted_s"],
                        "started_s": row["started_s"],
                        "finished_s": row["finished_s"],
                        "error": row["error"],
                        "cancel_requested": row["cancel_requested"],
                        "resident": False,
                    },
                )
                return
            await self._send_error(writer, 404, f"unknown job {job_id!r}")
            return
        if action == "":
            await self._send_json(writer, 200, job.status_dict())
        elif action == "events":
            await self._stream_events(writer, job, query)
        elif action == "result":
            if not job.done:
                await self._send_error(
                    writer, 409, f"job {job.id} is {job.state.value}"
                )
            elif job.result is None:
                await self._send_error(writer, 409, job.error or "job failed")
            else:
                await self._send_json(writer, 200, job.result)
        elif action == "manifest":
            if job.manifest is None:
                await self._send_error(
                    writer, 409, f"job {job.id} has no manifest yet"
                )
            else:
                await self._send_json(writer, 200, job.manifest)
        else:
            await self._send_error(writer, 404, f"no job action {action!r}")

    async def _cancel_job(
        self, writer: asyncio.StreamWriter, job_id: str, job: Optional[Job]
    ) -> None:
        """Cooperative cancel: flips the in-memory and registry flags;
        the owning scheduler stops the plan at its next cell boundary."""
        if job is None and self.scheduler.registry.get(job_id) is None:
            await self._send_error(writer, 404, f"unknown job {job_id!r}")
            return
        accepted = await asyncio.get_running_loop().run_in_executor(
            None, self.scheduler.request_cancel, job_id
        )
        if not accepted:
            state = job.state.value if job is not None else "terminal"
            await self._send_error(
                writer, 409, f"job {job_id} is already {state}"
            )
            return
        await self._send_json(
            writer,
            202,
            {
                "schema": SERVICE_SCHEMA,
                "job_id": job_id,
                "cancel_requested": True,
            },
        )

    @staticmethod
    def _events_offset(query: str) -> int:
        offset = 0
        for pair in query.split("&"):
            key, _, value = pair.partition("=")
            if key == "from" and value.isdigit():
                offset = int(value)
        return offset

    async def _replay_registry_events(
        self, writer: asyncio.StreamWriter, job_id: str, query: str
    ) -> None:
        """NDJSON replay of a non-resident job's persisted log.

        The job lives on another replica (or finished before a
        restart), so there is no in-memory log to tail — the registry
        history *is* the stream, replayed from ``?from=N`` exactly as
        the live tail would have delivered it, then closed."""
        offset = self._events_offset(query)
        events = await asyncio.get_running_loop().run_in_executor(
            None, self.scheduler.registry.events, job_id, offset
        )
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Cache-Control: no-store\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head)
        if events:
            chunk = b"".join(
                self._json_bytes(event) + b"\n" for event in events
            )
            writer.write(f"{len(chunk):x}\r\n".encode("latin-1"))
            writer.write(chunk + b"\r\n")
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    async def _stream_events(
        self, writer: asyncio.StreamWriter, job: Job, query: str
    ) -> None:
        """Chunked NDJSON tail of the job's event log until terminal.

        ``?from=N`` resumes at seq N — served transparently across the
        memory/registry boundary, so resumed streams are exactly-once
        even after spills or restarts.  A drain (``job.suspended``)
        ends the stream like a terminal state: its final event is
        ``job-suspended`` and the client re-attaches to whichever
        replica recovers the job."""
        offset = self._events_offset(query)
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Cache-Control: no-store\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head)
        await writer.drain()
        while True:
            events = job.log.events_since(offset)
            if events:
                offset += len(events)
                chunk = b"".join(
                    self._json_bytes(event) + b"\n" for event in events
                )
                writer.write(f"{len(chunk):x}\r\n".encode("latin-1"))
                writer.write(chunk + b"\r\n")
                await writer.drain()
                continue
            # terminal state is set only after the final event lands, so
            # done + drained log means the stream is complete
            if job.done or job.suspended:
                break
            await asyncio.get_running_loop().run_in_executor(
                None, job.log.wait_beyond, offset, 0.25
            )
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    # -- server lifecycle ----------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket (resolves an ephemeral port)."""
        self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        self._ready.set()

    async def serve_forever(self) -> None:
        """Bind (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    @property
    def url(self) -> str:
        """Base URL of the bound server (valid after :meth:`start`)."""
        return f"http://{self.host}:{self.port}"

    def start_background(self, timeout: float = 10.0) -> str:
        """Run the event loop + server on a daemon thread; returns the
        base URL once the socket is bound."""

        def _run() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            try:
                loop.run_until_complete(self.start())
                loop.run_forever()
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=_run, name="repro-service-http", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("service HTTP server failed to start")
        return self.url

    def stop_background(self, timeout: float = 10.0) -> None:
        """Stop a background server started by :meth:`start_background`."""
        loop, server = self._loop, self._server

        def _shutdown() -> None:
            if server is not None:
                server.close()
            assert loop is not None
            loop.stop()

        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(_shutdown)
        if self._thread is not None:
            self._thread.join(timeout)
        self.scheduler.stop()


def serve(
    scheduler: JobScheduler,
    host: str = "127.0.0.1",
    port: int = 8787,
    read_timeout: Optional[float] = None,
) -> None:
    """Blocking entry point for ``python -m repro.harness serve``.

    Prints the bound URL (flushed, so wrappers can scrape the
    ephemeral port when *port* is 0) and serves until interrupted.
    ``SIGTERM`` triggers a graceful drain: running jobs stop at their
    next cell boundary and return to the registry for any replica to
    finish; ``SIGINT``/Ctrl-C stops without draining (state is still
    recoverable — everything important is already durable)."""

    async def _main() -> None:
        server = ServiceServer(
            scheduler, host=host, port=port, read_timeout=read_timeout
        )
        await server.start()
        print(f"serving on {server.url}", flush=True)
        assert server._server is not None
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        try:
            loop.add_signal_handler(signal.SIGTERM, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # platforms without signal handler support
        async with server._server:
            serve_task = asyncio.ensure_future(server._server.serve_forever())
            stop_task = asyncio.ensure_future(stop.wait())
            await asyncio.wait(
                {serve_task, stop_task}, return_when=asyncio.FIRST_COMPLETED
            )
            if stop.is_set():
                print("SIGTERM: draining and persisting state", flush=True)
                await loop.run_in_executor(None, scheduler.shutdown)
                print("drained; shutting down", flush=True)
            serve_task.cancel()
            stop_task.cancel()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("service interrupted; shutting down", flush=True)
    finally:
        scheduler.stop()

"""Async HTTP face of the simulation service (stdlib asyncio only).

A deliberately small HTTP/1.1 server built on
:func:`asyncio.start_server` — no web framework, matching the repo's
no-new-dependencies rule.  Blocking simulation work never runs on the
event loop: the loop only parses requests, serialises JSON and streams
event-log tails; the :class:`~repro.service.scheduler.JobScheduler`
threads do the simulating.

Routes (all JSON; ``Connection: close`` per request):

=======  ==============================  =====================================
GET      /healthz                        liveness + job-state totals
GET      /metrics                        Prometheus text exposition of the
                                         active telemetry registry plus
                                         scheduler/store counters
GET      /api/v1/experiments             registered experiment names
GET      /api/v1/store/stats             result-store statistics
POST     /api/v1/jobs                    submit a job spec → 202 + status
GET      /api/v1/jobs                    list all jobs (oldest first)
GET      /api/v1/jobs/<id>               one job's status
GET      /api/v1/jobs/<id>/events        NDJSON event stream (chunked);
                                         ``?from=N`` resumes at seq N
GET      /api/v1/jobs/<id>/result        result document (409 until done)
GET      /api/v1/jobs/<id>/manifest      job manifest (409 until done)
=======  ==============================  =====================================

The event stream is plain newline-delimited JSON over chunked
transfer encoding: one object per event, ending when the job reaches
a terminal state (every event is flushed before the terminal state is
set, so the stream never truncates).
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any, Dict, Optional, Tuple

from repro.service.jobs import Job
from repro.service.protocol import SERVICE_SCHEMA, JobSpecError
from repro.service.scheduler import JobScheduler

#: maximum accepted request-body size (a full 48-cell sweep spec is ~20 kB)
MAX_BODY_BYTES = 4 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class ServiceServer:
    """One service instance: a scheduler plus its asyncio HTTP server.

    Construct, then either ``await serve_forever()`` on a running loop
    (the CLI path) or call :meth:`start_background` to run loop and
    server on a daemon thread (the test / embedding path)."""

    def __init__(
        self,
        scheduler: JobScheduler,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()

    # -- request plumbing ----------------------------------------------

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        """Parse one HTTP/1.1 request; ``None`` on malformed input."""
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            return None
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length < 0 or length > MAX_BODY_BYTES:
            return method, target, headers, b"\x00"  # sentinel: too large
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    @staticmethod
    def _json_bytes(payload: Any) -> bytes:
        return json.dumps(payload, sort_keys=True).encode("utf-8")

    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
    ) -> None:
        body = self._json_bytes(payload) + b"\n"
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    async def _send_text(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: str,
        content_type: str = "text/plain; charset=utf-8",
    ) -> None:
        encoded = body.encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(encoded)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + encoded)
        await writer.drain()

    async def _send_error(
        self, writer: asyncio.StreamWriter, status: int, message: str
    ) -> None:
        await self._send_json(
            writer,
            status,
            {"schema": SERVICE_SCHEMA, "error": message, "status": status},
        )

    # -- routing -------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one connection (one request; ``Connection: close``)."""
        try:
            parsed = await self._read_request(reader)
            if parsed is None:
                return
            method, target, _headers, body = parsed
            if body == b"\x00":
                await self._send_error(writer, 413, "request body too large")
                return
            path, _, query = target.partition("?")
            await self._route(writer, method, path, query, body)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # the server must outlive a bad handler
            try:
                await self._send_error(
                    writer, 500, f"{type(exc).__name__}: {exc}"
                )
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _route(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        query: str,
        body: bytes,
    ) -> None:
        if path == "/healthz" and method == "GET":
            await self._send_json(
                writer,
                200,
                {
                    "schema": SERVICE_SCHEMA,
                    "ok": True,
                    "jobs": self.scheduler.counts(),
                },
            )
            return
        if path == "/metrics" and method == "GET":
            from repro.telemetry.core import get_registry
            from repro.telemetry.exposition import render_prometheus

            text = render_prometheus(
                get_registry(),
                job_counts=self.scheduler.counts(),
                store_stats=self.scheduler.store.stats(),
            )
            await self._send_text(
                writer,
                200,
                text,
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
            return
        if path == "/api/v1/experiments" and method == "GET":
            from repro.harness.experiments import SPECS

            await self._send_json(
                writer,
                200,
                {
                    "schema": SERVICE_SCHEMA,
                    "experiments": {
                        name: SPECS[name].summary for name in sorted(SPECS)
                    },
                },
            )
            return
        if path == "/api/v1/store/stats" and method == "GET":
            await self._send_json(
                writer,
                200,
                {"schema": SERVICE_SCHEMA, "store": self.scheduler.store.stats()},
            )
            return
        if path == "/api/v1/jobs" and method == "POST":
            try:
                payload = json.loads(body.decode("utf-8")) if body else None
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                await self._send_error(writer, 400, f"invalid JSON body: {exc}")
                return
            try:
                job = await asyncio.get_running_loop().run_in_executor(
                    None, self.scheduler.submit, payload
                )
            except JobSpecError as exc:
                await self._send_error(writer, 400, str(exc))
                return
            await self._send_json(writer, 202, job.status_dict())
            return
        if path == "/api/v1/jobs" and method == "GET":
            await self._send_json(
                writer,
                200,
                {"schema": SERVICE_SCHEMA, "jobs": self.scheduler.list_jobs()},
            )
            return
        if path.startswith("/api/v1/jobs/"):
            await self._route_job(writer, method, path, query)
            return
        await self._send_error(writer, 404, f"no route for {method} {path}")

    async def _route_job(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        query: str,
    ) -> None:
        parts = path[len("/api/v1/jobs/") :].split("/")
        job = self.scheduler.get(parts[0])
        if job is None:
            await self._send_error(writer, 404, f"unknown job {parts[0]!r}")
            return
        if method != "GET":
            await self._send_error(writer, 405, f"{method} not allowed here")
            return
        action = parts[1] if len(parts) > 1 else ""
        if action == "":
            await self._send_json(writer, 200, job.status_dict())
        elif action == "events":
            await self._stream_events(writer, job, query)
        elif action == "result":
            if not job.done:
                await self._send_error(
                    writer, 409, f"job {job.id} is {job.state.value}"
                )
            elif job.result is None:
                await self._send_error(writer, 409, job.error or "job failed")
            else:
                await self._send_json(writer, 200, job.result)
        elif action == "manifest":
            if job.manifest is None:
                await self._send_error(
                    writer, 409, f"job {job.id} has no manifest yet"
                )
            else:
                await self._send_json(writer, 200, job.manifest)
        else:
            await self._send_error(writer, 404, f"no job action {action!r}")

    async def _stream_events(
        self, writer: asyncio.StreamWriter, job: Job, query: str
    ) -> None:
        """Chunked NDJSON tail of the job's event log until terminal."""
        offset = 0
        for pair in query.split("&"):
            key, _, value = pair.partition("=")
            if key == "from" and value.isdigit():
                offset = int(value)
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Cache-Control: no-store\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head)
        await writer.drain()
        while True:
            events = job.log.events_since(offset)
            if events:
                offset += len(events)
                chunk = b"".join(
                    self._json_bytes(event) + b"\n" for event in events
                )
                writer.write(f"{len(chunk):x}\r\n".encode("latin-1"))
                writer.write(chunk + b"\r\n")
                await writer.drain()
                continue
            # terminal state is set only after the final event lands, so
            # done + drained log means the stream is complete
            if job.done:
                break
            await asyncio.get_running_loop().run_in_executor(
                None, job.log.wait_beyond, offset, 0.25
            )
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    # -- server lifecycle ----------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket (resolves an ephemeral port)."""
        self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        self._ready.set()

    async def serve_forever(self) -> None:
        """Bind (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    @property
    def url(self) -> str:
        """Base URL of the bound server (valid after :meth:`start`)."""
        return f"http://{self.host}:{self.port}"

    def start_background(self, timeout: float = 10.0) -> str:
        """Run the event loop + server on a daemon thread; returns the
        base URL once the socket is bound."""

        def _run() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            try:
                loop.run_until_complete(self.start())
                loop.run_forever()
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=_run, name="repro-service-http", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("service HTTP server failed to start")
        return self.url

    def stop_background(self, timeout: float = 10.0) -> None:
        """Stop a background server started by :meth:`start_background`."""
        loop, server = self._loop, self._server

        def _shutdown() -> None:
            if server is not None:
                server.close()
            assert loop is not None
            loop.stop()

        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(_shutdown)
        if self._thread is not None:
            self._thread.join(timeout)
        self.scheduler.stop()


def serve(
    scheduler: JobScheduler,
    host: str = "127.0.0.1",
    port: int = 8787,
) -> None:
    """Blocking entry point for ``python -m repro.harness serve``.

    Prints the bound URL (flushed, so wrappers can scrape the
    ephemeral port when *port* is 0) and serves until interrupted."""

    async def _main() -> None:
        server = ServiceServer(scheduler, host=host, port=port)
        await server.start()
        print(f"serving on {server.url}", flush=True)
        assert server._server is not None
        async with server._server:
            await server._server.serve_forever()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("service interrupted; shutting down", flush=True)
    finally:
        scheduler.stop()

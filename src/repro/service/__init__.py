"""Simulation-as-a-service: async HTTP API, job scheduler, result store.

The long-running, multi-tenant face of the harness (docs/SERVICE.md).
Three cooperating layers, each usable on its own:

* :mod:`repro.service.store` — a persistent, content-addressed
  :class:`~repro.service.store.ResultStore`: completed simulation
  cells keyed by (content cell key, resolved trace key) in SQLite,
  checksummed payloads, hit/miss/dedup telemetry.  The promotion of
  the PR 4 checkpoint journal from per-run file to shared database.
* :mod:`repro.service.scheduler` + :mod:`repro.service.jobs` — a
  sharded job queue: submitted plans become
  :class:`~repro.service.jobs.Job` values whose cells execute through
  the existing :class:`~repro.harness.runner.RunPlan` backends
  (retries, timeouts, quarantine, engine-class batching all intact),
  store-aware so overlapping jobs share results, with per-cell
  progress events on a streamable
  :class:`~repro.service.jobs.JobEventLog`.
* :mod:`repro.service.api` — a stdlib-asyncio HTTP server exposing
  submit / status / NDJSON event streaming / results / store stats;
  no framework dependency.

Wire formats (job specs, serialised cells, manifests) live in
:mod:`repro.service.protocol`.
"""

from repro.service.jobs import Job, JobEventLog, JobState
from repro.service.protocol import (
    SERVICE_SCHEMA,
    JobSpecError,
    parse_job_spec,
    request_from_dict,
    request_to_dict,
)
from repro.service.scheduler import JobScheduler
from repro.service.store import ResultStore

__all__ = [
    "Job",
    "JobEventLog",
    "JobScheduler",
    "JobSpecError",
    "JobState",
    "ResultStore",
    "SERVICE_SCHEMA",
    "parse_job_spec",
    "request_from_dict",
    "request_to_dict",
]

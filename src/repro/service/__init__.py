"""Simulation-as-a-service: async HTTP API, job scheduler, result store.

The long-running, multi-tenant face of the harness (docs/SERVICE.md).
Five cooperating layers, each usable on its own:

* :mod:`repro.service.store` — a persistent, content-addressed
  :class:`~repro.service.store.ResultStore`: completed simulation
  cells keyed by (content cell key, resolved trace key) in SQLite,
  checksummed payloads, hit/miss/dedup telemetry.  The promotion of
  the PR 4 checkpoint journal from per-run file to shared database.
* :mod:`repro.service.registry` — the durable
  :class:`~repro.service.registry.JobRegistry` sharing the store's
  database file: job rows, persisted event logs, and owner leases, so
  restarted or additional replicas recover submitted/running jobs and
  resume ``/events`` streams exactly-once.
* :mod:`repro.service.admission` — API keys, per-client token-bucket
  rate limits, in-flight quotas and bounded-queue load shedding
  (``429 + Retry-After``) via the
  :class:`~repro.service.admission.AdmissionController`.
* :mod:`repro.service.scheduler` + :mod:`repro.service.jobs` — a
  sharded job queue: submitted plans become
  :class:`~repro.service.jobs.Job` values whose cells execute through
  the existing :class:`~repro.harness.runner.RunPlan` backends
  (retries, timeouts, quarantine, engine-class batching all intact),
  store-aware so overlapping jobs share results, with per-cell
  progress events on a streamable (and registry-backed, memory-
  bounded) :class:`~repro.service.jobs.JobEventLog`; cooperative
  cancellation and lease-based crash recovery included.
* :mod:`repro.service.api` — a stdlib-asyncio HTTP server exposing
  submit / status / cancel / NDJSON event streaming / results /
  store stats / health + readiness probes; no framework dependency.

Wire formats (job specs, serialised cells, manifests) live in
:mod:`repro.service.protocol`.
"""

from repro.service.admission import (
    AdmissionController,
    AdmissionError,
    ClientQuota,
    Keyring,
    TokenBucket,
)
from repro.service.jobs import Job, JobEventLog, JobState
from repro.service.protocol import (
    SERVICE_SCHEMA,
    JobSpecError,
    parse_job_spec,
    request_from_dict,
    request_to_dict,
)
from repro.service.registry import JobRegistry, replica_id
from repro.service.scheduler import JobScheduler
from repro.service.store import ResultStore

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "ClientQuota",
    "Job",
    "JobEventLog",
    "JobRegistry",
    "JobScheduler",
    "JobSpecError",
    "JobState",
    "Keyring",
    "ResultStore",
    "SERVICE_SCHEMA",
    "TokenBucket",
    "parse_job_spec",
    "replica_id",
    "request_from_dict",
    "request_to_dict",
]

"""Job model of the simulation service: states, event log, registry.

A submitted plan becomes a :class:`Job`: a queued unit of work with a
monotonically growing, thread-safe :class:`JobEventLog` that the HTTP
layer streams to clients as NDJSON while scheduler threads append to
it.  Job state moves strictly ``queued → running → completed|failed``;
the terminal transition happens *after* the final event is appended,
so a streamer that observes a terminal state has already seen every
event.
"""

from __future__ import annotations

import enum
import threading
import time
import uuid
from typing import Any, Dict, List, Optional

from repro.service.protocol import SERVICE_SCHEMA, ParsedJobSpec


class JobState(str, enum.Enum):
    """Lifecycle of one job (strictly forward-moving)."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"


class JobEventLog:
    """Append-only, thread-safe event sequence with blocking reads.

    Scheduler threads :meth:`append`; streamers poll
    :meth:`events_since` (cheap slice) or block on :meth:`wait_beyond`
    until new events land.  Events are plain dicts stamped with the
    service schema, a per-log sequence number and a wall-clock time."""

    def __init__(self) -> None:
        self._events: List[Dict[str, Any]] = []
        self._condition = threading.Condition()

    def append(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Append one event; returns the stamped record."""
        with self._condition:
            record = {
                "schema": SERVICE_SCHEMA,
                "event": event,
                "seq": len(self._events),
                "t_s": time.time(),
                **fields,
            }
            self._events.append(record)
            self._condition.notify_all()
        return record

    def events_since(self, offset: int) -> List[Dict[str, Any]]:
        """Every event with ``seq >= offset`` (possibly empty)."""
        with self._condition:
            return list(self._events[offset:])

    def wait_beyond(self, offset: int, timeout: float = 1.0) -> bool:
        """Block until an event with ``seq >= offset`` exists (or
        *timeout* elapses); returns whether one does."""
        with self._condition:
            if len(self._events) > offset:
                return True
            self._condition.wait(timeout)
            return len(self._events) > offset

    def __len__(self) -> int:
        with self._condition:
            return len(self._events)


class Job:
    """One submitted plan moving through the service.

    Everything mutable is guarded by the job's lock; ``status_dict``
    is the JSON the status endpoint returns, ``result``/``manifest``
    are populated atomically *before* the terminal state transition."""

    def __init__(self, spec: ParsedJobSpec, job_id: Optional[str] = None) -> None:
        self.id = job_id or f"job-{uuid.uuid4().hex[:12]}"
        self.spec = spec
        self.log = JobEventLog()
        self.submitted_s = time.time()
        self.started_s: Optional[float] = None
        self.finished_s: Optional[float] = None
        self.result: Optional[Dict[str, Any]] = None
        self.manifest: Optional[Dict[str, Any]] = None
        self.error: Optional[str] = None
        self._state = JobState.QUEUED
        self._lock = threading.Lock()

    @property
    def state(self) -> JobState:
        """Current lifecycle state (thread-safe read)."""
        with self._lock:
            return self._state

    @property
    def done(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.state in (JobState.COMPLETED, JobState.FAILED)

    def mark_running(self) -> None:
        """Transition ``queued → running`` (scheduler-thread only)."""
        with self._lock:
            self._state = JobState.RUNNING
            self.started_s = time.time()

    def complete(
        self, result: Dict[str, Any], manifest: Dict[str, Any]
    ) -> None:
        """Attach the result + manifest, then go terminal."""
        with self._lock:
            self.result = result
            self.manifest = manifest
            self.finished_s = time.time()
            self._state = JobState.COMPLETED

    def fail(self, error: str, manifest: Optional[Dict[str, Any]] = None) -> None:
        """Record the failure reason, then go terminal."""
        with self._lock:
            self.error = error
            self.manifest = manifest
            self.finished_s = time.time()
            self._state = JobState.FAILED

    def status_dict(self) -> Dict[str, Any]:
        """The JSON body of ``GET /api/v1/jobs/<id>``."""
        with self._lock:
            return {
                "schema": SERVICE_SCHEMA,
                "job_id": self.id,
                "kind": self.spec.kind,
                "name": self.spec.name,
                "state": self._state.value,
                "cells": len(self.spec.cells),
                "events": len(self.log),
                "submitted_s": self.submitted_s,
                "started_s": self.started_s,
                "finished_s": self.finished_s,
                "error": self.error,
            }

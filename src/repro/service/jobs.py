"""Job model of the simulation service: states, event log, registry.

A submitted plan becomes a :class:`Job`: a queued unit of work with a
monotonically growing, thread-safe :class:`JobEventLog` that the HTTP
layer streams to clients as NDJSON while scheduler threads append to
it.  Job state moves strictly ``queued → running →
completed|failed|cancelled``; the terminal transition happens *after*
the final event is appended, so a streamer that observes a terminal
state has already seen every event.

The event log can be bound to a durable backing (the
``job_events`` table via
:class:`repro.service.registry.RegistryEventBacking`): every appended
event is persisted *before* it becomes visible in memory, and once the
in-memory window exceeds :data:`EVENT_MEMORY_CAP` the oldest entries
are dropped from RAM — :meth:`JobEventLog.events_since` transparently
re-reads the spilled prefix from the backing, so ``/events?from=N``
behaves identically whether the requested offset lives in memory, on
disk, or straddles the boundary.
"""

from __future__ import annotations

import enum
import threading
import time
import uuid
from typing import Any, Dict, List, Optional

from repro.service.protocol import SERVICE_SCHEMA, ParsedJobSpec

#: in-memory event-window cap when a durable backing is attached;
#: beyond this, the oldest events live only in the registry
EVENT_MEMORY_CAP = 1024


class JobState(str, enum.Enum):
    """Lifecycle of one job (strictly forward-moving)."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"


class JobEventLog:
    """Append-only, thread-safe event sequence with blocking reads.

    Scheduler threads :meth:`append`; streamers poll
    :meth:`events_since` (cheap slice for in-memory offsets) or block
    on :meth:`wait_beyond` until new events land.  Events are plain
    dicts stamped with the service schema, a per-log sequence number
    and a wall-clock time.

    With a *backing* (durable registry adapter exposing
    ``append(record)`` / ``read(start, stop)``) the log persists every
    record before publishing it and bounds its in-memory window to
    *max_memory* events; *base* seeds the sequence counter past events
    already persisted by a previous process (restart recovery)."""

    def __init__(
        self,
        backing: Optional[Any] = None,
        base: int = 0,
        max_memory: Optional[int] = None,
    ) -> None:
        self._events: List[Dict[str, Any]] = []
        self._condition = threading.Condition()
        self._backing = backing
        self._base = base  # seq of the first in-memory event
        self._total = base  # total events ever appended (next seq)
        if max_memory is None and backing is not None:
            max_memory = EVENT_MEMORY_CAP
        self._max_memory = max_memory

    def append(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Append one event; returns the stamped record.

        With a durable backing the record is persisted first, so any
        event a streamer can observe is already crash-safe."""
        with self._condition:
            record = {
                "schema": SERVICE_SCHEMA,
                "event": event,
                "seq": self._total,
                "t_s": time.time(),
                **fields,
            }
            if self._backing is not None:
                self._backing.append(record)
            self._events.append(record)
            self._total += 1
            if (
                self._max_memory is not None
                and self._backing is not None
                and len(self._events) > self._max_memory
            ):
                spill = len(self._events) - self._max_memory
                del self._events[:spill]
                self._base += spill
            self._condition.notify_all()
        return record

    def events_since(self, offset: int) -> List[Dict[str, Any]]:
        """Every event with ``seq >= offset`` (possibly empty).

        Offsets below the in-memory window are served from the durable
        backing and stitched seamlessly onto the in-memory tail."""
        with self._condition:
            base = self._base
            tail = list(self._events[max(0, offset - base):])
        if offset >= base or self._backing is None:
            return tail
        prefix = self._backing.read(offset, base)
        return prefix + tail

    def wait_beyond(self, offset: int, timeout: float = 1.0) -> bool:
        """Block until an event with ``seq >= offset`` exists (or
        *timeout* elapses); returns whether one does."""
        with self._condition:
            if self._total > offset:
                return True
            self._condition.wait(timeout)
            return self._total > offset

    def __len__(self) -> int:
        with self._condition:
            return self._total


class Job:
    """One submitted plan moving through the service.

    Everything mutable is guarded by the job's lock; ``status_dict``
    is the JSON the status endpoint returns, ``result``/``manifest``
    are populated atomically *before* the terminal state transition.

    ``cancel_requested`` is the cooperative cancellation flag: the
    HTTP layer (or the registry poll, for cross-replica cancels) sets
    it, the scheduler checks it between cells and lands the job in
    ``cancelled`` with whatever partial results made it to the store.
    ``suspended`` marks a job handed back to the registry by a
    draining replica — streamers treat it like a terminal event for
    *this* process while the job itself stays recoverable."""

    def __init__(
        self,
        spec: ParsedJobSpec,
        job_id: Optional[str] = None,
        log: Optional[JobEventLog] = None,
    ) -> None:
        self.id = job_id or f"job-{uuid.uuid4().hex[:12]}"
        self.spec = spec
        self.log = log if log is not None else JobEventLog()
        self.client = ""
        self.submitted_s = time.time()
        self.started_s: Optional[float] = None
        self.finished_s: Optional[float] = None
        self.result: Optional[Dict[str, Any]] = None
        self.manifest: Optional[Dict[str, Any]] = None
        self.error: Optional[str] = None
        self.suspended = False
        self._cancel_requested = False
        self._state = JobState.QUEUED
        self._lock = threading.Lock()

    @property
    def state(self) -> JobState:
        """Current lifecycle state (thread-safe read)."""
        with self._lock:
            return self._state

    @property
    def done(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.state in (
            JobState.COMPLETED,
            JobState.FAILED,
            JobState.CANCELLED,
        )

    @property
    def cancel_requested(self) -> bool:
        """Whether anyone asked this job to stop."""
        with self._lock:
            return self._cancel_requested

    def request_cancel(self) -> bool:
        """Set the cooperative cancel flag; ``False`` when the job is
        already terminal (nothing to cancel)."""
        with self._lock:
            if self._state in (
                JobState.COMPLETED,
                JobState.FAILED,
                JobState.CANCELLED,
            ):
                return False
            self._cancel_requested = True
            return True

    def mark_running(self) -> None:
        """Transition ``queued → running`` (scheduler-thread only)."""
        with self._lock:
            self._state = JobState.RUNNING
            self.started_s = time.time()

    def complete(
        self, result: Dict[str, Any], manifest: Dict[str, Any]
    ) -> None:
        """Attach the result + manifest, then go terminal."""
        with self._lock:
            self.result = result
            self.manifest = manifest
            self.finished_s = time.time()
            self._state = JobState.COMPLETED

    def fail(self, error: str, manifest: Optional[Dict[str, Any]] = None) -> None:
        """Record the failure reason, then go terminal."""
        with self._lock:
            self.error = error
            self.manifest = manifest
            self.finished_s = time.time()
            self._state = JobState.FAILED

    def mark_cancelled(
        self,
        result: Optional[Dict[str, Any]] = None,
        manifest: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Land in terminal ``cancelled``, keeping any partial result
        payload (everything computed so far stays in the store)."""
        with self._lock:
            self.result = result
            self.manifest = manifest
            self.finished_s = time.time()
            self._state = JobState.CANCELLED

    def status_dict(self) -> Dict[str, Any]:
        """The JSON body of ``GET /api/v1/jobs/<id>``."""
        with self._lock:
            return {
                "schema": SERVICE_SCHEMA,
                "job_id": self.id,
                "kind": self.spec.kind,
                "name": self.spec.name,
                "state": self._state.value,
                "cells": len(self.spec.cells),
                "events": len(self.log),
                "submitted_s": self.submitted_s,
                "started_s": self.started_s,
                "finished_s": self.finished_s,
                "error": self.error,
                "cancel_requested": self._cancel_requested,
            }

"""Persistent, content-addressed result store (SQLite-backed).

The promotion of the PR 4 checkpoint journal from a per-run NDJSON
file to a durable, shared cache: every completed simulation cell is
stored under its **content address** — the
:func:`~repro.harness.checkpoint.cell_key` content hash of (config +
program + instructions + seed + layout + warmup) paired with the
fully resolved corpus trace key — so any later plan containing the
same cell is served the stored report verbatim instead of
re-simulating.  Concurrent jobs with overlapping design-space points
(the normal case when sweeping BTB/NLS capacity regimes) therefore
pay for each unique cell once, service-wide.

Properties:

* **content addressing** — the key is derived from *what* is being
  simulated, never from who asked; the trace key participates so a
  changed ``REPRO_TRACE_SCALE`` (which silently rescales every trace)
  misses instead of resurrecting stale results, exactly like journal
  ``--resume`` (DESIGN.md §12);
* **verbatim payloads** — reports round-trip through the checkpoint
  serialisers (:func:`~repro.harness.checkpoint.report_to_dict`),
  keeping their original ``meta``/``manifest`` provenance, so a cell
  served from the store is byte-identical to the run that produced it;
* **integrity** — payloads are SHA-256 checksummed on write
  (:func:`~repro.harness.checkpoint.payload_digest`) and re-verified
  on every read; a corrupt row is evicted and counted, surfacing as a
  cache miss rather than a wrong number;
* **concurrency** — WAL journal mode, a busy timeout and one
  interlocked connection per store instance make the store safe for
  the service's scheduler threads and for multiple processes sharing
  one database file;
* **telemetry** — ``store.hits`` / ``store.misses`` / ``store.puts``
  / ``store.dedup_skips`` / ``store.corrupt_evictions`` counters on
  the active registry, the numbers job manifests stamp.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Mapping, Optional

from repro.harness.checkpoint import (
    cell_key,
    payload_digest,
    report_from_dict,
    report_to_dict,
)
from repro.metrics.report import SimulationReport
from repro.telemetry.core import get_registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.harness.checkpoint import CheckpointJournal
    from repro.harness.runner import RunRequest

#: store schema stamp (bump on any table change)
STORE_SCHEMA = "repro-store/v1"

#: default store filename used by the CLI when none is given
DEFAULT_STORE_NAME = "repro-store.sqlite"

_TABLE_DDL = """
CREATE TABLE IF NOT EXISTS results (
    cell_key    TEXT    NOT NULL,
    trace_key   TEXT    NOT NULL,
    config_label TEXT   NOT NULL,
    program     TEXT    NOT NULL,
    schema      TEXT    NOT NULL,
    payload     TEXT    NOT NULL,
    payload_sha TEXT    NOT NULL,
    created_s   REAL    NOT NULL,
    last_hit_s  REAL    NOT NULL,
    hits        INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (cell_key, trace_key)
)
"""


def _trace_key_text(request: "RunRequest") -> str:
    """Canonical JSON form of the request's fully resolved trace key."""
    return json.dumps(list(request.resolved_trace_key()))


class ResultStore:
    """Content-addressed cache of completed simulation cells.

    One instance wraps one SQLite database file (created on demand)
    and is safe to share across threads; separate processes open their
    own instances on the same path.  ``fetch``/``put_many`` are the
    plan-level contract :meth:`repro.harness.runner.RunPlan.execute`
    drives when given a store.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(path, check_same_thread=False)
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute("PRAGMA busy_timeout=10000")
            self._conn.execute(_TABLE_DDL)
            self._conn.commit()

    # -- core get/put --------------------------------------------------

    def get(self, request: "RunRequest") -> Optional[SimulationReport]:
        """The stored report for *request*, or ``None`` on a miss.

        Hits re-verify the payload checksum (corrupt rows are evicted
        and counted as misses) and bump the row's hit statistics."""
        registry = get_registry()
        key = cell_key(request)
        trace = _trace_key_text(request)
        with self._lock:
            row = self._conn.execute(
                "SELECT payload, payload_sha FROM results "
                "WHERE cell_key = ? AND trace_key = ?",
                (key, trace),
            ).fetchone()
            if row is None:
                registry.counter("store.misses").add()
                return None
            payload_text, recorded_sha = row
            if payload_digest(payload_text) != recorded_sha:
                self._conn.execute(
                    "DELETE FROM results WHERE cell_key = ? AND trace_key = ?",
                    (key, trace),
                )
                self._conn.commit()
                registry.counter("store.corrupt_evictions").add()
                registry.counter("store.misses").add()
                return None
            self._conn.execute(
                "UPDATE results SET hits = hits + 1, last_hit_s = ? "
                "WHERE cell_key = ? AND trace_key = ?",
                (time.time(), key, trace),
            )
            self._conn.commit()
        registry.counter("store.hits").add()
        return report_from_dict(json.loads(payload_text))

    def put(self, request: "RunRequest", report: SimulationReport) -> bool:
        """Store one completed cell; returns ``True`` when inserted.

        An already-present key is left untouched (first write wins, so
        concurrent jobs racing on the same cell keep one canonical
        payload) and counted as a ``store.dedup_skips``."""
        registry = get_registry()
        payload_text = json.dumps(report_to_dict(report), sort_keys=True)
        now = time.time()
        with self._lock:
            cursor = self._conn.execute(
                "INSERT OR IGNORE INTO results "
                "(cell_key, trace_key, config_label, program, schema, "
                " payload, payload_sha, created_s, last_hit_s, hits) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, 0)",
                (
                    cell_key(request),
                    _trace_key_text(request),
                    request.config.label(),
                    request.program,
                    STORE_SCHEMA,
                    payload_text,
                    payload_digest(payload_text),
                    now,
                    now,
                ),
            )
            self._conn.commit()
            inserted = cursor.rowcount == 1
        if inserted:
            registry.counter("store.puts").add()
        else:
            registry.counter("store.dedup_skips").add()
        return inserted

    # -- plan-level contract -------------------------------------------

    def fetch(
        self, requests: Iterable["RunRequest"]
    ) -> Dict["RunRequest", SimulationReport]:
        """Stored reports for every request the store already has."""
        found: Dict["RunRequest", SimulationReport] = {}
        for request in requests:
            report = self.get(request)
            if report is not None:
                found[request] = report
        return found

    def put_many(
        self, results: Mapping["RunRequest", SimulationReport]
    ) -> int:
        """Store every completed cell; returns the inserted count."""
        return sum(
            1 for request, report in results.items() if self.put(request, report)
        )

    # -- maintenance ---------------------------------------------------

    def ping(self) -> bool:
        """Whether the store can execute a query right now (the
        ``/readyz`` reachability probe)."""
        try:
            with self._lock:
                self._conn.execute("SELECT 1").fetchone()
            return True
        except sqlite3.Error:
            return False

    def stats(self) -> Dict[str, Any]:
        """Store statistics: entry/hit totals, sizes, age span."""
        with self._lock:
            entries, total_hits, payload_bytes = self._conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(hits), 0), "
                "COALESCE(SUM(LENGTH(payload)), 0) FROM results"
            ).fetchone()
            programs = self._conn.execute(
                "SELECT COUNT(DISTINCT program) FROM results"
            ).fetchone()[0]
            configs = self._conn.execute(
                "SELECT COUNT(DISTINCT config_label) FROM results"
            ).fetchone()[0]
            oldest, newest = self._conn.execute(
                "SELECT MIN(created_s), MAX(created_s) FROM results"
            ).fetchone()
        return {
            "schema": STORE_SCHEMA,
            "path": self.path,
            "entries": entries,
            "total_hits": total_hits,
            "payload_bytes": payload_bytes,
            "db_bytes": os.path.getsize(self.path)
            if os.path.exists(self.path)
            else 0,
            "programs": programs,
            "configs": configs,
            "oldest_s": oldest,
            "newest_s": newest,
        }

    def gc(
        self,
        max_age_s: Optional[float] = None,
        keep: Optional[int] = None,
    ) -> Dict[str, int]:
        """Prune the store; returns ``{"removed": n, "kept": m}``.

        *max_age_s* drops entries not written or hit within that many
        seconds; *keep* then trims to the newest (by last hit) *keep*
        entries.  With neither bound this only vacuums."""
        removed = 0
        now = time.time()
        with self._lock:
            if max_age_s is not None:
                cursor = self._conn.execute(
                    "DELETE FROM results WHERE MAX(created_s, last_hit_s) < ?",
                    (now - max_age_s,),
                )
                removed += cursor.rowcount
            if keep is not None:
                cursor = self._conn.execute(
                    "DELETE FROM results WHERE (cell_key, trace_key) NOT IN ("
                    " SELECT cell_key, trace_key FROM results "
                    " ORDER BY last_hit_s DESC, created_s DESC LIMIT ?)",
                    (max(keep, 0),),
                )
                removed += cursor.rowcount
            self._conn.commit()
            self._conn.execute("VACUUM")
            kept = self._conn.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()[0]
        get_registry().counter("store.gc_removed").add(removed)
        return {"removed": removed, "kept": kept}

    def verify(self, fix: bool = False) -> Dict[str, Any]:
        """Audit every payload; returns the outcome.

        Three failure modes are detected, each named in the result's
        ``corrupt`` list with a ``reason``: a **checksum-mismatch**
        (the payload no longer hashes to its recorded SHA-256), a
        **missing-payload** (the payload text is empty — the row holds
        nothing to deserialise, even if someone re-stamped the
        checksum to match), and an **unparseable** payload (checksum
        intact but the text is not the JSON object a report round-trip
        needs).  With *fix* the flagged rows are deleted (checksum
        mismatches would be evicted lazily on first read anyway —
        ``verify --fix`` just does it eagerly and reclaims the space;
        the other two modes are only caught here)."""
        corrupt: List[Dict[str, str]] = []
        with self._lock:
            rows = self._conn.execute(
                "SELECT cell_key, trace_key, payload, payload_sha FROM results"
            ).fetchall()
            for key, trace, payload_text, recorded_sha in rows:
                reason = None
                if payload_digest(payload_text) != recorded_sha:
                    reason = "checksum-mismatch"
                elif not payload_text or not payload_text.strip():
                    reason = "missing-payload"
                else:
                    try:
                        parsed = json.loads(payload_text)
                    except json.JSONDecodeError:
                        parsed = None
                    if not isinstance(parsed, dict) or "label" not in parsed:
                        reason = "unparseable"
                if reason is not None:
                    corrupt.append(
                        {"cell_key": key, "trace_key": trace, "reason": reason}
                    )
            if fix and corrupt:
                self._conn.executemany(
                    "DELETE FROM results WHERE cell_key = ? AND trace_key = ?",
                    [(entry["cell_key"], entry["trace_key"]) for entry in corrupt],
                )
                self._conn.commit()
        return {
            "checked": len(rows),
            "corrupt": corrupt,
            "removed": len(corrupt) if fix else 0,
            "ok": not corrupt,
        }

    def import_journal(self, journal: "CheckpointJournal") -> int:
        """Promote a per-run checkpoint journal into the store.

        Every well-formed journal entry becomes a store row under the
        same (cell key, trace key) address the journal recorded;
        returns the number of newly inserted cells.  The migration
        path from PR 4 checkpoint directories to the shared store."""
        registry = get_registry()
        inserted = 0
        now = time.time()
        for key, entry in journal.load().items():
            payload_text = json.dumps(entry["report"], sort_keys=True)
            with self._lock:
                cursor = self._conn.execute(
                    "INSERT OR IGNORE INTO results "
                    "(cell_key, trace_key, config_label, program, schema, "
                    " payload, payload_sha, created_s, last_hit_s, hits) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, 0)",
                    (
                        key,
                        json.dumps(entry.get("trace_key", [])),
                        entry.get("config", {}).get("label", ""),
                        entry.get("program", ""),
                        STORE_SCHEMA,
                        payload_text,
                        payload_digest(payload_text),
                        now,
                        now,
                    ),
                )
                self._conn.commit()
                if cursor.rowcount == 1:
                    inserted += 1
        if inserted:
            registry.counter("store.puts").add(inserted)
        return inserted

    def close(self) -> None:
        """Close the connection (safe to call repeatedly)."""
        with self._lock:
            try:
                self._conn.close()
            except sqlite3.ProgrammingError:  # pragma: no cover - already closed
                pass

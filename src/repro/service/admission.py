"""Admission control: API keys, token buckets, quotas, load shedding.

The gatekeeper between :class:`~repro.service.api.ServiceServer` and
:class:`~repro.service.scheduler.JobScheduler`.  Every submission
passes three gates, in order:

1. **authentication** — when a keyring is loaded (``serve --keys``),
   API requests must carry ``Authorization: Bearer <key>``; the key
   resolves to a client name that scopes every later limit.  Without
   a keyring the service stays open and all traffic shares the
   ``anonymous`` client (preserving the PR 7 zero-config demo path);
2. **rate** — a per-client token bucket (``rate`` refills/s up to
   ``burst``); an empty bucket sheds with ``429`` and an honest
   ``Retry-After`` computed from the refill rate;
3. **capacity** — a global bounded submit queue plus per-client
   in-flight job and cell caps, so one tenant's 10,000-cell sweep
   cannot starve the others; breaches shed with ``429`` rather than
   queueing unbounded work.

Everything here is deliberately clock-injectable (``clock=``) so the
tests exercise bucket refill and Retry-After arithmetic without
sleeping, and every shed increments ``service.requests_shed`` so the
``/metrics`` scrape shows degradation before clients do.
"""

from __future__ import annotations

import json
import math
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import telemetry

#: keyfile schema stamp (see docs/SERVICE.md for the format)
KEYS_SCHEMA = "repro-keys/v1"

#: client name used when no keyring is configured
ANONYMOUS = "anonymous"


class AdmissionError(Exception):
    """A request the admission layer refused; carries the HTTP status
    and (for shedding) the ``Retry-After`` hint."""

    def __init__(
        self, status: int, message: str, retry_after: Optional[float] = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after = retry_after


@dataclass
class ClientQuota:
    """Per-client limits; ``None`` anywhere means unlimited."""

    rate: Optional[float] = None  # token-bucket refill, requests/s
    burst: int = 10  # token-bucket capacity
    max_jobs: Optional[int] = None  # in-flight job cap
    max_cells: Optional[int] = None  # in-flight cell cap

    def merged(self, overrides: Dict[str, Any]) -> "ClientQuota":
        """A copy with any keyfile per-client overrides applied."""
        return ClientQuota(
            rate=overrides.get("rate", self.rate),
            burst=int(overrides.get("burst", self.burst)),
            max_jobs=overrides.get("max_jobs", self.max_jobs),
            max_cells=overrides.get("max_cells", self.max_cells),
        )


class TokenBucket:
    """Classic token bucket with lazy refill; thread-safe."""

    def __init__(
        self,
        rate: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = float(rate)
        self.burst = max(1, int(burst))
        self._clock = clock
        self._tokens = float(self.burst)
        self._stamp = clock()
        self._lock = threading.Lock()

    def try_take(self) -> Tuple[bool, float]:
        """Take one token; returns ``(ok, retry_after_s)`` where the
        hint is how long until a token will be available."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                float(self.burst), self._tokens + (now - self._stamp) * self.rate
            )
            self._stamp = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True, 0.0
            needed = 1.0 - self._tokens
            return False, needed / self.rate if self.rate > 0 else 60.0


class Keyring:
    """API keys → client names (+ per-client quota overrides)."""

    def __init__(self, entries: Optional[List[Dict[str, Any]]] = None) -> None:
        self._by_key: Dict[str, Dict[str, Any]] = {}
        for entry in entries or []:
            self._by_key[str(entry["key"])] = entry

    @classmethod
    def load(cls, path: str) -> "Keyring":
        """Load a ``repro-keys/v1`` JSON keyfile."""
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("schema") != KEYS_SCHEMA:
            raise ValueError(
                f"keyfile {path!r}: expected schema {KEYS_SCHEMA!r}, "
                f"got {payload.get('schema')!r}"
            )
        clients = payload.get("clients")
        if not isinstance(clients, list) or not clients:
            raise ValueError(f"keyfile {path!r}: 'clients' must be a non-empty list")
        for entry in clients:
            if "client" not in entry or "key" not in entry:
                raise ValueError(
                    f"keyfile {path!r}: every client entry needs 'client' and 'key'"
                )
        return cls(clients)

    def lookup(self, token: Optional[str]) -> Optional[Dict[str, Any]]:
        """The keyfile entry for a bearer token, or ``None``."""
        if token is None:
            return None
        return self._by_key.get(token)

    def __len__(self) -> int:
        return len(self._by_key)


class AdmissionController:
    """The full admission pipeline shared by every API handler."""

    def __init__(
        self,
        keyring: Optional[Keyring] = None,
        default_quota: Optional[ClientQuota] = None,
        max_queue: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.keyring = keyring
        self.default_quota = default_quota or ClientQuota()
        self.max_queue = max_queue
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: Dict[str, TokenBucket] = {}
        self._quotas: Dict[str, ClientQuota] = {}
        #: per-client in-flight accounting: client -> [jobs, cells]
        self._inflight: Dict[str, List[int]] = {}

    # -- authentication ------------------------------------------------

    def authenticate(self, authorization: Optional[str]) -> str:
        """Resolve an ``Authorization`` header to a client name.

        Open service (no keyring): everyone is ``anonymous``.  With a
        keyring, a missing or unknown bearer token is a 401."""
        if self.keyring is None or len(self.keyring) == 0:
            return ANONYMOUS
        token = None
        if authorization and authorization.lower().startswith("bearer "):
            token = authorization[7:].strip()
        entry = self.keyring.lookup(token)
        if entry is None:
            raise AdmissionError(401, "missing or invalid API key")
        client = str(entry["client"])
        with self._lock:
            if client not in self._quotas:
                self._quotas[client] = self.default_quota.merged(entry)
        return client

    def quota_for(self, client: str) -> ClientQuota:
        """The effective quota for *client*."""
        with self._lock:
            return self._quotas.get(client, self.default_quota)

    # -- admission -----------------------------------------------------

    def check_rate(self, client: str) -> None:
        """Charge one request against the client's token bucket."""
        quota = self.quota_for(client)
        if quota.rate is None:
            return
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(quota.rate, quota.burst, clock=self._clock)
                self._buckets[client] = bucket
        ok, retry_after = bucket.try_take()
        if not ok:
            self._shed()
            raise AdmissionError(
                429,
                f"rate limit exceeded for client {client!r}",
                retry_after=max(1.0, math.ceil(retry_after)),
            )

    def admit(self, client: str, cells: int, queue_depth: int) -> None:
        """Admit one job of *cells* cells, or shed.

        Checks the global bounded queue first (backpressure applies to
        everyone), then the client's in-flight job/cell caps.  On
        success the job is charged to the client's in-flight account —
        callers must pair with :meth:`job_finished`."""
        if self.max_queue is not None and queue_depth >= self.max_queue:
            self._shed()
            raise AdmissionError(
                429,
                f"submit queue full ({queue_depth}/{self.max_queue} jobs queued)",
                retry_after=5.0,
            )
        quota = self.quota_for(client)
        with self._lock:
            jobs, inflight_cells = self._inflight.get(client, [0, 0])
            if quota.max_jobs is not None and jobs >= quota.max_jobs:
                self._shed_locked()
                raise AdmissionError(
                    429,
                    f"client {client!r} already has {jobs} jobs in flight "
                    f"(max {quota.max_jobs})",
                    retry_after=5.0,
                )
            if (
                quota.max_cells is not None
                and inflight_cells + cells > quota.max_cells
            ):
                self._shed_locked()
                raise AdmissionError(
                    429,
                    f"client {client!r} would have {inflight_cells + cells} "
                    f"cells in flight (max {quota.max_cells})",
                    retry_after=5.0,
                )
            self._inflight[client] = [jobs + 1, inflight_cells + cells]

    def job_finished(self, client: str, cells: int) -> None:
        """Return a finished (or rejected-downstream) job's in-flight
        charge to the client's account."""
        with self._lock:
            jobs, inflight_cells = self._inflight.get(client, [0, 0])
            self._inflight[client] = [
                max(0, jobs - 1),
                max(0, inflight_cells - cells),
            ]

    def inflight(self, client: str) -> Tuple[int, int]:
        """Current ``(jobs, cells)`` in flight for *client*."""
        with self._lock:
            jobs, cells = self._inflight.get(client, [0, 0])
            return jobs, cells

    # -- shedding telemetry --------------------------------------------

    def _shed(self) -> None:
        with self._lock:
            self._shed_locked()

    def _shed_locked(self) -> None:
        telemetry.get_registry().counter("service.requests_shed").add(1)

"""Sharded job queue + scheduler of the simulation service.

A fixed pool of scheduler threads drains a FIFO job queue; each job's
cells execute through the existing
:class:`~repro.harness.runner.RunPlan` machinery, so everything PR 4-6
built survives the service boundary unchanged:

* **sharding** — both run-plan backends group cells by (resolved
  trace key, engine-class signature) and replay each shard through
  one shared ``TraceReplayContext``, so batched kernel passes work
  exactly as they do for the CLI; the shard layout is stamped into
  the job manifest (:func:`repro.harness.runner.plan_shards`);
* **resilience** — jobs run under an
  :class:`~repro.harness.runner.ExecutionPolicy` (retries, optional
  per-cell deadline, quarantine instead of abort), so one poisoned
  cell degrades one job instead of the service;
* **result sharing** — execution is store-aware: cells already in the
  :class:`~repro.service.store.ResultStore` are served without
  simulation, and fresh results are persisted, so overlapping jobs —
  concurrent or sequential — pay for each unique cell once.

Per-cell progress (``cell`` events tagged with their provenance
source) and job lifecycle events land on each job's
:class:`~repro.service.jobs.JobEventLog` for the HTTP layer to
stream.
"""

from __future__ import annotations

import queue
import threading
import time
import traceback
from typing import Any, Dict, List, Optional

from repro.harness.checkpoint import cell_key
from repro.harness.runner import (
    ExecutionPolicy,
    RunPlan,
    RunRequest,
    plan_shards,
    quarantined_report,
    resolve_worker_count,
)
from repro.service.jobs import Job, JobState
from repro.service.protocol import job_result_payload, parse_job_spec
from repro.service.store import ResultStore
from repro.telemetry.core import get_registry
from repro.telemetry.manifest import job_manifest

#: observer event → provenance source recorded per cell
_SOURCES = {
    "store-hit": "store",
    "resumed": "resumed",
    "completed": "computed",
    "quarantined": "quarantined",
}


class JobScheduler:
    """Thread pool executing submitted jobs against a shared store.

    *concurrency* scheduler threads run whole jobs in parallel;
    *jobs*/*backend* choose how each job's plan executes its cells
    (``process`` fans shards out to worker processes).  The default
    *policy* quarantines failing cells after two retries so a job
    always terminates with a manifest."""

    def __init__(
        self,
        store: ResultStore,
        backend: str = "serial",
        jobs: Optional[int] = None,
        concurrency: int = 2,
        policy: Optional[ExecutionPolicy] = None,
    ) -> None:
        self.store = store
        self.backend = backend
        self.jobs = None if jobs is None else resolve_worker_count(jobs, warn=False)
        self.concurrency = max(1, int(concurrency))
        self.policy = policy if policy is not None else ExecutionPolicy()
        self._registry_lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._threads: List[threading.Thread] = []
        self._started = False

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Start the scheduler threads (idempotent)."""
        if self._started:
            return
        self._started = True
        for index in range(self.concurrency):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-scheduler-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: float = 10.0) -> None:
        """Stop accepting work and join the scheduler threads."""
        if not self._started:
            return
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout)
        self._threads.clear()
        self._started = False

    # -- submission / lookup -------------------------------------------

    def submit(self, payload: Any) -> Job:
        """Validate *payload* into a job and enqueue it."""
        spec = parse_job_spec(payload)
        job = Job(spec)
        with self._registry_lock:
            self._jobs[job.id] = job
            self._order.append(job.id)
        job.log.append(
            "job-queued",
            job_id=job.id,
            kind=spec.kind,
            name=spec.name,
            cells=len(spec.cells),
        )
        get_registry().counter("service.jobs_submitted").add()
        self._queue.put(job.id)
        return job

    def get(self, job_id: str) -> Optional[Job]:
        """The job with *job_id*, or ``None``."""
        with self._registry_lock:
            return self._jobs.get(job_id)

    def list_jobs(self) -> List[Dict[str, Any]]:
        """Status dicts of every known job, oldest first."""
        with self._registry_lock:
            jobs = [self._jobs[job_id] for job_id in self._order]
        return [job.status_dict() for job in jobs]

    def counts(self) -> Dict[str, int]:
        """Job totals by state (the health endpoint's summary)."""
        totals = {state.value: 0 for state in JobState}
        for status in self.list_jobs():
            totals[status["state"]] += 1
        return totals

    # -- execution -----------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            job = self.get(job_id)
            if job is None:  # pragma: no cover - registry never drops jobs
                continue
            try:
                self._run_job(job)
            except Exception as exc:
                # a scheduler bug must not leave the job spinning
                job.log.append(
                    "job-failed", job_id=job.id, error=f"{type(exc).__name__}: {exc}"
                )
                job.fail(
                    f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
                )
                get_registry().counter("service.jobs_failed").add()

    def _run_job(self, job: Job) -> None:
        registry = get_registry()
        spec = job.spec
        job.mark_running()
        plan = RunPlan(spec.cells)
        shards = plan_shards(plan.requests)
        job.log.append(
            "job-started",
            job_id=job.id,
            cells_requested=plan.requested,
            cells_unique=plan.unique,
            shards=len(shards),
            backend=spec.backend,
            engine=spec.engine,
        )
        sources: Dict[RunRequest, str] = {}

        def observer(event: str, request: RunRequest, payload: Any) -> None:
            source = _SOURCES.get(event, event)
            sources[request] = source
            fields: Dict[str, Any] = {
                "job_id": job.id,
                "cell": cell_key(request),
                "config": request.config.label(),
                "program": request.program,
                "source": source,
            }
            if event == "quarantined":
                fields["error_type"] = payload.error_type
                fields["error"] = payload.message
            job.log.append("cell", **fields)

        started = time.perf_counter()
        reports = plan.execute(
            backend=spec.backend,
            jobs=spec.jobs if spec.jobs is not None else self.jobs,
            policy=self.policy,
            store=self.store,
            observer=observer,
        )
        wall = time.perf_counter() - started
        for request in plan.failures:
            reports[request] = quarantined_report(request)
        rendered = None
        if spec.finish is not None:
            rendered = spec.finish(reports)
        result = job_result_payload(job.id, spec, reports, sources, rendered)
        computed = sum(1 for source in sources.values() if source == "computed")
        manifest = job_manifest(
            job.id,
            counters={
                "kind": spec.kind,
                "name": spec.name,
                "engine": spec.engine,
                "backend": spec.backend,
                "cells_requested": plan.requested,
                "cells_unique": plan.unique,
                "dedup_cells": plan.requested - plan.unique,
                "store_hits": plan.store_hits,
                "store_misses": plan.store_misses,
                "cells_computed": computed,
                "cells_quarantined": len(plan.failures),
                "shard_count": len(shards),
                "shards": shards,
                "wall_time_s": wall,
                "store": self.store.stats(),
            },
        )
        registry.counter("service.jobs_completed").add()
        registry.counter("service.cells_served_from_store").add(plan.store_hits)
        registry.counter("service.cells_computed").add(computed)
        job.log.append(
            "job-completed",
            job_id=job.id,
            cells_unique=plan.unique,
            store_hits=plan.store_hits,
            store_misses=plan.store_misses,
            cells_computed=computed,
            cells_quarantined=len(plan.failures),
            wall_time_s=wall,
        )
        job.complete(result, manifest)

"""Sharded job queue + scheduler of the simulation service.

A fixed pool of scheduler threads drains a FIFO job queue; each job's
cells execute through the existing
:class:`~repro.harness.runner.RunPlan` machinery, so everything PR 4-6
built survives the service boundary unchanged:

* **sharding** — both run-plan backends group cells by (resolved
  trace key, engine-class signature) and replay each shard through
  one shared ``TraceReplayContext``, so batched kernel passes work
  exactly as they do for the CLI; the shard layout is stamped into
  the job manifest (:func:`repro.harness.runner.plan_shards`);
* **resilience** — jobs run under an
  :class:`~repro.harness.runner.ExecutionPolicy` (retries, optional
  per-cell deadline, quarantine instead of abort), so one poisoned
  cell degrades one job instead of the service;
* **result sharing** — execution is store-aware: cells already in the
  :class:`~repro.service.store.ResultStore` are served without
  simulation, and fresh results are persisted, so overlapping jobs —
  concurrent or sequential — pay for each unique cell once.

Since the hardening pass the scheduler is also **durable and
multi-replica**.  Every submission is persisted to the
:class:`~repro.service.registry.JobRegistry` (same SQLite file as the
result store) before it is acknowledged, each event is written
through the registry before streamers can see it, and each completed
cell is put to the store *as it lands* (not just at plan end) — so a
SIGKILLed replica loses at most the cell it was simulating.  A
heartbeat thread renews this replica's leases; a recovery sweep
claims orphaned jobs (crashed peers, or our own pre-restart self) and
re-enqueues them — the store then serves every already-computed cell,
which is what makes recovery cheap.  Cooperative **cancellation**
(:meth:`JobScheduler.request_cancel`, or the registry flag set by any
replica/CLI) stops a running plan between cells and lands the job in
``cancelled`` with its partial results retained.
"""

from __future__ import annotations

import json
import queue
import threading
import time
import traceback
import uuid
from typing import Any, Dict, List, Optional

from repro.harness.checkpoint import cell_key
from repro.harness.runner import (
    ExecutionPolicy,
    RunPlan,
    RunRequest,
    plan_shards,
    quarantined_report,
    resolve_worker_count,
)
from repro.service.admission import AdmissionController
from repro.service.jobs import Job, JobEventLog, JobState
from repro.service.protocol import job_result_payload, parse_job_spec
from repro.service.registry import JobRegistry, replica_id
from repro.service.store import ResultStore
from repro.telemetry.core import get_registry
from repro.telemetry.manifest import job_manifest

#: observer event → provenance source recorded per cell
_SOURCES = {
    "store-hit": "store",
    "resumed": "resumed",
    "completed": "computed",
    "quarantined": "quarantined",
}

#: how often a running plan re-polls the registry cancel flag (s)
_CANCEL_POLL_S = 0.25


class JobScheduler:
    """Thread pool executing submitted jobs against a shared store.

    *concurrency* scheduler threads run whole jobs in parallel;
    *jobs*/*backend* choose how each job's plan executes its cells
    (``process`` fans shards out to worker processes).  The default
    *policy* quarantines failing cells after two retries so a job
    always terminates with a manifest.

    *registry* is the durable job table (defaults to one opened on the
    store's database file); *owner* is this replica's lease identity
    and *lease_s* its lease duration — a replica that misses ~one
    lease of heartbeats forfeits its jobs to peers.  *admission* is
    the optional :class:`~repro.service.admission.AdmissionController`
    the HTTP layer consults; ``None`` (the default, and what the
    in-process tests use) admits everything."""

    def __init__(
        self,
        store: ResultStore,
        backend: str = "serial",
        jobs: Optional[int] = None,
        concurrency: int = 2,
        policy: Optional[ExecutionPolicy] = None,
        registry: Optional[JobRegistry] = None,
        admission: Optional[AdmissionController] = None,
        owner: Optional[str] = None,
        lease_s: float = 15.0,
    ) -> None:
        self.store = store
        self.backend = backend
        self.jobs = None if jobs is None else resolve_worker_count(jobs, warn=False)
        self.concurrency = max(1, int(concurrency))
        self.policy = policy if policy is not None else ExecutionPolicy()
        self.registry = registry if registry is not None else JobRegistry(store.path)
        self.admission = admission
        self.owner = owner or replica_id()
        self.lease_s = float(lease_s)
        self._registry_lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._threads: List[threading.Thread] = []
        self._service_threads: List[threading.Thread] = []
        self._stop_event = threading.Event()
        self._draining = False
        self._started = False

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Start the scheduler, heartbeat and recovery threads
        (idempotent).  The first recovery sweep runs before any worker
        starts, so jobs left behind by a previous process on this
        store are re-enqueued ahead of fresh submissions."""
        if self._started:
            return
        self._started = True
        self._stop_event.clear()
        self._draining = False
        self.recover_orphans()
        for index in range(self.concurrency):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-scheduler-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        for name, target in (
            ("repro-lease-heartbeat", self._heartbeat_loop),
            ("repro-lease-recovery", self._recovery_loop),
        ):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._service_threads.append(thread)

    def stop(self, timeout: float = 10.0) -> None:
        """Stop accepting work and join the scheduler threads."""
        if not self._started:
            return
        self._stop_event.set()
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout)
        for thread in self._service_threads:
            thread.join(timeout)
        self._threads.clear()
        self._service_threads.clear()
        self._started = False

    def shutdown(self, timeout: float = 30.0) -> None:
        """Graceful drain (the SIGTERM path): running jobs stop at the
        next cell boundary and are handed back to the registry as
        ``queued`` (suspended locally, recoverable by any replica —
        every cell they completed is already in the store), queued
        jobs and leases are released, and the worker threads join."""
        self._draining = True
        self.stop(timeout=timeout)
        self.registry.release_owner(self.owner)

    # -- submission / lookup -------------------------------------------

    def submit(self, payload: Any, client: str = "") -> Job:
        """Validate *payload* into a job, persist it, and enqueue it.

        The registry row and the ``job-queued`` event are durable
        before this returns — an acknowledged submission survives any
        crash that follows."""
        spec = parse_job_spec(payload)
        job_id = f"job-{uuid.uuid4().hex[:12]}"
        self.registry.create(
            job_id,
            spec.raw,
            spec.kind,
            spec.name,
            len(spec.cells),
            client=client,
            owner=self.owner,
            lease_s=self.lease_s,
        )
        log = JobEventLog(backing=self.registry.log_backing(job_id))
        job = Job(spec, job_id=job_id, log=log)
        job.client = client
        with self._registry_lock:
            self._jobs[job.id] = job
            self._order.append(job.id)
        job.log.append(
            "job-queued",
            job_id=job.id,
            kind=spec.kind,
            name=spec.name,
            cells=len(spec.cells),
        )
        get_registry().counter("service.jobs_submitted").add()
        self._queue.put(job.id)
        return job

    def get(self, job_id: str) -> Optional[Job]:
        """The job with *job_id*, or ``None``."""
        with self._registry_lock:
            return self._jobs.get(job_id)

    def list_jobs(self) -> List[Dict[str, Any]]:
        """Status dicts of every known job, oldest first."""
        with self._registry_lock:
            jobs = [self._jobs[job_id] for job_id in self._order]
        return [job.status_dict() for job in jobs]

    def counts(self) -> Dict[str, int]:
        """Job totals by state (the health endpoint's summary)."""
        totals = {state.value: 0 for state in JobState}
        for status in self.list_jobs():
            totals[status["state"]] += 1
        return totals

    def queue_depth(self) -> int:
        """Jobs accepted but not yet picked up by a worker (the
        admission layer's backpressure signal)."""
        return self._queue.qsize()

    def request_cancel(self, job_id: str) -> bool:
        """Ask *job_id* to stop at its next cell boundary.

        Sets both the in-memory flag (fast path for jobs this replica
        runs) and the durable registry flag (so cancels reach jobs
        owned by peers, or jobs that recover later); ``False`` when
        the job is unknown or already terminal."""
        job = self.get(job_id)
        durable = self.registry.request_cancel(job_id)
        if job is not None:
            return job.request_cancel() or durable
        return durable

    # -- lease maintenance ---------------------------------------------

    def _heartbeat_loop(self) -> None:
        interval = max(0.05, self.lease_s / 3.0)
        while not self._stop_event.wait(interval):
            self.registry.heartbeat(self.owner, self.lease_s)

    def _recovery_loop(self) -> None:
        interval = max(0.1, self.lease_s)
        while not self._stop_event.wait(interval):
            if not self._draining:
                self.recover_orphans()

    def recover_orphans(self) -> int:
        """Claim and re-enqueue every recoverable job whose lease
        lapsed (dead replica) or that has no owner (released by a
        graceful drain, or submitted by a process that never ran it).

        Recovered jobs resume with their persisted event history —
        streamers that reconnect with ``?from=N`` see one gapless
        sequence across the crash — and re-execute store-aware, so
        cells computed before the crash are served, not re-simulated.
        Returns how many jobs were claimed."""
        telemetry = get_registry()
        claimed = self.registry.claim_orphans(self.owner, self.lease_s)
        recovered = 0
        for row, takeover in claimed:
            job_id = row["job_id"]
            with self._registry_lock:
                if job_id in self._jobs and not self._jobs[job_id].suspended:
                    continue
            try:
                spec = parse_job_spec(json.loads(row["spec"]))
            except Exception:
                # a spec this build can no longer parse is failed, not
                # silently dropped — the row explains why
                self.registry.set_state(
                    job_id, "failed", error="unrecoverable spec"
                )
                continue
            log = JobEventLog(
                backing=self.registry.log_backing(job_id),
                base=int(row["events"]),
            )
            job = Job(spec, job_id=job_id, log=log)
            job.client = row.get("client", "")
            job.submitted_s = row["submitted_s"]
            with self._registry_lock:
                self._jobs[job_id] = job
                if job_id not in self._order:
                    self._order.append(job_id)
            job.log.append(
                "job-recovered",
                job_id=job_id,
                owner=self.owner,
                takeover=takeover,
                prior_events=int(row["events"]),
            )
            telemetry.counter("service.jobs_recovered").add()
            if takeover:
                telemetry.counter("service.lease_takeovers").add()
            self._queue.put(job_id)
            recovered += 1
        return recovered

    # -- execution -----------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            job = self.get(job_id)
            if job is None:  # pragma: no cover - registry never drops jobs
                continue
            try:
                self._run_job(job)
            except Exception as exc:
                # a scheduler bug must not leave the job spinning
                job.log.append(
                    "job-failed", job_id=job.id, error=f"{type(exc).__name__}: {exc}"
                )
                job.fail(
                    f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
                )
                self.registry.set_state(
                    job.id, "failed", error=f"{type(exc).__name__}: {exc}"
                )
                get_registry().counter("service.jobs_failed").add()
                self._job_charge_returned(job)

    def _cancel_predicate(self, job: Job):
        """The cooperative stop predicate polled between cells: the
        in-memory cancel flag, a drain in progress, or (throttled) the
        registry's durable cancel flag set by a peer or the CLI."""
        last_poll = [0.0]

        def should_stop() -> bool:
            if job.cancel_requested or self._draining:
                return True
            now = time.monotonic()
            if now - last_poll[0] >= _CANCEL_POLL_S:
                last_poll[0] = now
                if self.registry.cancel_requested(job.id):
                    job.request_cancel()
                    return True
            return False

        return should_stop

    def _job_charge_returned(self, job: Job) -> None:
        """Return a finished job's in-flight admission charge."""
        if self.admission is not None:
            self.admission.job_finished(job.client, len(job.spec.cells))

    def _run_job(self, job: Job) -> None:
        registry = get_registry()
        spec = job.spec
        if job.cancel_requested or self.registry.cancel_requested(job.id):
            self._finish_cancelled(job, {}, {}, None, 0.0)
            return
        job.mark_running()
        self.registry.set_state(job.id, "running")
        plan = RunPlan(spec.cells)
        shards = plan_shards(plan.requests)
        job.log.append(
            "job-started",
            job_id=job.id,
            cells_requested=plan.requested,
            cells_unique=plan.unique,
            shards=len(shards),
            backend=spec.backend,
            engine=spec.engine,
        )
        sources: Dict[RunRequest, str] = {}

        def observer(event: str, request: RunRequest, payload: Any) -> None:
            source = _SOURCES.get(event, event)
            sources[request] = source
            if event == "completed":
                # persist incrementally: a crash after this cell keeps
                # its result, which is what makes restart recovery
                # re-simulate nothing that already finished
                self.store.put(request, payload)
            fields: Dict[str, Any] = {
                "job_id": job.id,
                "cell": cell_key(request),
                "config": request.config.label(),
                "program": request.program,
                "source": source,
            }
            if event == "quarantined":
                fields["error_type"] = payload.error_type
                fields["error"] = payload.message
            job.log.append("cell", **fields)

        started = time.perf_counter()
        reports = plan.execute(
            backend=spec.backend,
            jobs=spec.jobs if spec.jobs is not None else self.jobs,
            policy=self.policy,
            store=self.store,
            observer=observer,
            cancel=self._cancel_predicate(job),
        )
        wall = time.perf_counter() - started
        if job.cancel_requested:
            self._finish_cancelled(job, reports, sources, plan, wall)
            return
        incomplete = len(reports) + len(plan.failures) < plan.unique
        if self._draining and incomplete:
            self._suspend(job, plan)
            return
        for request in plan.failures:
            reports[request] = quarantined_report(request)
        rendered = None
        if spec.finish is not None:
            rendered = spec.finish(reports)
        result = job_result_payload(job.id, spec, reports, sources, rendered)
        computed = sum(1 for source in sources.values() if source == "computed")
        manifest = job_manifest(
            job.id,
            counters={
                "kind": spec.kind,
                "name": spec.name,
                "engine": spec.engine,
                "backend": spec.backend,
                "cells_requested": plan.requested,
                "cells_unique": plan.unique,
                "dedup_cells": plan.requested - plan.unique,
                "store_hits": plan.store_hits,
                "store_misses": plan.store_misses,
                "cells_computed": computed,
                "cells_quarantined": len(plan.failures),
                "shard_count": len(shards),
                "shards": shards,
                "wall_time_s": wall,
                "store": self.store.stats(),
            },
        )
        registry.counter("service.jobs_completed").add()
        registry.counter("service.cells_served_from_store").add(plan.store_hits)
        registry.counter("service.cells_computed").add(computed)
        job.log.append(
            "job-completed",
            job_id=job.id,
            cells_unique=plan.unique,
            store_hits=plan.store_hits,
            store_misses=plan.store_misses,
            cells_computed=computed,
            cells_quarantined=len(plan.failures),
            wall_time_s=wall,
        )
        job.complete(result, manifest)
        self.registry.set_state(job.id, "completed")
        self._job_charge_returned(job)

    def _finish_cancelled(
        self,
        job: Job,
        reports: Dict[RunRequest, Any],
        sources: Dict[RunRequest, str],
        plan: Optional[RunPlan],
        wall: float,
    ) -> None:
        """Land *job* in terminal ``cancelled``: partial results kept
        (everything computed so far is already in the store), lease
        released, final event appended before the state flips."""
        spec = job.spec
        for request in spec.cells:
            if request not in reports:
                sources.setdefault(request, "cancelled")
        result = job_result_payload(job.id, spec, reports, sources, None)
        computed = sum(1 for source in sources.values() if source == "computed")
        manifest = job_manifest(
            job.id,
            counters={
                "kind": spec.kind,
                "name": spec.name,
                "state": "cancelled",
                "cells_unique": 0 if plan is None else plan.unique,
                "cells_finished": len(reports),
                "store_hits": 0 if plan is None else plan.store_hits,
                "cells_computed": computed,
                "wall_time_s": wall,
            },
        )
        job.log.append(
            "job-cancelled",
            job_id=job.id,
            cells_finished=len(reports),
            cells_total=len(spec.cells),
        )
        job.mark_cancelled(result, manifest)
        self.registry.set_state(job.id, "cancelled")
        get_registry().counter("service.jobs_cancelled").add()
        self._job_charge_returned(job)

    def _suspend(self, job: Job, plan: RunPlan) -> None:
        """Hand an unfinished job back to the registry (graceful
        drain): state returns to ``queued`` with the lease released,
        so any replica — including a restarted self — can claim it.
        The ``job-suspended`` event closes this replica's streams."""
        finished = len(job.log)  # events so far, for the record
        job.log.append(
            "job-suspended",
            job_id=job.id,
            owner=self.owner,
            events=finished + 1,
        )
        job.suspended = True
        self.registry.set_state(job.id, "queued", release_lease=True)

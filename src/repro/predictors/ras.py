"""Return-address stack.

Both simulated architectures use "a 32-entry return address stack [6]
to predict return instructions" (§3, §5.1).  The stack is a circular
buffer: pushing beyond capacity silently overwrites the oldest entry,
which is what makes deep recursion mispredict on the way back out —
the behaviour Kaeli & Emma's mechanism [6] trades area against.
"""

from __future__ import annotations

from typing import List, Optional


class ReturnAddressStack:
    """A fixed-capacity circular return-address predictor stack."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError("return stack needs at least one entry")
        self.capacity = capacity
        self._slots: List[int] = [0] * capacity
        self._top = 0  # index of the next free slot (mod capacity)
        self._depth = 0  # number of live entries, <= capacity
        self.pushes = 0
        self.pops = 0
        self.underflows = 0
        self.overflows = 0

    def push(self, return_address: int) -> None:
        """Push the return address of a call.

        When the stack is full the oldest entry is overwritten (the
        circular buffer wraps); depth saturates at ``capacity`` and
        the overwrite is counted as an overflow — the pop that would
        have matched the clobbered call is doomed to mispredict.
        """
        self._slots[self._top] = return_address
        self._top = (self._top + 1) % self.capacity
        if self._depth < self.capacity:
            self._depth += 1
        else:
            self.overflows += 1
        self.pushes += 1

    def pop(self) -> Optional[int]:
        """Pop and return the predicted return address.

        Returns ``None`` on underflow (a return with no matching call
        in the stack's visible window).
        """
        self.pops += 1
        if self._depth == 0:
            self.underflows += 1
            return None
        self._top = (self._top - 1) % self.capacity
        self._depth -= 1
        return self._slots[self._top]

    def peek(self) -> Optional[int]:
        """Return the top of stack without popping (``None`` if empty)."""
        if self._depth == 0:
            return None
        return self._slots[(self._top - 1) % self.capacity]

    @property
    def depth(self) -> int:
        """Number of live entries."""
        return self._depth

    def clear(self) -> None:
        """Drop all entries (not the statistics)."""
        self._top = 0
        self._depth = 0

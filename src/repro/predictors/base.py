"""Common predictor interfaces."""

from __future__ import annotations

from typing import Protocol, runtime_checkable


@runtime_checkable
class DirectionPredictor(Protocol):
    """Predicts taken/not-taken for conditional branches.

    The fetch engine calls :meth:`predict` at fetch time and
    :meth:`update` once the branch resolves; trace-driven simulation
    performs both back-to-back, which models an in-order machine with
    resolution-time predictor update.
    """

    def predict(self, pc: int, target: int) -> bool:
        """Return ``True`` to predict taken.

        *target* is supplied so static direction heuristics (e.g.
        backward-taken/forward-not-taken) can inspect the branch
        displacement; dynamic predictors ignore it.
        """
        ...

    def update(self, pc: int, taken: bool) -> None:
        """Train the predictor with the resolved outcome."""
        ...

"""Saturating counters and counter arrays.

Two-bit saturating counters are the workhorse of every dynamic
direction predictor in the paper (the Pentium's coupled BTB counters,
the shared PHT of both simulated architectures, the UltraSPARC's
per-line 2-bit predictors mentioned in §6.2).
"""

from __future__ import annotations

from typing import List


class SaturatingCounter:
    """An n-bit up/down saturating counter.

    The counter predicts *taken* when in the upper half of its range.
    A 2-bit counter is initialised to 1 ("weakly not-taken") unless a
    different initial value is given.
    """

    __slots__ = ("value", "_maximum", "_threshold")

    def __init__(self, bits: int = 2, initial: int | None = None) -> None:
        if bits < 1:
            raise ValueError("counter needs at least one bit")
        self._maximum = (1 << bits) - 1
        self._threshold = 1 << (bits - 1)
        if initial is None:
            initial = self._threshold - 1
        if not 0 <= initial <= self._maximum:
            raise ValueError(
                f"initial value {initial} out of range [0, {self._maximum}]"
            )
        self.value = initial

    @property
    def taken(self) -> bool:
        """Current prediction."""
        return self.value >= self._threshold

    def update(self, taken: bool) -> None:
        """Move one step toward the observed outcome, saturating."""
        if taken:
            if self.value < self._maximum:
                self.value += 1
        elif self.value > 0:
            self.value -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SaturatingCounter(value={self.value}, taken={self.taken})"


class CounterArray:
    """A flat array of identical n-bit saturating counters.

    Implemented over a plain list of ints for speed — predictor tables
    are the hottest per-branch state in the simulation.
    """

    __slots__ = ("_values", "_maximum", "_threshold", "size")

    def __init__(self, size: int, bits: int = 2, initial: int | None = None) -> None:
        if size < 1:
            raise ValueError("counter array must have at least one entry")
        if bits < 1:
            raise ValueError("counters need at least one bit")
        self.size = size
        self._maximum = (1 << bits) - 1
        self._threshold = 1 << (bits - 1)
        if initial is None:
            initial = self._threshold - 1
        if not 0 <= initial <= self._maximum:
            raise ValueError(
                f"initial value {initial} out of range [0, {self._maximum}]"
            )
        self._values: List[int] = [initial] * size

    def predict(self, index: int) -> bool:
        """Prediction of the counter at *index*."""
        return self._values[index] >= self._threshold

    def update(self, index: int, taken: bool) -> None:
        """Train the counter at *index*."""
        value = self._values[index]
        if taken:
            if value < self._maximum:
                self._values[index] = value + 1
        elif value > 0:
            self._values[index] = value - 1

    def value(self, index: int) -> int:
        """Raw counter value at *index* (for tests/inspection)."""
        return self._values[index]

    def reset(self, initial: int | None = None) -> None:
        """Reset every counter to *initial* (default weakly not-taken)."""
        if initial is None:
            initial = self._threshold - 1
        self._values = [initial] * self.size

"""Branch-direction and branch-target predictor substrates.

Both the BTB and NLS architectures in the paper are *decoupled*: the
conditional-branch direction comes from a shared pattern history table
(McFarling's gshare — global history XOR PC into a 4096-entry table of
2-bit counters) and returns come from a 32-entry return-address stack,
while the BTB / NLS structure only supplies the taken-target location
and the branch type (§3, §4).

This package provides those shared components plus the BTB itself and
several PHT variants used for ablations.
"""

from repro.predictors.base import DirectionPredictor
from repro.predictors.counters import SaturatingCounter, CounterArray
from repro.predictors.pht import (
    BimodalPredictor,
    CombiningPredictor,
    GAgPredictor,
    GSharePredictor,
    GlobalHistoryRegister,
    PAgPredictor,
    PanDegeneratePredictor,
    make_direction_predictor,
)
from repro.predictors.static_ import (
    AlwaysNotTakenPredictor,
    AlwaysTakenPredictor,
    BTFNTPredictor,
)
from repro.predictors.ras import ReturnAddressStack
from repro.predictors.btb import BranchTargetBuffer, BTBEntry, CoupledBTB

__all__ = [
    "DirectionPredictor",
    "SaturatingCounter",
    "CounterArray",
    "GlobalHistoryRegister",
    "GSharePredictor",
    "GAgPredictor",
    "PanDegeneratePredictor",
    "BimodalPredictor",
    "PAgPredictor",
    "CombiningPredictor",
    "make_direction_predictor",
    "AlwaysTakenPredictor",
    "AlwaysNotTakenPredictor",
    "BTFNTPredictor",
    "ReturnAddressStack",
    "BranchTargetBuffer",
    "BTBEntry",
    "CoupledBTB",
]

"""Shared validation helpers for table-shaped predictors."""

from __future__ import annotations


def check_btb_shape(entries: int, associativity: int) -> None:
    """Validate a (entries, associativity) pair for an associative
    predictor table: both powers of two, associativity <= entries."""
    for name, value in (("entries", entries), ("associativity", associativity)):
        if value < 1 or value & (value - 1):
            raise ValueError(f"{name} must be a power of two >= 1, got {value}")
    if associativity > entries:
        raise ValueError(
            f"associativity ({associativity}) cannot exceed entries ({entries})"
        )


def check_table_size(entries: int) -> None:
    """Validate a direct-mapped table size (power of two >= 1)."""
    if entries < 1 or entries & (entries - 1):
        raise ValueError(f"table size must be a power of two >= 1, got {entries}")

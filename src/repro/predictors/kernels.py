"""Array kernels for the vectorised trace-replay engine.

These primitives exploit the central property of the reference fetch
loop when wrong-path modelling is off: *every* structure's state
evolution (instruction cache, PHT, BTB, NLS table, RAS, global
history) is fully determined by the trace — predictions never feed
back into state.  Simulation therefore decomposes into independent
exact per-structure replays, each expressible as a handful of sorts,
searchsorteds and segmented scans over the packed trace columns:

* :func:`ragged_ranges` — expand per-event lengths into flat
  (row, offset) streams (cache-line accesses per block);
* :func:`previous_same_key` — for each element, the index of the
  previous element with the same key (direct-mapped cache hits);
* :func:`last_write_lookup` — for each query ``(key, time)``, the
  index of the last write to ``key`` at or before ``time``
  (tables with last-write-wins slots: BTB, NLS, PHT point queries);
* :func:`counter_scan` — segmented prefix composition of saturating
  clamp-add updates (exact 2-bit PHT counter replay);
* :func:`gshare_histories` — the global history register before each
  conditional, under per-epoch (flush) resets;
* :func:`segmented_counts` — per-element inclusive count of flagged
  same-key predecessors (cache-frame fill generations);
* :func:`batched_orders` — one stable sort shared by a whole stack of
  table variants (the batched-sweep kernels' leading batch axis).

All kernels are pure NumPy and deterministic.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def ragged_ranges(lengths: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Expand per-row lengths into flat ``(row_ids, offsets, first)``.

    ``row_ids[j]`` is the row that flat element *j* belongs to,
    ``offsets[j]`` its 0-based position within that row, and
    ``first[i]`` the flat index of row *i*'s first element (the
    exclusive cumulative sum of ``lengths``).  Rows must have
    length >= 1.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    n = len(lengths)
    first = np.zeros(n, dtype=np.int64)
    if n:
        np.cumsum(lengths[:-1], out=first[1:])
    total = int(first[-1] + lengths[-1]) if n else 0
    row_ids = np.zeros(total, dtype=np.int64)
    if n > 1:
        row_ids[first[1:]] = 1
        np.cumsum(row_ids, out=row_ids)
    offsets = np.arange(total, dtype=np.int64) - first[row_ids]
    return row_ids, offsets, first


def previous_same_key(keys: np.ndarray) -> np.ndarray:
    """For each element, the index of the previous element with the
    same key, or -1 if none.

    Elements are implicitly ordered by index (time).
    """
    keys = np.asarray(keys, dtype=np.int64)
    m = len(keys)
    if m == 0:
        return np.full(0, -1, dtype=np.int64)
    return LastWriteIndex(keys, np.arange(m, dtype=np.int64)).previous_in_key()


class LastWriteIndex:
    """A sorted index over timestamped slot writes.

    Built once from ``(keys, times)`` — times must be non-decreasing
    along the original index order (all replay write streams are in
    event order) — the index answers vectorised *last write to this
    key at or before this time* queries via one binary search over a
    composite ``key * B + time`` array, and derives related orderings
    (previous same-key element, most-recent-flagged-write) from the
    same single sort.
    """

    __slots__ = ("n", "order", "sorted_keys", "big", "composite")

    def __init__(
        self,
        keys: np.ndarray,
        times: np.ndarray,
        order: np.ndarray = None,
    ) -> None:
        keys = np.asarray(keys, dtype=np.int64)
        times = np.asarray(times, dtype=np.int64)
        self.n = len(keys)
        if self.n == 0:
            return
        self.order = (
            order if order is not None else np.argsort(keys, kind="stable")
        )
        self.sorted_keys = keys[self.order]
        self.big = int(times.max()) + 2
        self.composite = self.sorted_keys * self.big + times[self.order]

    def positions(self, query_keys: np.ndarray, query_times: np.ndarray) -> np.ndarray:
        """Sorted-array position of the last write with the query's
        key at or before the query's time, or -1.

        Query times may be negative (matching nothing).
        """
        query_keys = np.asarray(query_keys, dtype=np.int64)
        query_times = np.asarray(query_times, dtype=np.int64)
        if self.n == 0 or len(query_keys) == 0:
            return np.full(len(query_keys), -1, dtype=np.int64)
        probes = query_keys * self.big + np.clip(query_times, -1, self.big - 2)
        pos = np.searchsorted(self.composite, probes, side="right") - 1
        safe = np.maximum(pos, 0)
        found = (pos >= 0) & (self.sorted_keys[safe] == query_keys)
        return np.where(found, pos, -1)

    def query(self, query_keys: np.ndarray, query_times: np.ndarray) -> np.ndarray:
        """Original write index of the last matching write, or -1."""
        pos = self.positions(query_keys, query_times)
        if self.n == 0:
            return pos
        return np.where(pos >= 0, self.order[np.maximum(pos, 0)], -1)

    def resolve(self, positions: np.ndarray) -> np.ndarray:
        """Map :meth:`positions` results back to original indices."""
        if self.n == 0:
            return positions
        return np.where(positions >= 0, self.order[np.maximum(positions, 0)], -1)

    def previous_in_key(self) -> np.ndarray:
        """For each write, the original index of the previous write to
        the same key, or -1 — derived from the existing sort."""
        prev = np.full(self.n, -1, dtype=np.int64)
        if self.n < 2:
            return prev
        same = self.sorted_keys[1:] == self.sorted_keys[:-1]
        prev_sorted = np.full(self.n, -1, dtype=np.int64)
        prev_sorted[1:][same] = self.order[:-1][same]
        prev[self.order] = prev_sorted
        return prev

    def filtered_last(self, flags: np.ndarray) -> np.ndarray:
        """Per sorted position, the original index of the most recent
        *flagged* write at or before that position within the same key
        run, or -1.

        Composes with :meth:`positions`: ``filtered_last(f)[p]`` for a
        query position *p* is the last flagged write at or before the
        query time — how the NLS replay answers "last *taken* write"
        without a second sort.
        """
        if self.n == 0:
            return np.full(0, -1, dtype=np.int64)
        flags = np.asarray(flags, dtype=bool)
        first = segment_starts(self.sorted_keys)
        marked = np.where(
            flags[self.order], np.arange(self.n, dtype=np.int64), -1
        )
        latest = np.maximum.accumulate(marked)
        # a previous key-run's position is always < this run's first
        # element, so clamping to the run start masks cross-run leaks
        valid = latest >= first
        return np.where(valid, self.order[np.maximum(latest, 0)], -1)


def last_write_lookup(
    write_keys: np.ndarray,
    write_times: np.ndarray,
    query_keys: np.ndarray,
    query_times: np.ndarray,
) -> np.ndarray:
    """For each query, the index (into the write arrays) of the last
    write with the same key at or before the query time, or -1.

    Write times must be non-negative and non-decreasing along the
    original index order; query times may be negative (matching
    nothing).  Convenience wrapper over :class:`LastWriteIndex` for
    one-shot lookups.
    """
    n_queries = len(query_keys)
    if len(write_keys) == 0 or n_queries == 0:
        return np.full(n_queries, -1, dtype=np.int64)
    return LastWriteIndex(write_keys, write_times).query(query_keys, query_times)


def counter_scan(
    group_ids: np.ndarray,
    takens: np.ndarray,
    initial: int,
    maximum: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact segmented replay of saturating-counter updates.

    ``group_ids`` must be sorted ascending; within a group, elements
    are in time order.  Each element applies ``x -> clamp(x + a, 0,
    maximum)`` with ``a = +1`` if taken else ``-1`` to its group's
    counter, which starts at ``initial``.  Returns ``(before,
    after)`` — the counter value seen by each update before and
    after it applies.

    Uses the closed-form composition of clamp-add maps: any
    composition of ``x -> clamp(x + a_i, lo_i, hi_i)`` is itself
    ``x -> clamp(x + A, LO, HI)``, with

    ``f2 . f1 = (a1 + a2, clamp(lo1 + a2, lo2, hi2),
    clamp(hi1 + a2, lo2, hi2))``

    so a pointer-jumping prefix pass computes every prefix map in
    O(log longest-run) vector steps.
    """
    group_ids = np.asarray(group_ids, dtype=np.int64)
    n = len(group_ids)
    if n == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    add = np.where(np.asarray(takens, dtype=bool), 1, -1).astype(np.int64)
    lo = np.zeros(n, dtype=np.int64)
    hi = np.full(n, maximum, dtype=np.int64)
    # parent[k]: start of the not-yet-folded prefix; -1 once element k's
    # map covers its whole group prefix
    parent = np.arange(-1, n - 1, dtype=np.int64)
    if n > 1:
        parent[1:][group_ids[1:] != group_ids[:-1]] = -1
    parent[0] = -1
    active = np.nonzero(parent >= 0)[0]
    while len(active):
        p = parent[active]
        a1, lo1, hi1 = add[p], lo[p], hi[p]
        a2, lo2, hi2 = add[active], lo[active], hi[active]
        add[active] = a1 + a2
        lo[active] = np.clip(lo1 + a2, lo2, hi2)
        hi[active] = np.clip(hi1 + a2, lo2, hi2)
        parent[active] = parent[p]
        active = active[parent[active] >= 0]
    after = np.clip(initial + add, lo, hi)
    before = np.full(n, initial, dtype=np.int64)
    if n > 1:
        cont = group_ids[1:] == group_ids[:-1]
        before[1:][cont] = after[:-1][cont]
    return before, after


def gshare_histories(
    takens: np.ndarray,
    segment_first: np.ndarray,
    bits: int,
) -> np.ndarray:
    """The global history register value before each conditional.

    ``takens`` are the outcomes of all conditionals in time order;
    ``segment_first[k]`` is the index of the first conditional in
    *k*'s flush epoch (history resets to 0 on flush).  Bit *b* of the
    history before conditional *k* is the outcome of conditional
    ``k - 1 - b`` when that index lies within *k*'s epoch, so the
    register is assembled from ``bits`` shifted, validity-masked
    vector adds.
    """
    takens = np.asarray(takens, dtype=np.int64)
    segment_first = np.asarray(segment_first, dtype=np.int64)
    n = len(takens)
    history = np.zeros(n, dtype=np.int64)
    positions = np.arange(n, dtype=np.int64)
    for bit in range(bits):
        source = positions - 1 - bit
        valid = source >= segment_first
        history[valid] += takens[source[valid]] << bit
    return history


def segmented_counts(keys: np.ndarray, flags: np.ndarray) -> np.ndarray:
    """Per element, the inclusive count of *flagged* elements with the
    same key at or before it.

    Elements are implicitly in time order.  The icache replay uses
    this with ``flags = miss`` to number each access's cache-frame
    *fill generation* — the count of fills the frame has seen — so
    frontend state bound to an evicted line is retired simply by
    keying it with the generation it was written under.
    """
    keys = np.asarray(keys, dtype=np.int64)
    flags = np.asarray(flags, dtype=bool)
    n = len(keys)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    order = np.argsort(keys, kind="stable")
    flagged = flags[order].astype(np.int64)
    running = np.cumsum(flagged)
    first = segment_starts(keys[order])
    within = running - running[first] + flagged[first]
    counts = np.empty(n, dtype=np.int64)
    counts[order] = within
    return counts


def batched_orders(keys_2d: np.ndarray) -> list:
    """Stable sort orders for a stack of key arrays, from ONE sort.

    ``keys_2d`` has shape ``(B, n)``: *B* table-geometry variants
    (e.g. NLS tables of different sizes) each mapping the same *n*
    trace writes to their own non-negative slot keys.  Shifting each
    variant's keys into a disjoint range and stable-sorting the
    concatenation yields every variant's sorted run as a contiguous
    segment of the one big order — the per-variant orders returned
    here plug straight into :class:`LastWriteIndex`'s ``order=``
    parameter, amortising the dominant sort cost across the batch.
    """
    keys_2d = np.asarray(keys_2d, dtype=np.int64)
    n_variants, n = keys_2d.shape
    if n == 0 or n_variants == 0:
        return [np.zeros(0, dtype=np.int64) for _ in range(n_variants)]
    spaces = keys_2d.max(axis=1) + 1
    bases = np.zeros(n_variants, dtype=np.int64)
    np.cumsum(spaces[:-1], out=bases[1:])
    shifted = (keys_2d + bases[:, None]).ravel()
    order = np.argsort(shifted, kind="stable")
    # variant b's n elements occupy sorted positions [b*n, (b+1)*n)
    # because its key range is disjoint from and below variant b+1's
    return [order[b * n : (b + 1) * n] - b * n for b in range(n_variants)]


def segment_starts(group_ids: np.ndarray) -> np.ndarray:
    """For each element of a sorted-by-group sequence, the index of
    the first element of its group."""
    group_ids = np.asarray(group_ids, dtype=np.int64)
    n = len(group_ids)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    is_start = np.ones(n, dtype=bool)
    is_start[1:] = group_ids[1:] != group_ids[:-1]
    indices = np.where(is_start, np.arange(n, dtype=np.int64), 0)
    return np.maximum.accumulate(indices)

"""Static (profile-free) direction predictors.

The paper notes that coupled BTB designs fall back to "less accurate
static prediction" for branches missing from the BTB (§2).  These
schemes provide that fallback and serve as ablation baselines.
"""

from __future__ import annotations

from typing import Optional


class AlwaysTakenPredictor:
    """Predict every conditional branch taken."""

    def predict(self, pc: int, target: int = 0) -> bool:
        return True

    def update(self, pc: int, taken: bool) -> None:
        pass


class AlwaysNotTakenPredictor:
    """Predict every conditional branch not-taken."""

    def predict(self, pc: int, target: int = 0) -> bool:
        return False

    def update(self, pc: int, taken: bool) -> None:
        pass


class BTFNTPredictor:
    """Backward-taken / forward-not-taken.

    Loops branch backward and usually iterate, so backward conditional
    branches are predicted taken; forward branches not-taken.
    """

    def predict(self, pc: int, target: int = 0) -> bool:
        return target <= pc

    def update(self, pc: int, taken: bool) -> None:
        pass


_STATIC = {
    "taken": AlwaysTakenPredictor,
    "not-taken": AlwaysNotTakenPredictor,
    "nottaken": AlwaysNotTakenPredictor,
    "btfnt": BTFNTPredictor,
}


def make_static_predictor(name: str) -> Optional[object]:
    """Build a static predictor by name, or return ``None`` if the name
    is not a static scheme."""
    cls = _STATIC.get(name.lower())
    return cls() if cls is not None else None

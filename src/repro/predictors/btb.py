"""Branch target buffers.

:class:`BranchTargetBuffer` is the *decoupled* design the paper
simulates (§3): a small associative cache, indexed and tagged by the
branch address, holding the full taken-target address and the branch
type.  Only taken branches are allocated; a branch that later executes
not-taken keeps its entry ("we leave the entry in the BTB").  The
direction of conditional branches comes from the shared PHT, never
from the BTB.

:class:`CoupledBTB` is the Pentium-style *coupled* variant (§2):
direction prediction is a 2-bit counter stored in the BTB entry, so
branches that miss in the BTB must fall back to static prediction.
It exists to reproduce the coupled-vs-decoupled comparison from the
authors' earlier work [2].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.isa.branches import BranchKind
from repro.isa.geometry import instruction_index
from repro.predictors.replacement_util import check_btb_shape
from repro.predictors.counters import SaturatingCounter


@dataclass
class BTBEntry:
    """One BTB entry: full tag, full taken-target address, branch type.

    The coupled variant additionally carries a 2-bit counter.
    """

    tag: int
    target: int
    kind: BranchKind
    counter: Optional[SaturatingCounter] = None


class BranchTargetBuffer:
    """Decoupled BTB with LRU replacement.

    ``allocate`` selects the allocation policy: ``"taken-only"`` (the
    paper's choice — "we store only taken branches in the BTB, since
    previous studies have shown this to be more effective", §3) or
    ``"all"`` (not-taken direct branches also allocate, storing their
    decode-computed taken target, at the price of displacing useful
    taken entries).
    """

    _ALLOCATE = ("taken-only", "all")

    def __init__(
        self,
        entries: int = 128,
        associativity: int = 1,
        allocate: str = "taken-only",
    ) -> None:
        check_btb_shape(entries, associativity)
        if allocate not in self._ALLOCATE:
            raise ValueError(
                f"unknown allocate policy {allocate!r}; expected {self._ALLOCATE}"
            )
        self.allocate = allocate
        self.entries = entries
        self.associativity = associativity
        self.n_sets = entries // associativity
        self._set_mask = self.n_sets - 1
        self._set_bits = self.n_sets.bit_length() - 1
        self._sets: List[List[BTBEntry]] = [[] for _ in range(self.n_sets)]
        self.lookups = 0
        self.hits = 0

    # ------------------------------------------------------------------

    def _index_tag(self, pc: int) -> tuple:
        word = instruction_index(pc)
        return word & self._set_mask, word >> self._set_bits

    def lookup(self, pc: int) -> Optional[BTBEntry]:
        """Return the entry for *pc*, refreshing its LRU position, or
        ``None`` on a miss."""
        set_index, tag = self._index_tag(pc)
        entries = self._sets[set_index]
        self.lookups += 1
        for position, entry in enumerate(entries):
            if entry.tag == tag:
                self.hits += 1
                if position:
                    del entries[position]
                    entries.insert(0, entry)
                return entry
        return None

    def probe(self, pc: int) -> Optional[BTBEntry]:
        """Like :meth:`lookup` but without touching LRU or statistics."""
        set_index, tag = self._index_tag(pc)
        for entry in self._sets[set_index]:
            if entry.tag == tag:
                return entry
        return None

    def record_taken(self, pc: int, kind: BranchKind, target: int) -> None:
        """Allocate or update the entry for a branch that executed
        taken (the only event that writes the BTB, §3)."""
        set_index, tag = self._index_tag(pc)
        entries = self._sets[set_index]
        for position, entry in enumerate(entries):
            if entry.tag == tag:
                entry.target = target
                entry.kind = kind
                if position:
                    del entries[position]
                    entries.insert(0, entry)
                return
        entry = BTBEntry(tag=tag, target=target, kind=kind)
        entries.insert(0, entry)
        if len(entries) > self.associativity:
            entries.pop()

    def record_not_taken(
        self, pc: int, kind: BranchKind = BranchKind.CONDITIONAL, target: int = 0
    ) -> None:
        """Record a not-taken execution.

        Under ``taken-only`` this is a no-op ("we leave the entry in
        the BTB"); under ``all`` the decode-computed taken target is
        allocated/updated like a taken execution.
        """
        if self.allocate == "all" and target:
            self.record_taken(pc, kind, target)

    # ------------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0.0 when never looked up)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    @property
    def misses(self) -> int:
        """Lookups that found no entry (the ``btb-miss`` attribution
        cause counts the subset that belonged to penalised breaks)."""
        return self.lookups - self.hits

    def occupancy(self) -> int:
        """Number of valid entries currently stored."""
        return sum(len(entries) for entries in self._sets)

    def flush(self) -> None:
        """Invalidate every entry (not the statistics)."""
        self._sets = [[] for _ in range(self.n_sets)]


class CoupledBTB(BranchTargetBuffer):
    """Pentium-style coupled BTB: the 2-bit direction counter lives in
    the entry, so only resident branches get dynamic prediction."""

    def predict_direction(self, pc: int) -> Optional[bool]:
        """Direction prediction for *pc*, or ``None`` on a BTB miss
        (the caller falls back to static prediction)."""
        entry = self.probe(pc)
        if entry is None or entry.kind != BranchKind.CONDITIONAL:
            return None
        assert entry.counter is not None
        return entry.counter.taken

    def record_taken(self, pc: int, kind: BranchKind, target: int) -> None:
        super().record_taken(pc, kind, target)
        entry = self.probe(pc)
        assert entry is not None
        if entry.counter is None:
            # allocate weakly-taken: the branch just executed taken
            entry.counter = SaturatingCounter(bits=2, initial=2)
        else:
            entry.counter.update(True)

    def record_not_taken(
        self, pc: int, kind: BranchKind = BranchKind.CONDITIONAL, target: int = 0
    ) -> None:
        entry = self.probe(pc)
        if entry is not None and entry.counter is not None:
            entry.counter.update(False)

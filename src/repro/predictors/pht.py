"""Pattern-history-table direction predictors.

The paper's simulations use McFarling's *gshare* organisation: "the
degenerate scheme of Pan et al., where we XOR the global history
register with the program counter and use this to index into a 4096
entry (1 KByte) PHT" (§3).  Strictly, gshare (XOR) is McFarling's
improvement [9] over Pan et al.'s concatenation/plain-history scheme
[12]; we implement both plus GAg and bimodal tables so the choice can
be ablated.

All variants share a single global history register updated with the
outcome of every *conditional* branch, and predict with 2-bit
saturating counters.
"""

from __future__ import annotations

from repro.isa.geometry import instruction_index
from repro.predictors.counters import CounterArray


def _check_power_of_two(size: int) -> int:
    if size < 2 or size & (size - 1):
        raise ValueError(f"PHT size must be a power of two >= 2, got {size}")
    return size.bit_length() - 1


class GlobalHistoryRegister:
    """A k-bit shift register of conditional-branch outcomes.

    Taken shifts in a 1, not-taken a 0 (§2).
    """

    __slots__ = ("bits", "_mask", "value")

    def __init__(self, bits: int) -> None:
        if bits < 1:
            raise ValueError("history register needs at least one bit")
        self.bits = bits
        self._mask = (1 << bits) - 1
        self.value = 0

    def push(self, taken: bool) -> None:
        """Shift the outcome of a resolved conditional branch in."""
        self.value = ((self.value << 1) | int(taken)) & self._mask

    def reset(self) -> None:
        self.value = 0


class GSharePredictor:
    """McFarling's gshare: PHT indexed by ``history XOR pc``.

    This is the conditional-branch predictor used by every BTB and NLS
    configuration in the paper's evaluation (4096 entries, 12-bit
    global history, 2-bit counters).
    """

    def __init__(self, entries: int = 4096, counter_bits: int = 2) -> None:
        index_bits = _check_power_of_two(entries)
        self.entries = entries
        self._mask = entries - 1
        self._table = CounterArray(entries, bits=counter_bits)
        self.history = GlobalHistoryRegister(index_bits)

    def _index(self, pc: int) -> int:
        return (instruction_index(pc) ^ self.history.value) & self._mask

    def predict(self, pc: int, target: int = 0) -> bool:
        return self._table.predict(self._index(pc))

    def update(self, pc: int, taken: bool) -> None:
        self._table.update(self._index(pc), taken)
        self.history.push(taken)


    def reset(self) -> None:
        """Forget all counters and history (context-switch modelling)."""
        self._table.reset()
        self.history.reset()

class PanDegeneratePredictor:
    """Pan et al.'s degenerate correlation scheme.

    The PHT index concatenates the low PC bits with the global history
    (half the index bits each), rather than XOR-ing full-width values.
    """

    def __init__(self, entries: int = 4096, counter_bits: int = 2) -> None:
        index_bits = _check_power_of_two(entries)
        self.entries = entries
        self._history_bits = index_bits // 2
        self._pc_bits = index_bits - self._history_bits
        self._pc_mask = (1 << self._pc_bits) - 1
        self._table = CounterArray(entries, bits=counter_bits)
        self.history = GlobalHistoryRegister(max(1, self._history_bits))

    def _index(self, pc: int) -> int:
        pc_part = instruction_index(pc) & self._pc_mask
        return (pc_part << self._history_bits) | self.history.value

    def predict(self, pc: int, target: int = 0) -> bool:
        return self._table.predict(self._index(pc))

    def update(self, pc: int, taken: bool) -> None:
        self._table.update(self._index(pc), taken)
        self.history.push(taken)


    def reset(self) -> None:
        """Forget all counters and history (context-switch modelling)."""
        self._table.reset()
        self.history.reset()

class GAgPredictor:
    """GAg: PHT indexed purely by global history (Yeh & Patt)."""

    def __init__(self, entries: int = 4096, counter_bits: int = 2) -> None:
        index_bits = _check_power_of_two(entries)
        self.entries = entries
        self._table = CounterArray(entries, bits=counter_bits)
        self.history = GlobalHistoryRegister(index_bits)

    def predict(self, pc: int, target: int = 0) -> bool:
        return self._table.predict(self.history.value)

    def update(self, pc: int, taken: bool) -> None:
        self._table.update(self.history.value, taken)
        self.history.push(taken)


    def reset(self) -> None:
        """Forget all counters and history (context-switch modelling)."""
        self._table.reset()
        self.history.reset()

class BimodalPredictor:
    """Per-address 2-bit counters (Smith), no correlation."""

    def __init__(self, entries: int = 4096, counter_bits: int = 2) -> None:
        _check_power_of_two(entries)
        self.entries = entries
        self._mask = entries - 1
        self._table = CounterArray(entries, bits=counter_bits)

    def predict(self, pc: int, target: int = 0) -> bool:
        return self._table.predict(instruction_index(pc) & self._mask)

    def update(self, pc: int, taken: bool) -> None:
        self._table.update(instruction_index(pc) & self._mask, taken)


    def reset(self) -> None:
        """Forget all counters (context-switch modelling)."""
        self._table.reset()

class PAgPredictor:
    """PAg (Yeh & Patt): per-address local history indexing a shared
    pattern table.

    Each branch keeps its own shift register of recent outcomes; the
    register value selects the 2-bit counter.  Captures per-branch
    periodic patterns (counted loops) that global schemes dilute.
    """

    def __init__(
        self,
        entries: int = 4096,
        history_entries: int = 1024,
        counter_bits: int = 2,
    ) -> None:
        index_bits = _check_power_of_two(entries)
        _check_power_of_two(history_entries)
        self.entries = entries
        self.history_entries = history_entries
        self._history_mask = history_entries - 1
        self._pattern_mask = entries - 1
        self._histories = [0] * history_entries
        self._history_bits = index_bits
        self._history_value_mask = entries - 1
        self._table = CounterArray(entries, bits=counter_bits)

    def _history_slot(self, pc: int) -> int:
        return instruction_index(pc) & self._history_mask

    def predict(self, pc: int, target: int = 0) -> bool:
        history = self._histories[self._history_slot(pc)]
        return self._table.predict(history & self._pattern_mask)

    def update(self, pc: int, taken: bool) -> None:
        slot = self._history_slot(pc)
        history = self._histories[slot]
        self._table.update(history & self._pattern_mask, taken)
        self._histories[slot] = ((history << 1) | int(taken)) & self._history_value_mask


    def reset(self) -> None:
        """Forget all counters and local histories."""
        self._table.reset()
        self._histories = [0] * self.history_entries

class CombiningPredictor:
    """McFarling's combining predictor [9]: bimodal and gshare run in
    parallel and a per-address 2-bit chooser selects which one to
    believe; the chooser trains toward whichever component was right.
    """

    def __init__(self, entries: int = 4096, counter_bits: int = 2) -> None:
        _check_power_of_two(entries)
        self.entries = entries
        self.bimodal = BimodalPredictor(entries, counter_bits)
        self.gshare = GSharePredictor(entries, counter_bits)
        # chooser: >= threshold means "use gshare"
        self._chooser = CounterArray(entries, bits=2)
        self._mask = entries - 1

    def predict(self, pc: int, target: int = 0) -> bool:
        use_gshare = self._chooser.predict(instruction_index(pc) & self._mask)
        if use_gshare:
            return self.gshare.predict(pc, target)
        return self.bimodal.predict(pc, target)

    def update(self, pc: int, taken: bool) -> None:
        bimodal_prediction = self.bimodal.predict(pc)
        gshare_prediction = self.gshare.predict(pc)
        if bimodal_prediction != gshare_prediction:
            # train the chooser toward the component that was right
            self._chooser.update(
                instruction_index(pc) & self._mask, gshare_prediction == taken
            )
        self.bimodal.update(pc, taken)
        self.gshare.update(pc, taken)


    def reset(self) -> None:
        """Forget both components and the chooser."""
        self.bimodal.reset()
        self.gshare.reset()
        self._chooser.reset()

_DIRECTION_PREDICTORS = {
    "gshare": GSharePredictor,
    "pan": PanDegeneratePredictor,
    "gag": GAgPredictor,
    "bimodal": BimodalPredictor,
    "pag": PAgPredictor,
    "combining": CombiningPredictor,
}


def make_direction_predictor(name: str, entries: int = 4096):
    """Build a dynamic direction predictor by name.

    Known names: ``gshare`` (the paper's configuration), ``pan``,
    ``gag``, ``bimodal``.  Static predictors live in
    :mod:`repro.predictors.static_`.
    """
    try:
        cls = _DIRECTION_PREDICTORS[name.lower()]
    except KeyError:
        from repro.predictors.static_ import make_static_predictor

        predictor = make_static_predictor(name)
        if predictor is not None:
            return predictor
        raise ValueError(
            f"unknown direction predictor {name!r}; expected one of "
            f"{sorted(_DIRECTION_PREDICTORS)} or a static scheme"
        ) from None
    return cls(entries=entries)

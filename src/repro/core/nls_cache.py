"""The NLS-cache: NLS predictors coupled to instruction-cache lines.

"In the NLS-cache, we associate the NLS predictors with each cache
line.  Thus, the NLS entries share the instruction address tag with
the cache line" (§4.1).  Consequences modelled here:

* a cache line has a fixed, small budget of predictors (the paper
  found two per eight-instruction line most effective, one per four
  instructions);
* when a line is evicted its predictors are discarded — prediction
  state does *not* survive cache misses (the main reason the
  NLS-table wins in Figure 4);
* a predictor can only serve branches inside its carrier line.

Two ways of associating predictors with branches in a line are
implemented (§4.1 "we studied various replacement policies and
methods of associating the NLS predictors with specific instructions
in a cache line"):

* ``partition`` (paper default): predictor *k* serves the *k*-th
  1/N-slice of the line's instructions — e.g. with two predictors the
  first serves instructions 0–3 and the second instructions 4–7;
* ``lru``: predictors float — each remembers the instruction offset it
  was trained by; a branch uses the predictor matching its offset, and
  training replaces the least-recently-used predictor of the line.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.icache import InstructionCache
from repro.core.nls_entry import (
    INVALID_PREDICTION,
    NLSEntryType,
    NLSPrediction,
    nls_type_for,
)
from repro.isa.branches import BranchKind


class _LineSlots:
    """Predictor slots carried by one (set, way) cache frame."""

    __slots__ = ("types", "lines", "ways", "offsets", "recency")

    def __init__(self, per_line: int) -> None:
        self.types = [NLSEntryType.INVALID] * per_line
        self.lines = [0] * per_line
        self.ways = [0] * per_line
        # 'lru' policy state: trained instruction offset per slot and
        # recency order (most recent first)
        self.offsets = [-1] * per_line
        self.recency = list(range(per_line))

    def invalidate(self) -> None:
        per_line = len(self.types)
        for k in range(per_line):
            self.types[k] = NLSEntryType.INVALID
            self.lines[k] = 0
            self.ways[k] = 0
            self.offsets[k] = -1
        self.recency = list(range(per_line))


class NLSCache:
    """NLS predictors coupled to the lines of an instruction cache."""

    _POLICIES = ("partition", "lru")

    def __init__(
        self,
        cache: InstructionCache,
        predictors_per_line: int = 2,
        policy: str = "partition",
    ) -> None:
        geometry = cache.geometry
        if not 1 <= predictors_per_line <= geometry.instructions_per_line:
            raise ValueError(
                "predictors_per_line must be between 1 and "
                f"{geometry.instructions_per_line}, got {predictors_per_line}"
            )
        if policy not in self._POLICIES:
            raise ValueError(f"unknown policy {policy!r}; expected {self._POLICIES}")
        self.cache = cache
        self.geometry = geometry
        self.predictors_per_line = predictors_per_line
        self.policy = policy
        self._slice = geometry.instructions_per_line // predictors_per_line
        self._frames: List[List[_LineSlots]] = [
            [_LineSlots(predictors_per_line) for _ in range(geometry.associativity)]
            for _ in range(geometry.n_sets)
        ]
        cache.add_evict_listener(self._on_evict)
        self.lookups = 0
        self.invalidations = 0

    # ------------------------------------------------------------------

    def _on_evict(self, set_index: int, way: int, old_tag: int) -> None:
        self._frames[set_index][way].invalidate()
        self.invalidations += 1

    def _slot_for_lookup(self, slots: _LineSlots, offset: int) -> Optional[int]:
        if self.policy == "partition":
            return offset // self._slice
        # lru: find the slot trained by this instruction offset
        for k in range(self.predictors_per_line):
            if slots.offsets[k] == offset:
                return k
        return None

    def _slot_for_update(self, slots: _LineSlots, offset: int) -> int:
        if self.policy == "partition":
            return offset // self._slice
        for k in range(self.predictors_per_line):
            if slots.offsets[k] == offset:
                return k
        return slots.recency[-1]  # replace the LRU slot

    # ------------------------------------------------------------------

    def lookup(self, pc: int, way: Optional[int] = None) -> NLSPrediction:
        """NLS prediction for the branch at *pc*.

        *way* is the cache way the line containing *pc* currently
        occupies (the fetch engine just read the instruction from it);
        when omitted it is probed.  If the line is not resident there
        is no carrier frame and the prediction is invalid.
        """
        self.lookups += 1
        if way is None:
            way = self.cache.probe(pc)
            if way is None:
                return INVALID_PREDICTION
        set_index = self.geometry.set_index(pc)
        slots = self._frames[set_index][way]
        offset = self.geometry.instruction_offset(pc)
        slot = self._slot_for_lookup(slots, offset)
        if slot is None:
            return INVALID_PREDICTION
        if self.policy == "lru":
            recency = slots.recency
            if recency[0] != slot:
                recency.remove(slot)
                recency.insert(0, slot)
        return NLSPrediction(
            NLSEntryType(slots.types[slot]), slots.lines[slot], slots.ways[slot]
        )

    def update(
        self,
        pc: int,
        kind: BranchKind,
        taken: bool,
        target: int = 0,
        target_way: int = 0,
    ) -> None:
        """Train the predictor serving the branch at *pc*.

        Type field on every executed branch; line/set fields only when
        taken (§4).  If the carrier line has already been evicted the
        update is dropped — there is nowhere to store it.
        """
        way = self.cache.probe(pc)
        if way is None:
            return
        set_index = self.geometry.set_index(pc)
        slots = self._frames[set_index][way]
        offset = self.geometry.instruction_offset(pc)
        slot = self._slot_for_update(slots, offset)
        slots.types[slot] = nls_type_for(kind)
        slots.offsets[slot] = offset
        if taken:
            slots.lines[slot] = self.geometry.line_field(target)
            slots.ways[slot] = target_way
        if self.policy == "lru":
            recency = slots.recency
            if recency[0] != slot:
                recency.remove(slot)
                recency.insert(0, slot)

    # ------------------------------------------------------------------

    def valid_entries(self) -> int:
        """Number of trained predictor slots currently live."""
        return sum(
            1
            for ways in self._frames
            for slots in ways
            for t in slots.types
            if t != NLSEntryType.INVALID
        )

    def flush(self) -> None:
        """Invalidate every predictor slot (not the statistics)."""
        for ways in self._frames:
            for slots in ways:
                slots.invalidate()

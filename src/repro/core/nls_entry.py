"""The NLS predictor entry: type, line and set fields (§4).

The type field encodes the prediction source to use for the next
instruction fetch:

======  ========================  ==========================
bits    branch type               prediction source
======  ========================  ==========================
``00``  invalid entry             —
``01``  return instruction        return stack
``10``  conditional branch        NLS entry, conditional on PHT
``11``  other types of branches   always use NLS entry
======  ========================  ==========================
"""

from __future__ import annotations

import enum
from typing import NamedTuple, Optional

from repro.isa.branches import BranchKind


class NLSEntryType(enum.IntEnum):
    """The two-bit NLS type field."""

    INVALID = 0
    RETURN = 1
    CONDITIONAL = 2
    OTHER = 3


#: branch kind -> NLS type field value
_KIND_TO_TYPE = {
    BranchKind.RETURN: NLSEntryType.RETURN,
    BranchKind.CONDITIONAL: NLSEntryType.CONDITIONAL,
    BranchKind.UNCONDITIONAL: NLSEntryType.OTHER,
    BranchKind.CALL: NLSEntryType.OTHER,
    BranchKind.INDIRECT: NLSEntryType.OTHER,
}


def nls_type_for(kind: BranchKind) -> NLSEntryType:
    """Map a dynamic branch kind onto the two-bit NLS type field."""
    try:
        return _KIND_TO_TYPE[kind]
    except KeyError:
        raise ValueError(f"{kind!r} is not a branch") from None


class NLSPrediction(NamedTuple):
    """What an NLS structure returns for a lookup.

    ``line_field`` packs the cache-set index and the instruction
    offset within the line (see
    :meth:`repro.cache.geometry.CacheGeometry.line_field`); ``way`` is
    the predicted cache way (the paper's *set field*), always 0 for a
    direct-mapped cache.  ``line_field``/``way`` are only meaningful
    when ``type`` is not :attr:`NLSEntryType.INVALID`.
    """

    type: NLSEntryType
    line_field: int
    way: int

    @property
    def valid(self) -> bool:
        """``True`` when the entry has been trained at least once."""
        return self.type != NLSEntryType.INVALID


#: prediction returned for never-written slots
INVALID_PREDICTION = NLSPrediction(NLSEntryType.INVALID, 0, 0)

#: mismatch causes reported by :func:`classify_nls_mismatch`
MISMATCH_CAUSES = ("invalid", "line-field", "displaced", "wrong-way")


def classify_nls_mismatch(prediction: NLSPrediction, target: int, cache):
    """Why does *prediction* fail to fetch *target*? (``None`` = it
    does fetch it.)

    Causes, in check order:

    * ``invalid`` — the entry was never trained;
    * ``line-field`` — the stored pointer belongs to a different
      target (tag-less aliasing or a stale pointer after the branch's
      target moved);
    * ``displaced`` — the pointer is right but the target's line has
      been evicted from the instruction cache (§7's mechanism: the
      misfetch co-occurs with a cache miss, so bigger caches shrink
      this bucket);
    * ``wrong-way`` — resident, but not in the predicted way (set-field
      staleness in associative caches).
    """
    if not prediction.valid:
        return "invalid"
    geometry = cache.geometry
    if prediction.line_field != (target >> 2) & (
        (1 << geometry.line_field_bits) - 1
    ):
        return "line-field"
    way = cache.probe(target)
    if way is None:
        return "displaced"
    if geometry.associativity > 1 and way != prediction.way:
        return "wrong-way"
    return None


def verify_nls_target(
    prediction: NLSPrediction,
    target: int,
    cache,
) -> bool:
    """Check whether *prediction* actually fetches *target*.

    A taken-branch NLS prediction is correct only when all of the
    following hold (§7 "the information ... is only useful if the
    actual destination of a branch is in the predicted location"):

    1. the stored line field equals the target's line field (the
       tag-less table may hold another branch's pointer — aliasing);
    2. the target's line is resident in the instruction cache (a
       displaced line turns into a misfetch *plus* the cache miss);
    3. for associative caches, the line is resident in the predicted
       way (set-field check).
    """
    if not prediction.valid:
        return False
    geometry = cache.geometry
    # line field == the low line_field_bits of the word address
    if prediction.line_field != (target >> 2) & (
        (1 << geometry.line_field_bits) - 1
    ):
        return False
    way: Optional[int] = cache.probe(target)
    if way is None:
        return False
    if geometry.associativity > 1 and way != prediction.way:
        return False
    return True

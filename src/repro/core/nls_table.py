"""The NLS-table: a tag-less direct-mapped table of NLS predictors.

"The NLS-table uses the lower order bits of the branch instruction's
address to index into a tagless table" (§4.1).  Because there is no
tag, a lookup always returns an entry; when two branches collide the
entry written by one is silently used by the other (the design's one
disadvantage, which §4.1 reports to be small).

Update rules (§4): *all* executed branches update the type field;
*only taken* branches update the line and set fields, so a not-taken
conditional execution never erases the pointer to the taken target.
"""

from __future__ import annotations

from typing import List

from repro.cache.geometry import CacheGeometry
from repro.core.nls_entry import (
    _KIND_TO_TYPE,
    NLSEntryType,
    NLSPrediction,
    nls_type_for,
)
from repro.isa.branches import BranchKind
from repro.isa.geometry import instruction_index
from repro.predictors.replacement_util import check_table_size


class NLSTable:
    """Tag-less direct-mapped table of NLS predictors.

    Parameters
    ----------
    entries:
        number of NLS predictors (the paper studies 512/1024/2048);
    geometry:
        geometry of the instruction cache the line/set fields point
        into — the line-field width is a property of the cache, not of
        the table.
    """

    def __init__(self, entries: int, geometry: CacheGeometry) -> None:
        check_table_size(entries)
        self.entries = entries
        self.geometry = geometry
        self._mask = entries - 1
        # hot-path line-field arithmetic, precomputed
        self._line_field_mask = (1 << geometry.line_field_bits) - 1
        self._types: List[int] = [NLSEntryType.INVALID] * entries
        self._lines: List[int] = [0] * entries
        self._ways: List[int] = [0] * entries
        # diagnostics: owning branch pc per slot, for aliasing analysis
        self._owners: List[int] = [-1] * entries
        self.lookups = 0
        self.alias_lookups = 0

    # ------------------------------------------------------------------

    def index_of(self, pc: int) -> int:
        """Table slot used by the branch at *pc*."""
        return instruction_index(pc) & self._mask

    def lookup(self, pc: int) -> NLSPrediction:
        """Return the NLS prediction for the branch at *pc*.

        Tag-less: always returns the slot's contents, which may have
        been written by a different (aliasing) branch.
        """
        index = instruction_index(pc) & self._mask
        self.lookups += 1
        owner = self._owners[index]
        if owner >= 0 and owner != pc:
            self.alias_lookups += 1
        return NLSPrediction(
            NLSEntryType(self._types[index]), self._lines[index], self._ways[index]
        )

    def update(
        self,
        pc: int,
        kind: BranchKind,
        taken: bool,
        target: int = 0,
        target_way: int = 0,
    ) -> None:
        """Train the slot for *pc* with a resolved branch.

        The type field is written on every executed branch; the line
        and set fields only when the branch was taken, using the
        resolved *target* address and the cache way the target line
        was found in (*target_way*).
        """
        index = (pc >> 2) & self._mask
        self._types[index] = _KIND_TO_TYPE[kind]
        self._owners[index] = pc
        if taken:
            # line field = set index . instruction offset == the low
            # line_field_bits of the word address
            self._lines[index] = (target >> 2) & self._line_field_mask
            self._ways[index] = target_way

    # ------------------------------------------------------------------

    @property
    def alias_rate(self) -> float:
        """Fraction of lookups that read a slot last written by a
        different branch (tag-less interference, §4.1)."""
        if self.lookups == 0:
            return 0.0
        return self.alias_lookups / self.lookups

    def valid_entries(self) -> int:
        """Number of slots whose type field is not INVALID."""
        return sum(1 for t in self._types if t != NLSEntryType.INVALID)

    def flush(self) -> None:
        """Invalidate every slot (not the statistics)."""
        n = self.entries
        self._types = [NLSEntryType.INVALID] * n
        self._lines = [0] * n
        self._ways = [0] * n
        self._owners = [-1] * n

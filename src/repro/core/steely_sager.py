"""The Steely–Sager next-line-prediction variant (§6.2).

Calder & Grunwald note that the NLS-table's basic shape was patented
by Steely and Sager (US 5,283,873), with two differences they call
out: the patent addresses only direct-mapped caches, and it predicts
indirect jumps through *"a single 'computed goto' register"* instead
of through the per-branch NLS entry — "by comparison, we use the NLS
predictor to provide the predicted cache index for all branch
destinations other than fall-through branches and return
instructions".

This module implements that variant so the difference is measurable:
a tag-less NLS table for direct branches, plus one shared register
holding the cache index of the most recent indirect-jump target.  Any
program that interleaves several hot indirect sites (virtual dispatch
in `groff`/`cfront`) thrashes the single register, which is exactly
the behaviour the paper's per-entry design avoids.
"""

from __future__ import annotations

from typing import List

from repro.cache.geometry import CacheGeometry
from repro.core.nls_entry import _KIND_TO_TYPE, NLSEntryType, NLSPrediction
from repro.core.nls_table import NLSTable
from repro.isa.branches import BranchKind


class SteelySagerTable(NLSTable):
    """NLS-table variant with a single computed-goto register.

    Indirect jumps mark their slot (so lookups know to consult the
    register) but store their predicted cache index in one shared
    register rather than in the slot.
    """

    def __init__(self, entries: int, geometry: CacheGeometry) -> None:
        if geometry.associativity != 1:
            raise ValueError(
                "the Steely-Sager design only addresses direct-mapped "
                "caches (S6.2); use the NLS-table for associative caches"
            )
        super().__init__(entries, geometry)
        self._indirect: List[bool] = [False] * entries
        #: the single computed-goto register (a cache line field)
        self.goto_register = 0
        self.goto_valid = False

    def lookup(self, pc: int) -> NLSPrediction:
        prediction = super().lookup(pc)
        index = self.index_of(pc)
        if self._indirect[index] and prediction.valid:
            if not self.goto_valid:
                return NLSPrediction(NLSEntryType.INVALID, 0, 0)
            return NLSPrediction(prediction.type, self.goto_register, 0)
        return prediction

    def update(
        self,
        pc: int,
        kind: BranchKind,
        taken: bool,
        target: int = 0,
        target_way: int = 0,
    ) -> None:
        index = (pc >> 2) & self._mask
        if kind == BranchKind.INDIRECT:
            self._types[index] = _KIND_TO_TYPE[kind]
            self._owners[index] = pc
            self._indirect[index] = True
            if taken:
                self.goto_register = (target >> 2) & self._line_field_mask
                self.goto_valid = True
            return
        self._indirect[index] = False
        super().update(pc, kind, taken, target, target_way)

    def flush(self) -> None:
        super().flush()
        self._indirect = [False] * self.entries
        self.goto_valid = False

"""Johnson's coupled cache-successor-index design (§6.2).

Johnson [5] proposed storing *cache successor indices* with each cache
line: for each group of instructions the line remembers the cache line
index to fetch next.  The index doubles as a one-bit direction
predictor — it points either at the fall-through line or at the taken
target, and it is updated on **every** branch execution (taken writes
the target pointer, not-taken writes the fall-through pointer).  The
MIPS R8000/TFP shipped a 1024-entry variant of this scheme.

Contrast with the paper's NLS (§4): NLS updates the line/set fields
only on taken branches and delegates the direction decision to the
shared two-level PHT, which is what buys its higher accuracy.

There is no type field and no return-stack integration: returns and
indirect jumps are predicted by whatever pointer the slot last stored.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from repro.cache.icache import InstructionCache
from repro.isa.branches import BranchKind


class SuccessorPrediction(NamedTuple):
    """A successor-index lookup result."""

    valid: bool
    line_field: int
    way: int


_INVALID = SuccessorPrediction(False, 0, 0)


class JohnsonSuccessorIndex:
    """Per-cache-line successor indices with implicit 1-bit direction.

    ``predictors_per_line`` follows the TFP's one predictor per four
    instructions (2 slots on a 32-byte line).
    """

    def __init__(
        self,
        cache: InstructionCache,
        predictors_per_line: int = 2,
    ) -> None:
        geometry = cache.geometry
        if not 1 <= predictors_per_line <= geometry.instructions_per_line:
            raise ValueError(
                "predictors_per_line must be between 1 and "
                f"{geometry.instructions_per_line}, got {predictors_per_line}"
            )
        self.cache = cache
        self.geometry = geometry
        self.predictors_per_line = predictors_per_line
        self._slice = geometry.instructions_per_line // predictors_per_line
        n = geometry.n_sets * geometry.associativity * predictors_per_line
        self._valid: List[bool] = [False] * n
        self._lines: List[int] = [0] * n
        self._ways: List[int] = [0] * n
        self._assoc = geometry.associativity
        cache.add_evict_listener(self._on_evict)
        self.lookups = 0
        self.invalidations = 0

    # ------------------------------------------------------------------

    def _base(self, set_index: int, way: int) -> int:
        return (set_index * self._assoc + way) * self.predictors_per_line

    def _on_evict(self, set_index: int, way: int, old_tag: int) -> None:
        base = self._base(set_index, way)
        for k in range(self.predictors_per_line):
            self._valid[base + k] = False
        self.invalidations += 1

    def _slot(self, pc: int, way: Optional[int]) -> Optional[int]:
        if way is None:
            way = self.cache.probe(pc)
            if way is None:
                return None
        offset = self.geometry.instruction_offset(pc)
        return self._base(self.geometry.set_index(pc), way) + offset // self._slice

    # ------------------------------------------------------------------

    def lookup(self, pc: int, way: Optional[int] = None) -> SuccessorPrediction:
        """Successor prediction for the branch at *pc* (carried by the
        resident line at *way*; probed when omitted)."""
        self.lookups += 1
        slot = self._slot(pc, way)
        if slot is None or not self._valid[slot]:
            return _INVALID
        return SuccessorPrediction(True, self._lines[slot], self._ways[slot])

    def update(
        self,
        pc: int,
        kind: BranchKind,
        taken: bool,
        target: int,
        target_way: int,
        fall_through: int,
        fall_through_way: int = 0,
    ) -> None:
        """Train with a resolved branch — *every* execution writes the
        pointer: taken stores the target location, not-taken stores the
        fall-through location (Johnson's one-bit behaviour)."""
        slot = self._slot(pc, None)
        if slot is None:
            return
        self._valid[slot] = True
        if taken:
            self._lines[slot] = self.geometry.line_field(target)
            self._ways[slot] = target_way
        else:
            self._lines[slot] = self.geometry.line_field(fall_through)
            self._ways[slot] = fall_through_way

    def flush(self) -> None:
        """Invalidate every successor slot (context-switch modelling)."""
        for index in range(len(self._valid)):
            self._valid[index] = False

    def implied_taken(self, prediction: SuccessorPrediction, fall_through: int) -> bool:
        """The direction implied by a pointer: predicting anything
        other than the fall-through location means predicting taken."""
        if not prediction.valid:
            return False
        return prediction.line_field != self.geometry.line_field(fall_through)

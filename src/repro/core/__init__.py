"""Next cache line and set (NLS) prediction — the paper's contribution.

An NLS predictor is "a pointer into the instruction cache, indicating
the target instruction of a taken branch" (§1).  Each predictor holds:

* a 2-bit **type field** (invalid / return / conditional / other);
* a **line field** — the instruction-cache line index of the target
  plus the instruction's offset within the line;
* a **set field** — the way of an associative cache where the target
  line lives (absent for direct-mapped caches).

Two organisations are provided, matching §4.1:

* :class:`~repro.core.nls_table.NLSTable` — a tag-less direct-mapped
  table indexed by the branch address (the paper's preferred design);
* :class:`~repro.core.nls_cache.NLSCache` — predictors coupled to
  instruction-cache lines (discarded on eviction), the design the
  NLS-table is shown to beat in Figure 4;

plus :class:`~repro.core.johnson.JohnsonSuccessorIndex`, the related
coupled cache-successor-index design with one-bit implicit direction
prediction (§6.2) used by the MIPS R8000/TFP.
"""

from repro.core.nls_entry import NLSEntryType, NLSPrediction, nls_type_for
from repro.core.nls_table import NLSTable
from repro.core.nls_cache import NLSCache
from repro.core.johnson import JohnsonSuccessorIndex
from repro.core.steely_sager import SteelySagerTable

__all__ = [
    "NLSEntryType",
    "NLSPrediction",
    "nls_type_for",
    "NLSTable",
    "NLSCache",
    "JohnsonSuccessorIndex",
    "SteelySagerTable",
]

"""Machine-readable export of experiment results.

``ExperimentResult.data`` holds the raw series each figure renders;
this module writes them as JSON (full fidelity) or flat CSV (one row
per leaf value) so external plotting tools can regenerate the paper's
figures graphically.

Reports carry provenance twice over: the runner's ``meta``
(:class:`~repro.metrics.report.RunMetadata`) and the telemetry
``manifest`` (:class:`~repro.telemetry.manifest.RunManifest` — git
SHA, interpreter/platform, trace key, wall/CPU cost, peak RSS); both
are serialised into every exported report object, so a results file
is self-describing.
"""

from __future__ import annotations

import csv
import json
import os
import time
from dataclasses import asdict, is_dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.harness.checkpoint import (
    FAILURES_NAME,
    CellFailure,
    write_failure_manifest,
)
from repro.harness.experiments import ExperimentResult

#: export-set manifest schema stamp (read by repro.analysis.results)
EXPORTS_SCHEMA = "repro-exports/v1"

#: export-set manifest filename, written next to the result files
EXPORTS_NAME = "EXPORTS.json"


def _jsonable(value):
    """Convert experiment data values into JSON-encodable objects."""
    if hasattr(value, "summary") and hasattr(value, "bep"):
        # SimulationReport-like: export the derived metrics plus run
        # provenance (which backend/worker produced it, and when)
        payload = {
            "label": value.label,
            "program": value.program,
            "pct_misfetched": value.pct_misfetched,
            "pct_mispredicted": value.pct_mispredicted,
            "bep": value.bep,
            "bep_misfetch": value.bep_misfetch,
            "bep_mispredict": value.bep_mispredict,
            "icache_miss_rate": value.icache_miss_rate,
            "cpi": value.cpi,
        }
        meta = getattr(value, "meta", None)
        if meta is not None:
            payload["meta"] = {k: _jsonable(v) for k, v in asdict(meta).items()}
        manifest = getattr(value, "manifest", None)
        if manifest is not None:
            payload["manifest"] = {
                k: _jsonable(v) for k, v in manifest.to_dict().items()
            }
        attribution = getattr(value, "attribution", None)
        if attribution is not None:
            # cause-attribution snapshot (DESIGN.md §11): per-cause
            # totals, per-site profiles, gap histogram, sampled events
            payload["attribution"] = _jsonable(attribution)
        return payload
    if is_dataclass(value) and not isinstance(value, type):
        return {k: _jsonable(v) for k, v in asdict(value).items()}
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)


def to_json(result: ExperimentResult, indent: int = 2) -> str:
    """Serialise *result* (name, title, data) to a JSON string."""
    return json.dumps(
        {
            "name": result.name,
            "title": result.title,
            "data": _jsonable(result.data),
        },
        indent=indent,
        sort_keys=True,
    )


def _flatten(prefix: Tuple[str, ...], value) -> Iterator[Tuple[Tuple[str, ...], object]]:
    value = _jsonable(value)
    if isinstance(value, dict):
        for key, inner in value.items():
            yield from _flatten(prefix + (str(key),), inner)
    elif isinstance(value, list):
        for position, inner in enumerate(value):
            yield from _flatten(prefix + (str(position),), inner)
    else:
        yield prefix, value


def to_csv_rows(result: ExperimentResult) -> List[List[object]]:
    """Flatten *result*'s data into ``[key parts..., value]`` rows."""
    rows: List[List[object]] = []
    for key, value in _flatten((), result.data):
        rows.append([result.name, *key, value])
    return rows


def write_result(
    result: ExperimentResult,
    directory: str,
    formats: Tuple[str, ...] = ("txt", "json", "csv"),
) -> List[str]:
    """Write *result* into *directory* in the requested formats;
    returns the written paths."""
    os.makedirs(directory, exist_ok=True)
    written: List[str] = []
    if "txt" in formats:
        path = os.path.join(directory, f"{result.name}.txt")
        with open(path, "w") as handle:
            handle.write(str(result) + "\n")
        written.append(path)
    if "json" in formats:
        path = os.path.join(directory, f"{result.name}.json")
        with open(path, "w") as handle:
            handle.write(to_json(result) + "\n")
        written.append(path)
    if "csv" in formats:
        path = os.path.join(directory, f"{result.name}.csv")
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            for row in to_csv_rows(result):
                writer.writerow(row)
        written.append(path)
    return written


def write_export_manifest(
    directory: str,
    names: Sequence[str],
    seed: Optional[int] = None,
    engine: str = "reference",
    instructions: Optional[int] = None,
    programs: Optional[Sequence[str]] = None,
    label: Optional[str] = None,
) -> str:
    """Write (or merge into) the directory's ``EXPORTS.json`` manifest.

    The manifest makes an ``--out`` directory a self-describing
    **export set** for ``harness analyze`` (docs/ANALYSIS.md): it
    records which experiments were exported and the set-level
    provenance — trace seed, engine, instruction budget, git SHA —
    that the tidy loader stamps onto every row.  Successive CLI runs
    into the same directory merge their experiment lists, so a set can
    be accumulated one experiment at a time; provenance fields are
    overwritten by the latest run (one set should be produced by one
    consistent configuration).
    """
    from repro.telemetry.manifest import git_sha

    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, EXPORTS_NAME)
    manifest: Dict[str, Any] = {}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                existing = json.load(handle)
            if isinstance(existing, dict) and existing.get("schema") == EXPORTS_SCHEMA:
                manifest = existing
        except (OSError, json.JSONDecodeError):
            manifest = {}
    experiments = sorted(set(manifest.get("experiments", [])) | set(names))
    manifest.update(
        {
            "schema": EXPORTS_SCHEMA,
            "label": label
            or manifest.get("label")
            or os.path.basename(os.path.normpath(directory)),
            "experiments": experiments,
            "seed": seed,
            "engine": engine,
            "instructions": instructions,
            "programs": list(programs) if programs is not None else None,
            "git_sha": git_sha(),
            "written_s": time.time(),
        }
    )
    temp = f"{path}.tmp.{os.getpid()}"
    with open(temp, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(temp, path)
    return path


def write_failures(directory: str, failures: Iterable[CellFailure]) -> str:
    """Write the sweep's quarantine manifest (``FAILURES.json``) into
    *directory* (atomic rename — see DESIGN.md §12); returns the path.

    The manifest names every quarantined cell with its config label,
    program, retry count and last traceback, so a non-zero CLI exit is
    diagnosable without re-running the sweep."""
    os.makedirs(directory, exist_ok=True)
    return write_failure_manifest(
        os.path.join(directory, FAILURES_NAME), failures
    )

"""Crash-safe checkpoint journal + failure manifest for run plans.

The resilience layer (DESIGN.md §12) needs two durable artifacts:

* the **journal** — an append-only NDJSON file
  (``<checkpoint-dir>/journal.ndjson``) holding one line per completed
  simulation cell: the cell's identity (the dedup cell key of
  :func:`cell_key` plus the fully resolved corpus trace key) and its
  full :class:`~repro.metrics.report.SimulationReport`.  Appends are
  single ``write()`` calls, flushed and fsynced per line, so a crash
  can at worst tear the final line — and the loader tolerates exactly
  that by skipping lines that do not parse.  ``--resume`` replays the
  journal and recomputes nothing that is already recorded;

* the **failure manifest** — ``FAILURES.json``, written via
  atomic-rename, listing every quarantined cell with its last error
  and traceback so a non-zero sweep exit is diagnosable offline.

Reports round-trip losslessly for every field that participates in
report equality (counts, penalties, per-kind breakdown, frontend
stats).  ``attribution`` snapshots survive too, but JSON stringifies
their integer site keys; like ``meta``/``manifest`` they are excluded
from equality, so a replayed report still compares equal to a freshly
computed one.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any, Dict, IO, Iterable, List, Optional

from repro.isa.branches import BranchKind
from repro.metrics.report import PenaltyModel, RunMetadata, SimulationReport
from repro.telemetry.manifest import RunManifest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner imports us)
    from repro.harness.runner import RunRequest

#: journal / manifest schema stamp
CHECKPOINT_SCHEMA = "repro-checkpoint/v1"

#: journal filename inside the checkpoint directory
JOURNAL_NAME = "journal.ndjson"

#: failure-manifest filename (written next to the journal by default)
FAILURES_NAME = "FAILURES.json"


def payload_digest(payload_text: str) -> str:
    """SHA-256 hex digest of a serialised cell payload.

    The integrity currency shared by the journal's consumers and the
    persistent result store (:mod:`repro.service.store`): payloads are
    checksummed on write and re-verified on read, so silent on-disk
    corruption surfaces as a cache miss instead of a wrong number."""
    return hashlib.sha256(payload_text.encode("utf-8")).hexdigest()


def cell_key(request: "RunRequest") -> str:
    """Stable content hash of one simulation cell.

    Canonical JSON over the full config dataclass plus every request
    knob — the same identity :class:`~repro.harness.runner.RunPlan`
    dedups on, rendered hashable across processes and sessions."""
    payload = {
        "config": asdict(request.config),
        "program": request.program,
        "instructions": request.instructions,
        "seed": request.seed,
        "layout": request.layout,
        "warmup": request.warmup,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


# ---------------------------------------------------------------------------
# report (de)serialisation
# ---------------------------------------------------------------------------


def report_to_dict(report: SimulationReport) -> Dict[str, Any]:
    """JSON-encodable form of *report*, invertible by
    :func:`report_from_dict` for every equality-bearing field."""
    payload: Dict[str, Any] = {
        "label": report.label,
        "program": report.program,
        "n_instructions": report.n_instructions,
        "n_breaks": report.n_breaks,
        "misfetches": report.misfetches,
        "mispredicts": report.mispredicts,
        "icache_accesses": report.icache_accesses,
        "icache_misses": report.icache_misses,
        "penalties": asdict(report.penalties),
    }
    if report.by_kind is not None:
        payload["by_kind"] = {
            str(int(kind)): list(values) for kind, values in report.by_kind.items()
        }
    if report.frontend_stats is not None:
        payload["frontend_stats"] = dict(report.frontend_stats)
    if report.attribution is not None:
        payload["attribution"] = _stringify_keys(report.attribution)
    if report.meta is not None:
        payload["meta"] = asdict(report.meta)
    if report.manifest is not None:
        payload["manifest"] = report.manifest.to_dict()
    return payload


def report_from_dict(payload: Dict[str, Any]) -> SimulationReport:
    """Rebuild the :class:`SimulationReport` a journal line recorded."""
    by_kind = payload.get("by_kind")
    meta = payload.get("meta")
    manifest = payload.get("manifest")
    return SimulationReport(
        label=payload["label"],
        program=payload["program"],
        n_instructions=payload["n_instructions"],
        n_breaks=payload["n_breaks"],
        misfetches=payload["misfetches"],
        mispredicts=payload["mispredicts"],
        icache_accesses=payload["icache_accesses"],
        icache_misses=payload["icache_misses"],
        penalties=PenaltyModel(**payload["penalties"]),
        by_kind=(
            None
            if by_kind is None
            else {
                BranchKind(int(kind)): tuple(values)
                for kind, values in by_kind.items()
            }
        ),
        frontend_stats=payload.get("frontend_stats"),
        attribution=payload.get("attribution"),
        meta=None if meta is None else RunMetadata(**meta),
        manifest=None if manifest is None else _manifest_from_dict(manifest),
    )


def _manifest_from_dict(payload: Dict[str, Any]) -> RunManifest:
    fields = dict(payload)
    fields["trace_key"] = tuple(fields.get("trace_key", ()))
    fields.setdefault("extra", None)
    return RunManifest(**fields)


def _stringify_keys(value: Any) -> Any:
    """Recursively coerce dict keys to strings (JSON requires it)."""
    if isinstance(value, dict):
        return {str(key): _stringify_keys(inner) for key, inner in value.items()}
    if isinstance(value, (list, tuple)):
        return [_stringify_keys(inner) for inner in value]
    return value


# ---------------------------------------------------------------------------
# the journal
# ---------------------------------------------------------------------------


class CheckpointJournal:
    """Append-only NDJSON journal of completed simulation cells."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.path = os.path.join(directory, JOURNAL_NAME)
        self._handle: Optional[IO[str]] = None

    # -- writing -------------------------------------------------------

    def append(self, request: "RunRequest", report: SimulationReport) -> None:
        """Durably record one completed cell (flush + fsync per line)."""
        entry = {
            "schema": CHECKPOINT_SCHEMA,
            "cell": cell_key(request),
            "trace_key": list(request.resolved_trace_key()),
            "config": request.config.describe(),
            "program": request.program,
            "instructions": request.instructions,
            "seed": request.seed,
            "layout": request.layout,
            "warmup": request.warmup,
            "report": report_to_dict(report),
        }
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Close the append handle (safe to call repeatedly)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- reading -------------------------------------------------------

    def load(self) -> Dict[str, Dict[str, Any]]:
        """Parse the journal into ``{cell_key: entry}`` (last write
        wins).  Torn tails and foreign lines are skipped, not fatal."""
        entries: Dict[str, Dict[str, Any]] = {}
        if not os.path.exists(self.path):
            return entries
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail from a crash mid-append
                if entry.get("schema") != CHECKPOINT_SCHEMA:
                    continue
                if "cell" in entry and "report" in entry:
                    entries[entry["cell"]] = entry
        return entries

    def replay(
        self, requests: Iterable["RunRequest"]
    ) -> Dict["RunRequest", SimulationReport]:
        """Reports for every request the journal already has.

        A journal entry only replays when both the cell key *and* the
        fully resolved trace key match — so a changed
        ``REPRO_TRACE_SCALE`` (which silently rescales every trace)
        invalidates stale entries instead of resurrecting them."""
        entries = self.load()
        replayed: Dict["RunRequest", SimulationReport] = {}
        for request in requests:
            entry = entries.get(cell_key(request))
            if entry is None:
                continue
            if entry.get("trace_key") != list(request.resolved_trace_key()):
                continue
            replayed[request] = report_from_dict(entry["report"])
        return replayed

    def compact(self) -> int:
        """Rewrite the journal via atomic rename, dropping torn tails
        and superseded duplicates; returns the surviving entry count."""
        entries = self.load()
        self.close()
        tmp = f"{self.path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            for key in sorted(entries):
                handle.write(json.dumps(entries[key], sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        return len(entries)


# ---------------------------------------------------------------------------
# the failure manifest
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CellFailure:
    """One quarantined cell: its identity and its last recorded error."""

    request: "RunRequest"
    error_type: str
    message: str
    traceback: str
    attempts: int
    #: ``deterministic`` (same exception twice) or ``exhausted``
    #: (transient failures past ``max_retries``)
    kind: str

    def to_dict(self) -> Dict[str, Any]:
        """JSON-encodable manifest entry for this failure."""
        return {
            "cell": cell_key(self.request),
            "config": self.request.config.label(),
            "program": self.request.program,
            "instructions": self.request.instructions,
            "seed": self.request.seed,
            "layout": self.request.layout,
            "kind": self.kind,
            "attempts": self.attempts,
            "error_type": self.error_type,
            "error": self.message,
            "traceback": self.traceback,
        }


def failures_payload(failures: Iterable[CellFailure]) -> Dict[str, Any]:
    """The ``FAILURES.json`` document for *failures*."""
    quarantined: List[Dict[str, Any]] = [
        failure.to_dict() for failure in failures
    ]
    return {
        "schema": CHECKPOINT_SCHEMA,
        "quarantined": quarantined,
        "count": len(quarantined),
    }


def write_failure_manifest(path: str, failures: Iterable[CellFailure]) -> str:
    """Atomically (tmp + rename) write ``FAILURES.json`` to *path*."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(failures_payload(failures), handle, indent=2, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path

"""ASCII rendering of tables and stacked-bar figures.

The paper's evaluation figures are stacked bar charts (misfetch on
top, mispredict below).  These helpers render the same data as
monospace text so every experiment can be regenerated and eyeballed in
a terminal or committed to EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render *rows* as an aligned monospace table."""
    rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for position, value in enumerate(row):
            widths[position] = max(widths[position], len(value))
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("")
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(value.rjust(widths[i]) for i, value in enumerate(row)).rstrip()
        )
    return "\n".join(lines)


def format_seconds(seconds: float) -> str:
    """Render a wall time compactly: milliseconds under one second,
    one-decimal seconds otherwise (used by the CLI's parallel summary
    and the sweep benchmarks)."""
    if seconds < 1.0:
        return f"{seconds * 1000:.0f}ms"
    return f"{seconds:.1f}s"


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def stacked_bep_bar(
    misfetch: float,
    mispredict: float,
    scale: float = 60.0,
    maximum: float = 1.5,
) -> str:
    """One stacked BEP bar: ``#`` for the mispredict part (the lower
    segment in the paper's figures), ``+`` for the misfetch part."""
    mp_cells = int(round(min(mispredict, maximum) / maximum * scale))
    mf_cells = int(round(min(misfetch, maximum) / maximum * scale))
    return "#" * mp_cells + "+" * mf_cells


def bep_chart(
    entries: Sequence[tuple],
    title: Optional[str] = None,
    scale: float = 60.0,
    maximum: Optional[float] = None,
) -> str:
    """Render ``(label, misfetch_bep, mispredict_bep)`` rows as a
    horizontal stacked bar chart with a numeric BEP column."""
    entries = list(entries)
    if maximum is None:
        peak = max((mf + mp for _, mf, mp in entries), default=1.0)
        maximum = max(peak, 1e-9)
    width = max((len(label) for label, _, _ in entries), default=0)
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("")
    lines.append(f"{'':{width}}  BEP    (# mispredict, + misfetch)")
    for label, misfetch, mispredict in entries:
        bar = stacked_bep_bar(misfetch, mispredict, scale=scale, maximum=maximum)
        lines.append(f"{label:{width}}  {misfetch + mispredict:5.3f}  {bar}")
    return "\n".join(lines)

"""Declarative experiment specs: the spec → plan → backend pipeline.

An :class:`ExperimentSpec` is the registered, declarative form of one
table/figure: a name, a one-line summary, and a *plan builder* that —
given the experiment's keyword knobs (programs, trace length, cache
grid, ...) — materialises an :class:`ExperimentPlan`: the exact
simulation cells the experiment needs plus a ``finish`` renderer that
turns the cell reports into the final :class:`ExperimentResult`.

Splitting *what to simulate* (cells) from *how to present it*
(finish) is what makes the full-paper reproduction embarrassingly
parallel: :func:`run_plans` pools the cells of many experiments into
one deduplicated :class:`~repro.harness.runner.RunPlan`, executes the
unique cells through any backend, and hands each experiment's
renderer the shared reports.  Cost-model experiments (fig3, fig6, …)
simply declare zero cells and do all their work in ``finish``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.harness.runner import (
    ExecutionPolicy,
    RunPlan,
    RunRequest,
    quarantined_report,
)
from repro.metrics.report import SimulationReport

#: the request → report mapping a plan's ``finish`` renderer receives
ReportMap = Mapping[RunRequest, SimulationReport]


@dataclass
class ExperimentResult:
    """Rendered text plus raw data of one regenerated table/figure."""

    name: str
    title: str
    text: str
    data: Dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"{self.title}\n\n{self.text}"


@dataclass(frozen=True)
class ExperimentPlan:
    """The materialised cells + renderer of one experiment invocation.

    ``cells`` may repeat or overlap other experiments' cells — the
    executor dedups; ``finish`` must only read ``reports[cell]`` for
    its own cells, so it works identically whether the reports came
    from a private serial run or a shared parallel plan.
    """

    name: str
    cells: Tuple[RunRequest, ...]
    finish: Callable[[ReportMap], ExperimentResult]

    def run(
        self,
        backend: str = "serial",
        jobs: Optional[int] = None,
        policy: Optional[ExecutionPolicy] = None,
    ) -> ExperimentResult:
        """Execute this plan's cells alone and render the result."""
        plan = RunPlan(self.cells)
        reports = plan.execute(backend=backend, jobs=jobs, policy=policy)
        return self.finish(_with_placeholders(reports, plan))


@dataclass(frozen=True)
class ExperimentSpec:
    """A registered experiment: name, summary, and plan builder.

    ``build(**kwargs)`` accepts the same keyword knobs the historical
    per-figure driver functions took and returns the materialised
    :class:`ExperimentPlan`; building a plan is cheap (no simulation),
    so cell counts can be inspected without running anything.
    """

    name: str
    summary: str
    build: Callable[..., ExperimentPlan]

    def plan(self, **kwargs) -> ExperimentPlan:
        """Materialise the plan for the given experiment knobs."""
        return self.build(**kwargs)

    def run(
        self,
        backend: str = "serial",
        jobs: Optional[int] = None,
        policy: Optional[ExecutionPolicy] = None,
        **kwargs,
    ) -> ExperimentResult:
        """Plan, execute and render this experiment in one call."""
        return self.plan(**kwargs).run(backend=backend, jobs=jobs, policy=policy)


def _with_placeholders(
    reports: Mapping[RunRequest, SimulationReport], plan: RunPlan
) -> Mapping[RunRequest, SimulationReport]:
    """Fill quarantined cells with zero-metric placeholders so every
    renderer can finish the sweep (DESIGN.md §12 — graceful
    degradation); the CLI separately reports the failures and exits
    non-zero."""
    if not plan.failures:
        return reports
    filled = dict(reports)
    for request in plan.failures:
        filled[request] = quarantined_report(request)
    return filled


def with_engine(
    plans: Sequence[ExperimentPlan], engine: str
) -> List[ExperimentPlan]:
    """Copies of *plans* with every cell's config switched to *engine*.

    The engine-selection seam of the harness: plan builders declare
    *what* to simulate with the default (reference) engine, and the
    CLI rewrites the materialised cells when ``--engine fast`` is
    requested — so specs stay engine-agnostic and dedup keys still
    collapse identical cells within one engine choice.  ``finish``
    renderers close over the *original* requests they built, so each
    rewritten plan's renderer receives the reports aliased under both
    the rewritten and the original (reference-engine) keys.
    """
    if engine == "reference":
        return list(plans)
    return [
        replace(
            plan,
            cells=tuple(
                replace(cell, config=replace(cell.config, engine=engine))
                for cell in plan.cells
            ),
            finish=_engine_transparent(plan.finish),
        )
        for plan in plans
    ]


def _engine_transparent(
    finish: Callable[[ReportMap], ExperimentResult]
) -> Callable[[ReportMap], ExperimentResult]:
    """Wrap a renderer so engine-rewritten reports are also reachable
    under the reference-engine request keys the renderer captured."""

    def wrapper(reports: ReportMap) -> ExperimentResult:
        """Alias engine-rewritten reports under reference-engine keys."""
        aliased: Dict[RunRequest, SimulationReport] = dict(reports)
        for request, report in reports.items():
            if request.config.engine != "reference":
                aliased.setdefault(
                    replace(
                        request,
                        config=replace(request.config, engine="reference"),
                    ),
                    report,
                )
        return finish(aliased)

    return wrapper


def with_seed(
    plans: Sequence[ExperimentPlan], seed: Optional[int]
) -> List[ExperimentPlan]:
    """Copies of *plans* with every cell pinned to trace *seed*.

    The seed-selection seam mirroring :func:`with_engine`: plan
    builders declare cells with the default seed (``None`` = the
    program profile's calibrated seed) and the CLI rewrites the
    materialised cells when ``--seed N`` is requested — producing an
    independent seeded replication of the same experiment for
    cross-seed statistics (``harness analyze``, docs/ANALYSIS.md).
    ``finish`` renderers close over the original requests, so each
    rewritten plan's renderer receives the reports aliased back under
    the default-seed keys too.
    """
    if seed is None:
        return list(plans)
    return [
        replace(
            plan,
            cells=tuple(replace(cell, seed=seed) for cell in plan.cells),
            finish=_seed_transparent(plan.finish, seed),
        )
        for plan in plans
    ]


def _seed_transparent(
    finish: Callable[[ReportMap], ExperimentResult], seed: int
) -> Callable[[ReportMap], ExperimentResult]:
    """Wrap a renderer so seed-rewritten reports are also reachable
    under the default-seed request keys the renderer captured."""

    def wrapper(reports: ReportMap) -> ExperimentResult:
        """Alias seed-rewritten reports under default-seed keys."""
        aliased: Dict[RunRequest, SimulationReport] = dict(reports)
        for request, report in reports.items():
            if request.seed == seed:
                aliased.setdefault(replace(request, seed=None), report)
        return finish(aliased)

    return wrapper


def run_plans(
    plans: Sequence[ExperimentPlan],
    backend: str = "serial",
    jobs: Optional[int] = None,
    policy: Optional[ExecutionPolicy] = None,
    store=None,
    observer=None,
) -> Tuple[List[ExperimentResult], RunPlan]:
    """Execute many experiments against one shared, deduplicated plan.

    Returns the rendered results (in *plans* order) together with the
    executed :class:`RunPlan`, whose ``requested``/``unique`` counters
    report how many engine runs cross-experiment dedup saved.  Under a
    resilience *policy*, quarantined cells render as placeholder
    reports and their failure records stay on ``plan.failures``.  With
    a *store* (a :class:`repro.service.store.ResultStore`), cells
    already persisted are served without simulation and fresh results
    are written back; *observer* receives per-cell progress events
    (see :data:`repro.harness.runner.OBSERVER_EVENTS`).
    """
    plan = RunPlan()
    for experiment in plans:
        plan.add_all(experiment.cells)
    reports = _with_placeholders(
        plan.execute(
            backend=backend,
            jobs=jobs,
            policy=policy,
            store=store,
            observer=observer,
        ),
        plan,
    )
    return [experiment.finish(reports) for experiment in plans], plan

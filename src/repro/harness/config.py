"""Architecture configurations: one value object describing a complete
simulated front-end + cache, buildable into a fresh
:class:`~repro.fetch.engine.FetchEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Optional, Tuple

from repro.cache.geometry import CacheGeometry
from repro.cache.icache import InstructionCache
from repro.core.johnson import JohnsonSuccessorIndex
from repro.fetch.attribution import AttributionCollector
from repro.core.nls_cache import NLSCache
from repro.core.nls_table import NLSTable
from repro.core.steely_sager import SteelySagerTable
from repro.fetch.engine import FetchEngine
from repro.fetch.frontends import (
    BTBFrontEnd,
    CoupledBTBFrontEnd,
    FallThroughFrontEnd,
    JohnsonFrontEnd,
    NLSCacheFrontEnd,
    NLSTableFrontEnd,
    OracleFrontEnd,
)
from repro.metrics.report import PenaltyModel
from repro.predictors.btb import BranchTargetBuffer, CoupledBTB
from repro.predictors.pht import make_direction_predictor
from repro.predictors.ras import ReturnAddressStack

FRONTENDS: Tuple[str, ...] = (
    "nls-table",
    "nls-cache",
    "btb",
    "coupled-btb",
    "steely-sager",
    "johnson",
    "oracle",
    "fall-through",
)

#: simulation engines: the pure-Python reference loop, or the
#: vectorised replay (which falls back to the reference for
#: configurations outside its supported matrix — see
#: :func:`repro.fetch.fast_engine.unsupported_reason`)
ENGINES: Tuple[str, ...] = ("reference", "fast")


@dataclass(frozen=True)
class ArchitectureConfig:
    """A complete simulated configuration.

    ``entries`` is the NLS-table size or the BTB size, depending on
    ``frontend``; ``btb_assoc`` only applies to BTBs;
    ``predictors_per_line``/``nls_cache_policy`` only to NLS-cache and
    Johnson front-ends.
    """

    frontend: str = "nls-table"
    cache_kb: int = 16
    cache_assoc: int = 1
    line_bytes: int = 32
    cache_replacement: str = "lru"
    entries: int = 1024
    btb_assoc: int = 1
    #: BTB allocation policy: 'taken-only' (the paper's) or 'all'
    btb_allocate: str = "taken-only"
    predictors_per_line: int = 2
    nls_cache_policy: str = "partition"
    direction: str = "gshare"
    pht_entries: int = 4096
    ras_entries: int = 32
    misfetch_penalty: float = 1.0
    mispredict_penalty: float = 4.0
    icache_miss_penalty: float = 5.0
    #: model wrong-path cache touches on misfetches (off in the paper)
    model_wrong_path: bool = False
    #: instructions between full state flushes (context switches);
    #: None = never (the paper's single-process traces)
    flush_interval: Optional[int] = None
    #: attach a cause-attribution collector (DESIGN.md §11) to the
    #: built engine: exact per-cause/per-site tallies plus a sampled
    #: event ring.  Part of the config so run-plan dedup keys on it
    #: and process workers rebuild it from the spec alone.
    attribution: bool = False
    #: keep every ``attribution_sample``-th penalty event in the ring
    attribution_sample: int = 64
    #: simulation engine: ``"reference"`` (the per-branch Python loop)
    #: or ``"fast"`` (the vectorised replay of
    #: :mod:`repro.fetch.fast_engine`); both produce identical reports
    engine: str = "reference"

    def __post_init__(self) -> None:
        if self.frontend not in FRONTENDS:
            raise ValueError(
                f"unknown frontend {self.frontend!r}; expected one of {FRONTENDS}"
            )
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}"
            )
        if self.cache_kb < 1:
            raise ValueError("cache size must be at least 1 KB")
        if self.attribution_sample < 1:
            raise ValueError("attribution_sample must be positive")

    # ------------------------------------------------------------------

    @property
    def geometry(self) -> CacheGeometry:
        """Instruction-cache geometry of this configuration."""
        return CacheGeometry(
            size_bytes=self.cache_kb * 1024,
            line_bytes=self.line_bytes,
            associativity=self.cache_assoc,
        )

    @property
    def penalties(self) -> PenaltyModel:
        """Penalty model of this configuration."""
        return PenaltyModel(
            misfetch=self.misfetch_penalty,
            mispredict=self.mispredict_penalty,
            icache_miss=self.icache_miss_penalty,
        )

    def label(self) -> str:
        """Human-readable configuration label used in reports."""
        cache = f"{self.cache_kb}K/{self.cache_assoc}w"
        if self.frontend == "btb":
            return f"btb-{self.entries}e-{self.btb_assoc}w @ {cache}"
        if self.frontend == "coupled-btb":
            return f"coupled-btb-{self.entries}e-{self.btb_assoc}w @ {cache}"
        if self.frontend == "nls-table":
            return f"nls-table-{self.entries}e @ {cache}"
        if self.frontend == "steely-sager":
            return f"steely-sager-{self.entries}e @ {cache}"
        if self.frontend == "nls-cache":
            return (
                f"nls-cache-{self.predictors_per_line}pl-"
                f"{self.nls_cache_policy} @ {cache}"
            )
        if self.frontend == "johnson":
            return f"johnson-{self.predictors_per_line}pl @ {cache}"
        return f"{self.frontend} @ {cache}"

    def with_cache(self, cache_kb: int, cache_assoc: int) -> "ArchitectureConfig":
        """Copy of this config with a different instruction cache."""
        return replace(self, cache_kb=cache_kb, cache_assoc=cache_assoc)

    def describe(self) -> "dict":
        """Provenance dict: label, frontend and every non-default field.

        The compact form run metadata and exports use — default knobs
        are elided so the description stays readable while still
        reconstructing the configuration exactly.
        """
        defaults = ArchitectureConfig()
        overrides = {
            spec.name: getattr(self, spec.name)
            for spec in fields(self)
            if getattr(self, spec.name) != getattr(defaults, spec.name)
        }
        return {"label": self.label(), "frontend": self.frontend, **overrides}

    # ------------------------------------------------------------------

    def build(self):
        """Build a fresh engine (fresh cache and predictor state).

        ``engine == "fast"`` builds the vectorised
        :class:`~repro.fetch.fast_engine.FastEngine` when the
        configuration lies in its supported matrix, and otherwise
        falls back to the reference engine with the reason recorded on
        ``engine.engine_fallback`` (the harness stamps it into the run
        manifest).
        """
        if self.engine == "fast":
            from repro.fetch.capability import fallback_reason
            from repro.fetch.fast_engine import FastEngine

            reason = fallback_reason(self)
            if reason is None:
                return FastEngine(self)
            engine = self._build_reference()
            engine.engine_fallback = reason.value
            return engine
        return self._build_reference()

    def _build_reference(self) -> FetchEngine:
        """Build the reference per-branch engine for this config."""
        cache = InstructionCache(self.geometry, replacement=self.cache_replacement)
        if self.frontend == "btb":
            frontend = BTBFrontEnd(
                BranchTargetBuffer(
                    self.entries, self.btb_assoc, allocate=self.btb_allocate
                )
            )
        elif self.frontend == "coupled-btb":
            frontend = CoupledBTBFrontEnd(
                CoupledBTB(self.entries, self.btb_assoc)
            )
        elif self.frontend == "nls-table":
            frontend = NLSTableFrontEnd(
                NLSTable(self.entries, cache.geometry), cache
            )
        elif self.frontend == "steely-sager":
            frontend = NLSTableFrontEnd(
                SteelySagerTable(self.entries, cache.geometry), cache
            )
            frontend.name = f"steely-sager-{self.entries}e"
        elif self.frontend == "nls-cache":
            frontend = NLSCacheFrontEnd(
                NLSCache(
                    cache,
                    predictors_per_line=self.predictors_per_line,
                    policy=self.nls_cache_policy,
                )
            )
        elif self.frontend == "johnson":
            frontend = JohnsonFrontEnd(
                JohnsonSuccessorIndex(
                    cache, predictors_per_line=self.predictors_per_line
                )
            )
        elif self.frontend == "oracle":
            frontend = OracleFrontEnd()
        else:  # fall-through
            frontend = FallThroughFrontEnd()
        return FetchEngine(
            cache=cache,
            frontend=frontend,
            direction_predictor=make_direction_predictor(
                self.direction, entries=self.pht_entries
            ),
            return_stack=ReturnAddressStack(self.ras_entries),
            penalties=self.penalties,
            model_wrong_path=self.model_wrong_path,
            flush_interval=self.flush_interval,
            attribution=(
                AttributionCollector(sample=self.attribution_sample)
                if self.attribution
                else None
            ),
        )

"""Per-figure experiment specs.

One :class:`~repro.harness.spec.ExperimentSpec` per table/figure of
the paper.  Each spec's plan builder declares the simulation cells the
experiment needs (as picklable :class:`~repro.harness.runner.RunRequest`
values) and a small ``finish`` renderer that turns the cell reports
into an :class:`ExperimentResult` carrying both the rendered monospace
text (what the CLI prints and EXPERIMENTS.md records) and the raw data
(what the tests and benchmarks assert on).  Cost-model experiments
(fig3, fig6, address-space) declare zero cells and do all their work
in the renderer.

The module-level driver functions (``table1``, ``fig4``, ...) are
kept as the stable public API: each materialises its spec's plan and
executes it on the serial backend, bit-identical to the historical
hand-rolled loops.  Cross-experiment dedup and parallel execution go
through :func:`repro.harness.spec.run_plans` (see the CLI's
``--jobs``).

All simulation experiments accept ``programs`` / ``instructions`` /
``warmup`` so benchmarks can run scaled-down versions; defaults
reproduce the full configuration of the paper's evaluation (§5.1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.cache.geometry import CacheGeometry
from repro.cost.rbe import RBEModel
from repro.cost.timing import AccessTimeModel
from repro.harness.config import ArchitectureConfig
from repro.harness.runner import DEFAULT_WARMUP, RunRequest
from repro.harness.spec import (
    ExperimentPlan,
    ExperimentResult,
    ExperimentSpec,
    ReportMap,
)
from repro.harness.tables import bep_chart, format_table
from repro.metrics.report import SimulationReport, average_reports
from repro.workloads.corpus import generate_trace
from repro.workloads.generator import build_program
from repro.workloads.profiles import get_profile, paper_programs
from repro.workloads.stats import TraceAttributes, measure

#: the paper's instruction-cache grid: {8K,16K,32K} x {direct, 4-way}
CACHE_GRID: Tuple[Tuple[int, int], ...] = (
    (8, 1),
    (8, 4),
    (16, 1),
    (16, 4),
    (32, 1),
    (32, 4),
)


def _programs(programs: Optional[Sequence[str]]) -> List[str]:
    return list(programs) if programs is not None else list(paper_programs())


def _cells(
    config: ArchitectureConfig,
    programs: Sequence[str],
    instructions: Optional[int],
    warmup: float,
    layout: str = "natural",
) -> Tuple[RunRequest, ...]:
    """One cell per program for *config*."""
    return tuple(
        RunRequest(
            config=config,
            program=program,
            instructions=instructions,
            layout=layout,
            warmup=warmup,
        )
        for program in programs
    )


def _mean(
    reports: ReportMap, cells: Sequence[RunRequest], label: str
) -> SimulationReport:
    """Equal-weight average of *cells*' reports, relabelled."""
    return average_reports([reports[cell] for cell in cells], label=label)


# ---------------------------------------------------------------------------
# Table 1 — measured attributes of the traced programs
# ---------------------------------------------------------------------------


def _table1_plan(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
) -> ExperimentPlan:
    program_names = _programs(programs)

    def finish(reports: ReportMap) -> ExperimentResult:
        """Render this experiment's cell reports into its result."""
        lines = [TraceAttributes.header()]
        rows = {}
        for name in program_names:
            profile = get_profile(name)
            trace = generate_trace(name, instructions=instructions)
            program = build_program(profile)
            attributes = measure(trace, program)
            rows[name] = attributes
            lines.append(attributes.row())
            paper = profile.paper
            if paper is not None:
                lines.append(
                    f"{'  (paper)':<10} {paper.instructions:>13,} "
                    f"{paper.pct_breaks:>7.2f} {paper.q50:>6} {paper.q90:>6} "
                    f"{paper.q99:>6} {paper.q100:>7} "
                    f"{paper.static_conditionals:>7} {paper.pct_taken:>7.2f} "
                    f"{paper.pct_cbr:>6.2f} {paper.pct_ij:>5.2f} "
                    f"{paper.pct_br:>5.2f} {paper.pct_call:>6.2f} "
                    f"{paper.pct_ret:>6.2f}"
                )
        return ExperimentResult(
            name="table1",
            title="Table 1: measured attributes of the traced programs",
            text="\n".join(lines),
            data={"attributes": rows},
        )

    return ExperimentPlan(name="table1", cells=(), finish=finish)


def table1(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
) -> ExperimentResult:
    """Regenerate Table 1 from the synthetic traces, with the paper's
    measured row under each program for comparison."""
    return _table1_plan(programs=programs, instructions=instructions).run()


# ---------------------------------------------------------------------------
# Figure 3 — RBE implementation costs
# ---------------------------------------------------------------------------


def _fig3_plan(line_bytes: int = 32) -> ExperimentPlan:
    def finish(reports: ReportMap) -> ExperimentResult:
        """Render this experiment's cell reports into its result."""
        model = RBEModel()
        rows: List[Tuple[str, int, float]] = []
        data: Dict[str, float] = {}
        for kb in (8, 16, 32, 64):
            geometry = CacheGeometry(kb * 1024, line_bytes, 1)
            cost = model.nls_cache_cost(geometry)
            rows.append((cost.label, cost.storage_bits, cost.rbe))
            data[f"nls-cache@{kb}K"] = cost.rbe
        for entries in (512, 1024, 2048):
            for kb in (8, 16, 32, 64):
                geometry = CacheGeometry(kb * 1024, line_bytes, 1)
                cost = model.nls_table_cost(entries, geometry)
                rows.append((cost.label, cost.storage_bits, cost.rbe))
                data[f"nls-table-{entries}@{kb}K"] = cost.rbe
        for entries in (128, 256):
            for assoc in (1, 2, 4):
                cost = model.btb_cost(entries, assoc)
                rows.append((cost.label, cost.storage_bits, cost.rbe))
                data[f"btb-{entries}-{assoc}w"] = cost.rbe
        text = format_table(
            ["structure", "bits", "RBE"],
            [(label, bits, f"{rbe:,.0f}") for label, bits, rbe in rows],
        )
        return ExperimentResult(
            name="fig3",
            title="Figure 3: register-bit-equivalent costs (Mulder et al. model)",
            text=text,
            data=data,
        )

    return ExperimentPlan(name="fig3", cells=(), finish=finish)


def fig3(line_bytes: int = 32) -> ExperimentResult:
    """Register-bit-equivalent costs of every studied structure."""
    return _fig3_plan(line_bytes=line_bytes).run()


# ---------------------------------------------------------------------------
# Figure 4 — NLS-cache vs NLS-table sizes, average BEP
# ---------------------------------------------------------------------------


def _fig4_plan(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
    cache_grid: Sequence[Tuple[int, int]] = CACHE_GRID,
) -> ExperimentPlan:
    program_names = _programs(programs)
    entries_list = (512, 1024, 2048)
    groups: List[Tuple[str, str, str, Tuple[RunRequest, ...]]] = []
    for kb, assoc in cache_grid:
        cache_label = f"{kb}K {assoc}-way"
        config = ArchitectureConfig(
            frontend="nls-cache", cache_kb=kb, cache_assoc=assoc
        )
        groups.append(
            (
                "nls-cache",
                cache_label,
                f"NLS-cache @ {cache_label}",
                _cells(config, program_names, instructions, warmup),
            )
        )
        for entries in entries_list:
            config = ArchitectureConfig(
                frontend="nls-table",
                entries=entries,
                cache_kb=kb,
                cache_assoc=assoc,
            )
            groups.append(
                (
                    f"nls-table-{entries}",
                    cache_label,
                    f"{entries} NLS-table @ {cache_label}",
                    _cells(config, program_names, instructions, warmup),
                )
            )

    def finish(reports: ReportMap) -> ExperimentResult:
        """Render this experiment's cell reports into its result."""
        chart_rows: List[Tuple[str, float, float]] = []
        data: Dict[str, Dict[str, float]] = {}
        for key, cache_label, label, cells in groups:
            report = _mean(reports, cells, label)
            chart_rows.append(
                (report.label, report.bep_misfetch, report.bep_mispredict)
            )
            data.setdefault(key, {})[cache_label] = report.bep
        return ExperimentResult(
            name="fig4",
            title=(
                "Figure 4: average branch execution penalty, NLS-cache vs "
                "512/1024/2048-entry NLS-tables"
            ),
            text=bep_chart(chart_rows),
            data=data,
        )

    cells = tuple(cell for _, _, _, group in groups for cell in group)
    return ExperimentPlan(name="fig4", cells=cells, finish=finish)


def fig4(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
    cache_grid: Sequence[Tuple[int, int]] = CACHE_GRID,
) -> ExperimentResult:
    """Average BEP of the NLS-cache and 512/1024/2048-entry NLS-tables
    across instruction-cache configurations."""
    return _fig4_plan(
        programs=programs,
        instructions=instructions,
        warmup=warmup,
        cache_grid=cache_grid,
    ).run()


# ---------------------------------------------------------------------------
# Figure 5 — BTB vs 1024-entry NLS-table, average BEP
# ---------------------------------------------------------------------------


def _fig5_plan(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
    cache_grid: Sequence[Tuple[int, int]] = CACHE_GRID,
) -> ExperimentPlan:
    program_names = _programs(programs)
    groups: List[Tuple[str, str, Tuple[RunRequest, ...]]] = []
    for entries in (128, 256):
        for assoc in (1, 4):
            config = ArchitectureConfig(
                frontend="btb", entries=entries, btb_assoc=assoc, cache_kb=16
            )
            groups.append(
                (
                    f"btb-{entries}-{assoc}w",
                    f"{entries} {'direct' if assoc == 1 else f'{assoc}-way'} BTB",
                    _cells(config, program_names, instructions, warmup),
                )
            )
    for kb, assoc in cache_grid:
        config = ArchitectureConfig(
            frontend="nls-table", entries=1024, cache_kb=kb, cache_assoc=assoc
        )
        groups.append(
            (
                f"nls-1024@{kb}K-{assoc}w",
                f"1024 NLS-table, {kb}K {'direct' if assoc == 1 else f'{assoc}-way'}",
                _cells(config, program_names, instructions, warmup),
            )
        )

    def finish(reports: ReportMap) -> ExperimentResult:
        """Render this experiment's cell reports into its result."""
        chart_rows: List[Tuple[str, float, float]] = []
        data: Dict[str, float] = {}
        for key, label, cells in groups:
            report = _mean(reports, cells, label)
            chart_rows.append(
                (report.label, report.bep_misfetch, report.bep_mispredict)
            )
            data[key] = report.bep
        return ExperimentResult(
            name="fig5",
            title="Figure 5: average BEP, BTBs vs the 1024-entry NLS-table",
            text=bep_chart(chart_rows),
            data=data,
        )

    cells = tuple(cell for _, _, group in groups for cell in group)
    return ExperimentPlan(name="fig5", cells=cells, finish=finish)


def fig5(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
    cache_grid: Sequence[Tuple[int, int]] = CACHE_GRID,
) -> ExperimentResult:
    """Average BEP of the 128/256-entry BTBs (direct and 4-way) against
    the 1024-entry NLS-table at every cache configuration.

    The BTB rows are simulated at a 16K direct-mapped cache: the BTB's
    BEP does not depend on the instruction cache (§7), which fig8
    (CPI) and the data dict make checkable.
    """
    return _fig5_plan(
        programs=programs,
        instructions=instructions,
        warmup=warmup,
        cache_grid=cache_grid,
    ).run()


# ---------------------------------------------------------------------------
# Figure 6 — BTB access times
# ---------------------------------------------------------------------------


def _fig6_plan() -> ExperimentPlan:
    def finish(reports: ReportMap) -> ExperimentResult:
        """Render this experiment's cell reports into its result."""
        model = AccessTimeModel()
        rows = []
        data: Dict[str, float] = {}
        for entries in (128, 256):
            for assoc in (1, 2, 4):
                t = model.access_time_ns(entries, assoc)
                ratio = model.associativity_penalty(entries, assoc)
                label = (
                    f"{entries}-entry {'direct' if assoc == 1 else f'{assoc}-way'}"
                )
                rows.append((label, f"{t:.2f}", f"{ratio:.2f}x"))
                data[f"{entries}-{assoc}w"] = t
        text = format_table(["BTB organisation", "access ns", "vs direct"], rows)
        return ExperimentResult(
            name="fig6",
            title="Figure 6: BTB access time (Wilton-Jouppi style model)",
            text=text,
            data=data,
        )

    return ExperimentPlan(name="fig6", cells=(), finish=finish)


def fig6() -> ExperimentResult:
    """BTB access-time estimates (CACTI-style model)."""
    return _fig6_plan().run()


# ---------------------------------------------------------------------------
# Figure 7 — per-program BEP comparison
# ---------------------------------------------------------------------------


def fig7_configs() -> List[Tuple[str, ArchitectureConfig]]:
    """The ten per-program configurations of Figure 7."""
    configs: List[Tuple[str, ArchitectureConfig]] = []
    for entries in (128, 256):
        for assoc in (1, 4):
            configs.append(
                (
                    f"{entries} {'Direct' if assoc == 1 else '4-way'} BTB",
                    ArchitectureConfig(
                        frontend="btb", entries=entries, btb_assoc=assoc, cache_kb=16
                    ),
                )
            )
    for kb in (8, 16, 32):
        for assoc in (1, 4):
            configs.append(
                (
                    f"1024 NLS-table, {kb}K {'Direct' if assoc == 1 else '4-way'}",
                    ArchitectureConfig(
                        frontend="nls-table",
                        entries=1024,
                        cache_kb=kb,
                        cache_assoc=assoc,
                    ),
                )
            )
    return configs


def _fig7_plan(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
) -> ExperimentPlan:
    program_names = _programs(programs)
    configs = fig7_configs()
    grid: List[Tuple[str, List[Tuple[str, RunRequest]]]] = []
    for program in program_names:
        row = []
        for label, config in configs:
            row.append(
                (
                    label,
                    RunRequest(
                        config=config,
                        program=program,
                        instructions=instructions,
                        warmup=warmup,
                    ),
                )
            )
        grid.append((program, row))

    def finish(reports: ReportMap) -> ExperimentResult:
        """Render this experiment's cell reports into its result."""
        sections: List[str] = []
        data: Dict[str, Dict[str, SimulationReport]] = {}
        for program, row in grid:
            chart_rows = []
            for label, cell in row:
                report = reports[cell]
                chart_rows.append(
                    (label, report.bep_misfetch, report.bep_mispredict)
                )
                data.setdefault(program, {})[label] = report
            sections.append(bep_chart(chart_rows, title=program))
        return ExperimentResult(
            name="fig7",
            title="Figure 7: per-program BEP, NLS-table vs BTB",
            text="\n\n".join(sections),
            data=data,
        )

    cells = tuple(cell for _, row in grid for _, cell in row)
    return ExperimentPlan(name="fig7", cells=cells, finish=finish)


def fig7(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
) -> ExperimentResult:
    """Per-program BEP for the ten configurations of Figure 7."""
    return _fig7_plan(
        programs=programs, instructions=instructions, warmup=warmup
    ).run()


# ---------------------------------------------------------------------------
# Figure 8 — CPI comparison
# ---------------------------------------------------------------------------


def _fig8_plan(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
    cache_grid: Sequence[Tuple[int, int]] = CACHE_GRID,
) -> ExperimentPlan:
    program_names = _programs(programs)
    variants: List[Tuple[str, ArchitectureConfig]] = [
        ("128 Direct BTB", ArchitectureConfig(frontend="btb", entries=128, btb_assoc=1)),
        ("128 4-way BTB", ArchitectureConfig(frontend="btb", entries=128, btb_assoc=4)),
        ("256 Direct BTB", ArchitectureConfig(frontend="btb", entries=256, btb_assoc=1)),
        ("256 4-way BTB", ArchitectureConfig(frontend="btb", entries=256, btb_assoc=4)),
        (
            "1024 NLS-table",
            ArchitectureConfig(frontend="nls-table", entries=1024),
        ),
    ]
    groups: List[Tuple[str, str, str, Tuple[RunRequest, ...]]] = []
    for kb, assoc in cache_grid:
        cache_label = f"{kb}K {'direct' if assoc == 1 else f'{assoc}-way'}"
        for name, base in variants:
            config = base.with_cache(kb, assoc)
            groups.append(
                (
                    cache_label,
                    name,
                    f"{name} @ {cache_label}",
                    _cells(config, program_names, instructions, warmup),
                )
            )

    def finish(reports: ReportMap) -> ExperimentResult:
        """Render this experiment's cell reports into its result."""
        rows = []
        data: Dict[str, Dict[str, float]] = {}
        for cache_label, name, label, cells in groups:
            report = _mean(reports, cells, label)
            rows.append((cache_label, name, f"{report.cpi:.4f}"))
            data.setdefault(cache_label, {})[name] = report.cpi
        text = format_table(["cache", "front-end", "CPI"], rows)
        return ExperimentResult(
            name="fig8",
            title="Figure 8: cycles per instruction (single issue)",
            text=text,
            data=data,
        )

    cells = tuple(cell for _, _, _, group in groups for cell in group)
    return ExperimentPlan(name="fig8", cells=cells, finish=finish)


def fig8(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
    cache_grid: Sequence[Tuple[int, int]] = CACHE_GRID,
) -> ExperimentResult:
    """Average CPI of the BTBs and the 1024-entry NLS-table, per cache
    configuration (unlike the BEP, the CPI of every architecture moves
    with the cache because of the 5-cycle miss penalty)."""
    return _fig8_plan(
        programs=programs,
        instructions=instructions,
        warmup=warmup,
        cache_grid=cache_grid,
    ).run()


# ---------------------------------------------------------------------------
# §6.2 — Johnson's coupled successor-index design
# ---------------------------------------------------------------------------


def _johnson_plan(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
    cache_kb: int = 16,
    cache_assoc: int = 1,
) -> ExperimentPlan:
    program_names = _programs(programs)
    variants = [
        (
            "1024 NLS-table + gshare",
            ArchitectureConfig(
                frontend="nls-table",
                entries=1024,
                cache_kb=cache_kb,
                cache_assoc=cache_assoc,
            ),
        ),
        (
            "NLS-cache (2/line) + gshare",
            ArchitectureConfig(
                frontend="nls-cache", cache_kb=cache_kb, cache_assoc=cache_assoc
            ),
        ),
        (
            "Johnson successor index (1-bit)",
            ArchitectureConfig(
                frontend="johnson", cache_kb=cache_kb, cache_assoc=cache_assoc
            ),
        ),
    ]
    groups = [
        (label, _cells(config, program_names, instructions, warmup))
        for label, config in variants
    ]

    def finish(reports: ReportMap) -> ExperimentResult:
        """Render this experiment's cell reports into its result."""
        chart_rows = []
        data: Dict[str, float] = {}
        for label, cells in groups:
            report = _mean(reports, cells, label)
            chart_rows.append(
                (label, report.bep_misfetch, report.bep_mispredict)
            )
            data[label] = report.bep
        return ExperimentResult(
            name="johnson",
            title=(
                "S6.2 comparison: decoupled NLS vs Johnson's coupled "
                f"successor-index design ({cache_kb}K {cache_assoc}-way cache)"
            ),
            text=bep_chart(chart_rows),
            data=data,
        )

    cells = tuple(cell for _, group in groups for cell in group)
    return ExperimentPlan(name="johnson", cells=cells, finish=finish)


def johnson_comparison(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
    cache_kb: int = 16,
    cache_assoc: int = 1,
) -> ExperimentResult:
    """NLS-table vs NLS-cache vs Johnson's coupled 1-bit design."""
    return _johnson_plan(
        programs=programs,
        instructions=instructions,
        warmup=warmup,
        cache_kb=cache_kb,
        cache_assoc=cache_assoc,
    ).run()


# ---------------------------------------------------------------------------
# §4.1 / §7 ablations
# ---------------------------------------------------------------------------


def _ablation_nls_cache_plan(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
    cache_kb: int = 16,
) -> ExperimentPlan:
    program_names = _programs(programs)
    groups = []
    for per_line in (1, 2, 4):
        for policy in ("partition", "lru"):
            label = f"NLS-cache {per_line}/line {policy}"
            config = ArchitectureConfig(
                frontend="nls-cache",
                cache_kb=cache_kb,
                predictors_per_line=per_line,
                nls_cache_policy=policy,
            )
            groups.append(
                (label, _cells(config, program_names, instructions, warmup))
            )

    def finish(reports: ReportMap) -> ExperimentResult:
        """Render this experiment's cell reports into its result."""
        chart_rows = []
        data: Dict[str, float] = {}
        for label, cells in groups:
            report = _mean(reports, cells, label)
            chart_rows.append((label, report.bep_misfetch, report.bep_mispredict))
            data[label] = report.bep
        return ExperimentResult(
            name="ablation-nls-cache",
            title=f"NLS-cache ablation ({cache_kb}K direct-mapped cache)",
            text=bep_chart(chart_rows),
            data=data,
        )

    cells = tuple(cell for _, group in groups for cell in group)
    return ExperimentPlan(name="ablation-nls-cache", cells=cells, finish=finish)


def ablation_nls_cache(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
    cache_kb: int = 16,
) -> ExperimentResult:
    """NLS-cache design space: predictors per line x association
    policy (§5.1 "one to four NLS predictors per cache line with
    varying replacement policies")."""
    return _ablation_nls_cache_plan(
        programs=programs,
        instructions=instructions,
        warmup=warmup,
        cache_kb=cache_kb,
    ).run()


def _ablation_direction_plan(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
) -> ExperimentPlan:
    program_names = _programs(programs)
    groups = []
    for direction in (
        "gshare",
        "pan",
        "gag",
        "bimodal",
        "pag",
        "combining",
        "taken",
        "not-taken",
        "btfnt",
    ):
        config = ArchitectureConfig(
            frontend="nls-table", entries=1024, cache_kb=16, direction=direction
        )
        groups.append(
            (direction, _cells(config, program_names, instructions, warmup))
        )

    def finish(reports: ReportMap) -> ExperimentResult:
        """Render this experiment's cell reports into its result."""
        chart_rows = []
        data: Dict[str, float] = {}
        for direction, cells in groups:
            report = _mean(reports, cells, direction)
            chart_rows.append(
                (direction, report.bep_misfetch, report.bep_mispredict)
            )
            data[direction] = report.bep
        return ExperimentResult(
            name="ablation-direction",
            title="Direction predictor ablation (1024 NLS-table, 16K cache)",
            text=bep_chart(chart_rows),
            data=data,
        )

    cells = tuple(cell for _, group in groups for cell in group)
    return ExperimentPlan(name="ablation-direction", cells=cells, finish=finish)


def ablation_direction(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
) -> ExperimentResult:
    """Direction-predictor ablation under the 1024-entry NLS-table."""
    return _ablation_direction_plan(
        programs=programs, instructions=instructions, warmup=warmup
    ).run()


def _ablation_layout_plan(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
    cache_kb: int = 16,
) -> ExperimentPlan:
    program_names = _programs(programs)
    groups = []
    for layout in ("natural", "random"):
        for name, config in (
            (
                "1024 NLS-table",
                ArchitectureConfig(frontend="nls-table", entries=1024, cache_kb=cache_kb),
            ),
            ("128 BTB", ArchitectureConfig(frontend="btb", entries=128, cache_kb=cache_kb)),
        ):
            groups.append(
                (
                    layout,
                    name,
                    _cells(config, program_names, instructions, warmup, layout=layout),
                )
            )

    def finish(reports: ReportMap) -> ExperimentResult:
        """Render this experiment's cell reports into its result."""
        rows = []
        data: Dict[str, Dict[str, float]] = {}
        for layout, name, cells in groups:
            average = _mean(reports, cells, f"{name} / {layout}")
            rows.append(
                (
                    layout,
                    name,
                    f"{100 * average.icache_miss_rate:.2f}%",
                    f"{average.bep_misfetch:.3f}",
                    f"{average.bep:.3f}",
                )
            )
            data.setdefault(layout, {})[name] = average.bep
        text = format_table(
            ["layout", "front-end", "I-miss", "BEP(misfetch)", "BEP"], rows
        )
        return ExperimentResult(
            name="ablation-layout",
            title="Layout ablation: procedure placement vs NLS/BTB BEP",
            text=text,
            data=data,
        )

    cells = tuple(cell for _, _, group in groups for cell in group)
    return ExperimentPlan(name="ablation-layout", cells=cells, finish=finish)


def ablation_layout(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
    cache_kb: int = 16,
) -> ExperimentResult:
    """Program-layout ablation (§7: restructuring lowers the I-cache
    miss rate, which improves the NLS architecture but not the BTB)."""
    return _ablation_layout_plan(
        programs=programs,
        instructions=instructions,
        warmup=warmup,
        cache_kb=cache_kb,
    ).run()


def _coupled_plan(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
    cache_kb: int = 16,
) -> ExperimentPlan:
    program_names = _programs(programs)
    groups = []
    for entries in (128, 256):
        for name, frontend in (
            (f"decoupled {entries} BTB + gshare", "btb"),
            (f"coupled {entries} BTB (2-bit in entry)", "coupled-btb"),
        ):
            config = ArchitectureConfig(
                frontend=frontend, entries=entries, btb_assoc=1, cache_kb=cache_kb
            )
            groups.append(
                (name, _cells(config, program_names, instructions, warmup))
            )

    def finish(reports: ReportMap) -> ExperimentResult:
        """Render this experiment's cell reports into its result."""
        chart_rows = []
        data: Dict[str, float] = {}
        for name, cells in groups:
            report = _mean(reports, cells, name)
            chart_rows.append((name, report.bep_misfetch, report.bep_mispredict))
            data[name] = report.bep
        return ExperimentResult(
            name="coupled",
            title="S2 comparison: coupled vs decoupled BTB direction prediction",
            text=bep_chart(chart_rows),
            data=data,
        )

    cells = tuple(cell for _, group in groups for cell in group)
    return ExperimentPlan(name="coupled", cells=cells, finish=finish)


def coupled_vs_decoupled(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
    cache_kb: int = 16,
) -> ExperimentResult:
    """Coupled (Pentium-style) vs decoupled BTB (§2).

    In the coupled design the 2-bit direction counters live inside the
    BTB entries, so branches that miss fall back to static prediction;
    the decoupled design predicts *every* conditional with the shared
    PHT — the reason the paper (and its authors' earlier study [2])
    simulate decoupled designs.
    """
    return _coupled_plan(
        programs=programs,
        instructions=instructions,
        warmup=warmup,
        cache_kb=cache_kb,
    ).run()


def _way_prediction_plan(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    cache_kb: int = 16,
    cache_assoc: int = 2,
) -> ExperimentPlan:
    program_names = _programs(programs)

    def finish(reports: ReportMap) -> ExperimentResult:
        """Render this experiment's cell reports into its result."""
        from repro.cache.icache import InstructionCache
        from repro.cache.setpred import FallThroughWayPredictor

        rows = []
        data: Dict[str, float] = {}
        geometry = CacheGeometry(cache_kb * 1024, 32, cache_assoc)
        for program in program_names:
            trace = generate_trace(program, instructions=instructions)
            cache = InstructionCache(geometry)
            predictor = FallThroughWayPredictor(cache)
            line_bytes = geometry.line_bytes
            previous_line = None
            for index in range(trace.n_events):
                start = trace.starts[index]
                end = start + (trace.counts[index] - 1) * 4
                line = start & ~(line_bytes - 1)
                end_line = end & ~(line_bytes - 1)
                while True:
                    if previous_line is not None and line == previous_line + line_bytes:
                        predicted = predictor.predict(previous_line)
                        way = cache.access(line).way
                        predictor.record_outcome(predicted, way)
                        predictor.update(previous_line, way)
                    else:
                        way = cache.access(line).way
                    previous_line = line
                    if line == end_line:
                        break
                    line += line_bytes
            rows.append(
                (
                    program,
                    predictor.predictions,
                    f"{100 * predictor.accuracy:.2f}%",
                    f"{100 * cache.miss_rate:.2f}%",
                )
            )
            data[program] = predictor.accuracy
        text = format_table(
            ["program", "sequential fetches", "way-pred accuracy", "I-miss"], rows
        )
        return ExperimentResult(
            name="way-prediction",
            title=(
                f"S4.2 fall-through way prediction ({cache_kb}K "
                f"{cache_assoc}-way cache)"
            ),
            text=text,
            data=data,
        )

    return ExperimentPlan(name="way-prediction", cells=(), finish=finish)


def way_prediction(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    cache_kb: int = 16,
    cache_assoc: int = 2,
) -> ExperimentResult:
    """Fall-through way prediction accuracy (§4.2, second approach).

    Replays each trace against an associative cache carrying per-line
    successor-way fields and reports how often the predicted way is
    right — the figure of merit for turning an associative cache into
    a direct-mapped-latency one on the sequential path.
    """
    return _way_prediction_plan(
        programs=programs,
        instructions=instructions,
        cache_kb=cache_kb,
        cache_assoc=cache_assoc,
    ).run()


def _multi_issue_plan(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    widths: Sequence[int] = (1, 2, 4, 8),
    cache_kb: int = 16,
) -> ExperimentPlan:
    program_names = _programs(programs)
    variants = (
        ("1024 NLS-table", ArchitectureConfig(frontend="nls-table", entries=1024, cache_kb=cache_kb)),
        ("128 BTB", ArchitectureConfig(frontend="btb", entries=128, cache_kb=cache_kb)),
        ("oracle fetch", ArchitectureConfig(frontend="oracle", cache_kb=cache_kb)),
    )
    # multi-issue evaluation needs full-trace reports (warmup 0)
    grid = {
        (name, program): RunRequest(
            config=config, program=program, instructions=instructions, warmup=0.0
        )
        for name, config in variants
        for program in program_names
    }

    def finish(reports: ReportMap) -> ExperimentResult:
        """Render this experiment's cell reports into its result."""
        from repro.fetch.multiissue import FetchBandwidthModel

        rows = []
        data: Dict[str, Dict[int, float]] = {}
        for name, config in variants:
            per_width: Dict[int, List[float]] = {width: [] for width in widths}
            for program in program_names:
                trace = generate_trace(program, instructions=instructions)
                report = reports[grid[(name, program)]]
                for width in widths:
                    model = FetchBandwidthModel(width, config.geometry.line_bytes)
                    per_width[width].append(model.evaluate(trace, report).ipc)
            for width in widths:
                ipc = sum(per_width[width]) / len(per_width[width])
                rows.append((name, width, f"{ipc:.3f}"))
                data.setdefault(name, {})[width] = ipc
        text = format_table(["front-end", "fetch width", "IPC"], rows)
        return ExperimentResult(
            name="multi-issue",
            title="S8 extension: IPC vs fetch width (single-cycle line-limited fetch)",
            text=text,
            data=data,
        )

    return ExperimentPlan(
        name="multi-issue", cells=tuple(grid.values()), finish=finish
    )


def multi_issue(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    widths: Sequence[int] = (1, 2, 4, 8),
    cache_kb: int = 16,
) -> ExperimentResult:
    """Issue-width extension (§8): IPC of the equal-cost NLS-table and
    BTB as the fetch width grows.

    Penalty cycles are fixed per event, but a wider machine loses more
    useful work per bubble, so fetch prediction quality matters more —
    "nothing in the design of the NLS architecture appears to be a
    problem for wide-issue architectures" (§8) becomes checkable.
    """
    return _multi_issue_plan(
        programs=programs,
        instructions=instructions,
        widths=widths,
        cache_kb=cache_kb,
    ).run()


def _address_space_plan(
    bits_list: Sequence[int] = (32, 40, 48, 64),
    cache_kb: int = 16,
) -> ExperimentPlan:
    def finish(reports: ReportMap) -> ExperimentResult:
        """Render this experiment's cell reports into its result."""
        from repro.isa.geometry import AddressSpace

        model = RBEModel()
        geometry = CacheGeometry(cache_kb * 1024, 32, 1)
        nls_cost = model.nls_table_cost(1024, geometry).rbe
        rows = []
        data: Dict[str, Dict[int, float]] = {
            "btb-128": {},
            "btb-256": {},
            "nls-1024": {},
        }
        for bits in bits_list:
            space = AddressSpace(bits)
            for entries in (128, 256):
                cost = model.btb_cost(entries, 1, space).rbe
                rows.append((f"{bits}-bit", f"{entries}-entry BTB", f"{cost:,.0f}"))
                data[f"btb-{entries}"][bits] = cost
            rows.append((f"{bits}-bit", "1024-entry NLS-table", f"{nls_cost:,.0f}"))
            data["nls-1024"][bits] = nls_cost
        text = format_table(["address space", "structure", "RBE"], rows)
        return ExperimentResult(
            name="address-space",
            title="S7: structure cost vs program address-space size",
            text=text,
            data=data,
        )

    return ExperimentPlan(name="address-space", cells=(), finish=finish)


def address_space_scaling(
    bits_list: Sequence[int] = (32, 40, 48, 64),
    cache_kb: int = 16,
) -> ExperimentResult:
    """Address-space scaling (§7): "as the program address space
    increases ... the area needed by the BTB would also increase.  By
    comparison, the NLS-table design does not use a tag nor does it
    store the full target address, so an increased address space has
    no effect on the size of the NLS-table"."""
    return _address_space_plan(bits_list=bits_list, cache_kb=cache_kb).run()


def _steely_sager_plan(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
    cache_kb: int = 16,
) -> ExperimentPlan:
    program_names = _programs(programs)
    grid: List[Tuple[str, str, RunRequest]] = []
    for program in program_names:
        for name, frontend in (
            ("nls-table", "nls-table"),
            ("steely-sager", "steely-sager"),
        ):
            config = ArchitectureConfig(
                frontend=frontend, entries=1024, cache_kb=cache_kb, cache_assoc=1
            )
            grid.append(
                (
                    program,
                    name,
                    RunRequest(
                        config=config,
                        program=program,
                        instructions=instructions,
                        warmup=warmup,
                    ),
                )
            )

    def finish(reports: ReportMap) -> ExperimentResult:
        """Render this experiment's cell reports into its result."""
        rows = []
        data: Dict[str, Dict[str, float]] = {}
        for program, name, cell in grid:
            report = reports[cell]
            indirect = report.by_kind and {
                kind.name: counts for kind, counts in report.by_kind.items()
            }.get("INDIRECT")
            indirect_mp = (
                100.0 * indirect[2] / indirect[0] if indirect and indirect[0] else 0.0
            )
            rows.append(
                (program, name, f"{indirect_mp:.1f}%", f"{report.bep:.3f}")
            )
            data.setdefault(program, {})[name] = report.bep
        text = format_table(
            ["program", "indirect predictor", "IJ mispredict", "BEP"], rows
        )
        return ExperimentResult(
            name="steely-sager",
            title=(
                "S6.2: per-entry NLS indirect prediction vs the Steely-Sager "
                "computed-goto register"
            ),
            text=text,
            data=data,
        )

    cells = tuple(cell for _, _, cell in grid)
    return ExperimentPlan(name="steely-sager", cells=cells, finish=finish)


def steely_sager_comparison(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
    cache_kb: int = 16,
) -> ExperimentResult:
    """Per-entry NLS indirect prediction vs the Steely-Sager single
    computed-goto register (§6.2), per program.

    Programs with several interleaved hot indirect sites thrash the
    single register; programs with one dominant site barely notice.
    """
    return _steely_sager_plan(
        programs=programs,
        instructions=instructions,
        warmup=warmup,
        cache_kb=cache_kb,
    ).run()


def _calibration_plan(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
) -> ExperimentPlan:
    program_names = _programs(programs)

    def finish(reports: ReportMap) -> ExperimentResult:
        """Render this experiment's cell reports into its result."""
        from repro.workloads.validation import summarise

        measured = {}
        papers = {}
        for name in program_names:
            profile = get_profile(name)
            trace = generate_trace(name, instructions=instructions)
            measured[name] = measure(trace, build_program(profile))
            papers[name] = profile.paper
        summary = summarise(measured, papers)
        rows = []
        for program, comparisons in summary.per_program.items():
            for comparison in comparisons:
                rows.append(
                    (
                        program,
                        comparison.field,
                        f"{comparison.measured:.2f}",
                        f"{comparison.paper:.2f}",
                        f"{comparison.absolute_error:+.2f}",
                    )
                )
        lines = [format_table(["program", "column", "measured", "paper", "error"], rows)]
        if summary.rank_correlations:
            rank_rows = [
                (field, f"{value:+.2f}")
                for field, value in sorted(summary.rank_correlations.items())
            ]
            lines.append("")
            lines.append(
                format_table(
                    ["attribute", "rank corr (programs)"],
                    rank_rows,
                    title="cross-program rank agreement with Table 1",
                )
            )
            lines.append("")
            worst = summary.worst_field
            lines.append(
                f"mean |error| = {summary.mean_absolute_scalar_error:.2f} points; "
                f"worst: {worst[1]} on {worst[0]} ({worst[2]:+.2f})"
            )
        return ExperimentResult(
            name="calibration",
            title="Workload calibration: measured vs paper Table 1",
            text="\n".join(lines),
            data={
                "mean_abs_error": summary.mean_absolute_scalar_error,
                "rank_correlations": summary.rank_correlations,
            },
        )

    return ExperimentPlan(name="calibration", cells=(), finish=finish)


def calibration(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
) -> ExperimentResult:
    """Measured-vs-paper calibration quality of the synthetic
    workloads (value errors per column, rank agreement per attribute).
    """
    return _calibration_plan(programs=programs, instructions=instructions).run()


def _misfetch_causes_plan(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
    cache_sizes: Sequence[int] = (8, 16, 32),
) -> ExperimentPlan:
    program_names = _programs(programs)
    groups: List[Tuple[int, Tuple[RunRequest, ...]]] = []
    for kb in cache_sizes:
        config = ArchitectureConfig(
            frontend="nls-table", entries=1024, cache_kb=kb, cache_assoc=1
        )
        groups.append((kb, _cells(config, program_names, instructions, warmup)))

    def finish(reports: ReportMap) -> ExperimentResult:
        """Render this experiment's cell reports into its result."""
        rows = []
        data: Dict[str, Dict[str, int]] = {}
        for kb, cells in groups:
            totals = {"invalid": 0, "line-field": 0, "displaced": 0, "wrong-way": 0}
            for cell in cells:
                for cause, count in reports[cell].frontend_stats.items():
                    totals[cause] += count
            total = sum(totals.values()) or 1
            rows.append(
                (
                    f"{kb}K",
                    totals["invalid"],
                    totals["line-field"],
                    totals["displaced"],
                    f"{100 * totals['displaced'] / total:.1f}%",
                )
            )
            data[f"{kb}K"] = dict(totals)
        text = format_table(
            ["cache", "invalid", "alias/stale", "displaced", "displaced share"], rows
        )
        return ExperimentResult(
            name="misfetch-causes",
            title="NLS misfetch causes vs cache size (1024-entry table, direct mapped)",
            text=text,
            data=data,
        )

    cells = tuple(cell for _, group in groups for cell in group)
    return ExperimentPlan(name="misfetch-causes", cells=cells, finish=finish)


def misfetch_causes(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
    cache_sizes: Sequence[int] = (8, 16, 32),
) -> ExperimentResult:
    """Why NLS taken-target predictions fail, per cache size (§7).

    The paper's displacement argument predicts the ``displaced``
    bucket shrinks as the cache grows while the tag-less aliasing
    buckets stay put; this experiment shows the distribution directly.
    """
    return _misfetch_causes_plan(
        programs=programs,
        instructions=instructions,
        warmup=warmup,
        cache_sizes=cache_sizes,
    ).run()


def _btb_allocation_plan(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
) -> ExperimentPlan:
    program_names = _programs(programs)
    groups = []
    for entries in (128, 256):
        for allocate in ("taken-only", "all"):
            config = ArchitectureConfig(
                frontend="btb", entries=entries, btb_allocate=allocate, cache_kb=16
            )
            label = f"{entries} BTB, allocate {allocate}"
            groups.append(
                (label, _cells(config, program_names, instructions, warmup))
            )

    def finish(reports: ReportMap) -> ExperimentResult:
        """Render this experiment's cell reports into its result."""
        chart_rows = []
        data: Dict[str, float] = {}
        for label, cells in groups:
            report = _mean(reports, cells, label)
            chart_rows.append((label, report.bep_misfetch, report.bep_mispredict))
            data[label] = report.bep
        return ExperimentResult(
            name="btb-allocation",
            title="S3: BTB allocation policy (taken-only vs all branches)",
            text=bep_chart(chart_rows),
            data=data,
        )

    cells = tuple(cell for _, group in groups for cell in group)
    return ExperimentPlan(name="btb-allocation", cells=cells, finish=finish)


def btb_allocation(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
) -> ExperimentResult:
    """Taken-only vs allocate-all BTB policies (§3's cited result)."""
    return _btb_allocation_plan(
        programs=programs, instructions=instructions, warmup=warmup
    ).run()


def _ras_depth_plan(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
    depths: Sequence[int] = (1, 2, 4, 8, 16, 32),
) -> ExperimentPlan:
    program_names = _programs(programs)
    groups: List[Tuple[int, Tuple[RunRequest, ...]]] = []
    for depth in depths:
        config = ArchitectureConfig(
            frontend="nls-table", entries=1024, cache_kb=16, ras_entries=depth
        )
        groups.append((depth, _cells(config, program_names, instructions, warmup)))

    def finish(reports: ReportMap) -> ExperimentResult:
        """Render this experiment's cell reports into its result."""
        from repro.isa.branches import BranchKind

        rows = []
        data: Dict[int, float] = {}
        for depth, cells in groups:
            mispredicted = 0
            executed = 0
            for cell in cells:
                ex, mf, mp = reports[cell].by_kind[BranchKind.RETURN]
                executed += ex
                mispredicted += mp
            rate = 100.0 * mispredicted / executed if executed else 0.0
            rows.append((depth, executed, f"{rate:.2f}%"))
            data[depth] = rate
        text = format_table(["RAS entries", "returns", "return mispredict"], rows)
        return ExperimentResult(
            name="ras-depth",
            title="Return-address-stack depth sweep (1024 NLS-table, 16K cache)",
            text=text,
            data=data,
        )

    cells = tuple(cell for _, group in groups for cell in group)
    return ExperimentPlan(name="ras-depth", cells=cells, finish=finish)


def ras_depth(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
    depths: Sequence[int] = (1, 2, 4, 8, 16, 32),
) -> ExperimentResult:
    """Return-stack depth sweep (the Kaeli-Emma structure both
    architectures rely on, §3)."""
    return _ras_depth_plan(
        programs=programs, instructions=instructions, warmup=warmup, depths=depths
    ).run()


def _line_size_plan(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
    line_sizes: Sequence[int] = (16, 32, 64),
) -> ExperimentPlan:
    program_names = _programs(programs)
    groups: List[Tuple[int, ArchitectureConfig, Tuple[RunRequest, ...]]] = []
    for line_bytes in line_sizes:
        config = ArchitectureConfig(
            frontend="nls-table", entries=1024, cache_kb=16, line_bytes=line_bytes
        )
        groups.append(
            (line_bytes, config, _cells(config, program_names, instructions, warmup))
        )

    def finish(reports: ReportMap) -> ExperimentResult:
        """Render this experiment's cell reports into its result."""
        rows = []
        data: Dict[int, Dict[str, float]] = {}
        model = RBEModel()
        for line_bytes, config, cells in groups:
            report = _mean(reports, cells, f"{line_bytes}B lines")
            entry_bits = model.nls_entry_bits(config.geometry)
            rows.append(
                (
                    f"{line_bytes}B",
                    entry_bits,
                    f"{100 * report.icache_miss_rate:.2f}%",
                    f"{report.bep_misfetch:.3f}",
                    f"{report.bep:.3f}",
                )
            )
            data[line_bytes] = {"bep": report.bep, "entry_bits": entry_bits}
        text = format_table(
            ["line size", "NLS entry bits", "I-miss", "BEP(misfetch)", "BEP"], rows
        )
        return ExperimentResult(
            name="line-size",
            title="Line-size sweep (1024 NLS-table, 16K direct cache)",
            text=text,
            data=data,
        )

    cells = tuple(cell for _, _, group in groups for cell in group)
    return ExperimentPlan(name="line-size", cells=cells, finish=finish)


def line_size(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
    line_sizes: Sequence[int] = (16, 32, 64),
) -> ExperimentResult:
    """Cache line-size sweep: longer lines shrink the NLS line field
    (fewer sets) but raise per-miss cost and change the fall-through
    packing; the paper fixes 32-byte lines (§5.1)."""
    return _line_size_plan(
        programs=programs,
        instructions=instructions,
        warmup=warmup,
        line_sizes=line_sizes,
    ).run()


def _context_switch_plan(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    intervals: Sequence[Optional[int]] = (None, 500_000, 100_000, 25_000),
) -> ExperimentPlan:
    program_names = _programs(programs)
    groups: List[Tuple[str, str, Tuple[RunRequest, ...]]] = []
    for interval in intervals:
        label = "never" if interval is None else f"every {interval:,}"
        for name, frontend, kwargs in (
            ("1024 NLS-table", "nls-table", {"entries": 1024}),
            ("128 BTB", "btb", {"entries": 128}),
        ):
            config = ArchitectureConfig(
                frontend=frontend, cache_kb=16, flush_interval=interval, **kwargs
            )
            # cold restarts are the effect being measured: no warmup
            groups.append(
                (label, name, _cells(config, program_names, instructions, 0.0))
            )

    def finish(reports: ReportMap) -> ExperimentResult:
        """Render this experiment's cell reports into its result."""
        rows = []
        data: Dict[str, Dict[str, float]] = {}
        for label, name, cells in groups:
            report = _mean(reports, cells, name)
            rows.append(
                (
                    label,
                    name,
                    f"{100 * report.icache_miss_rate:.2f}%",
                    f"{report.bep:.3f}",
                )
            )
            data.setdefault(label, {})[name] = report.bep
        text = format_table(["flush interval", "front-end", "I-miss", "BEP"], rows)
        return ExperimentResult(
            name="context-switch",
            title="Context-switch sensitivity (periodic full state flush)",
            text=text,
            data=data,
        )

    cells = tuple(cell for _, _, group in groups for cell in group)
    return ExperimentPlan(name="context-switch", cells=cells, finish=finish)


def context_switch(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    intervals: Sequence[Optional[int]] = (None, 500_000, 100_000, 25_000),
) -> ExperimentResult:
    """Context-switch sensitivity: BEP under periodic full state
    flushes (I-cache, front-end, PHT, return stack).

    The paper's single-process traces never flush; this study shows
    how quickly each architecture re-learns.  Warmup is disabled —
    cold restarts are the effect being measured.
    """
    return _context_switch_plan(
        programs=programs, instructions=instructions, intervals=intervals
    ).run()


# ---------------------------------------------------------------------------
# Replay — compact sweep for external traces & modern server profiles
# ---------------------------------------------------------------------------

#: the replay roster: four equal-cache configurations spanning the
#: paper's design space (no predictor, capacity-pressed BTB, the
#: NLS-table, and the coupled BTB the paper argues against)
REPLAY_ROSTER: Tuple[Tuple[str, ArchitectureConfig], ...] = (
    ("fall-through", ArchitectureConfig(frontend="fall-through", cache_kb=16)),
    (
        "btb-256-4w",
        ArchitectureConfig(frontend="btb", entries=256, btb_assoc=4, cache_kb=16),
    ),
    (
        "nls-table-1024",
        ArchitectureConfig(frontend="nls-table", entries=1024, cache_kb=16),
    ),
    (
        "coupled-btb-256-4w",
        ArchitectureConfig(
            frontend="coupled-btb", entries=256, btb_assoc=4, cache_kb=16
        ),
    ),
)


def _replay_plan(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
) -> ExperimentPlan:
    """Compact 4-configuration sweep per workload (docs/TRACES.md).

    Built for traces that are not part of the paper's roster: ingested
    external traces (``external:<sha256>`` program names, via the
    CLI's ``--trace``) and the modern-server profiles.  Defaults to
    the two server profiles when no programs are given.
    """
    from repro.workloads.profiles import server_programs

    program_names = (
        list(programs) if programs is not None else list(server_programs())
    )
    groups: List[Tuple[str, str, Tuple[RunRequest, ...]]] = [
        (
            key,
            config.label(),
            _cells(config, program_names, instructions, warmup),
        )
        for key, config in REPLAY_ROSTER
    ]

    def finish(reports: ReportMap) -> ExperimentResult:
        """Render this experiment's cell reports into its result."""
        rows: List[Tuple[str, ...]] = []
        data: Dict[str, Dict[str, float]] = {}
        for key, _, cells in groups:
            per_program: Dict[str, float] = {}
            for cell in cells:
                report = reports[cell]
                display = (
                    cell.program
                    if len(cell.program) <= 24
                    else cell.program[:21] + "..."
                )
                rows.append(
                    (
                        display,
                        key,
                        f"{report.pct_misfetched:.2f}",
                        f"{report.pct_mispredicted:.2f}",
                        f"{report.bep:.3f}",
                        f"{report.icache_miss_rate * 100:.2f}%",
                        f"{report.cpi:.4f}",
                    )
                )
                per_program[cell.program] = report.bep
            data[key] = per_program
        text = format_table(
            ["program", "config", "%MfB", "%MpB", "BEP", "miss", "CPI"], rows
        )
        return ExperimentResult(
            name="replay",
            title="Replay: compact sweep over external/modern workloads",
            text=text,
            data=data,
        )

    cells = tuple(cell for _, _, group in groups for cell in group)
    return ExperimentPlan(name="replay", cells=cells, finish=finish)


def replay(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
) -> ExperimentResult:
    """Compact 4-configuration sweep over external traces or the
    modern-server profiles (the ``--trace`` landing experiment).

    Per workload: fall-through (no predictor), a capacity-pressed
    256-entry 4-way BTB, the paper's 1024-entry NLS-table and the
    coupled 256-entry BTB, all at 16 K of instruction cache — enough
    to place a new trace on the paper's BEP map at a glance.
    """
    return _replay_plan(
        programs=programs, instructions=instructions, warmup=warmup
    ).run()


#: declarative registry: one spec per table/figure (used by the CLI's
#: ``list`` subcommand and the cross-experiment parallel executor)
SPECS: Dict[str, ExperimentSpec] = {
    spec.name: spec
    for spec in (
        ExperimentSpec(
            "table1", "measured attributes of the traced programs", _table1_plan
        ),
        ExperimentSpec(
            "fig3", "register-bit-equivalent costs (Mulder et al.)", _fig3_plan
        ),
        ExperimentSpec(
            "fig4", "average BEP, NLS-cache vs NLS-table sizes", _fig4_plan
        ),
        ExperimentSpec(
            "fig5", "average BEP, BTBs vs the 1024-entry NLS-table", _fig5_plan
        ),
        ExperimentSpec(
            "fig6", "BTB access times (Wilton-Jouppi model)", _fig6_plan
        ),
        ExperimentSpec(
            "fig7", "per-program BEP, NLS-table vs BTB", _fig7_plan
        ),
        ExperimentSpec(
            "fig8", "cycles per instruction (single issue)", _fig8_plan
        ),
        ExperimentSpec(
            "johnson", "decoupled NLS vs Johnson's coupled design", _johnson_plan
        ),
        ExperimentSpec(
            "ablation-nls-cache",
            "NLS-cache predictors/line x policy ablation",
            _ablation_nls_cache_plan,
        ),
        ExperimentSpec(
            "ablation-direction",
            "direction-predictor ablation under the NLS-table",
            _ablation_direction_plan,
        ),
        ExperimentSpec(
            "ablation-layout",
            "procedure-placement ablation, NLS vs BTB",
            _ablation_layout_plan,
        ),
        ExperimentSpec(
            "coupled", "coupled vs decoupled BTB direction prediction", _coupled_plan
        ),
        ExperimentSpec(
            "way-prediction",
            "fall-through way prediction accuracy (S4.2)",
            _way_prediction_plan,
        ),
        ExperimentSpec(
            "multi-issue", "IPC vs fetch width (S8 extension)", _multi_issue_plan
        ),
        ExperimentSpec(
            "address-space",
            "structure cost vs address-space size (S7)",
            _address_space_plan,
        ),
        ExperimentSpec(
            "steely-sager",
            "NLS indirect prediction vs Steely-Sager register",
            _steely_sager_plan,
        ),
        ExperimentSpec(
            "calibration", "workload calibration vs paper Table 1", _calibration_plan
        ),
        ExperimentSpec(
            "misfetch-causes",
            "NLS misfetch-cause histogram vs cache size",
            _misfetch_causes_plan,
        ),
        ExperimentSpec(
            "btb-allocation",
            "taken-only vs allocate-all BTB policies (S3)",
            _btb_allocation_plan,
        ),
        ExperimentSpec(
            "ras-depth", "return-address-stack depth sweep", _ras_depth_plan
        ),
        ExperimentSpec(
            "line-size", "cache line-size sweep under the NLS-table", _line_size_plan
        ),
        ExperimentSpec(
            "context-switch",
            "BEP under periodic full state flushes",
            _context_switch_plan,
        ),
        ExperimentSpec(
            "replay",
            "compact sweep over external/modern workloads",
            _replay_plan,
        ),
    )
}

#: registry used by the CLI (stable driver functions, serial backend)
EXPERIMENTS = {
    "table1": table1,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "johnson": johnson_comparison,
    "ablation-nls-cache": ablation_nls_cache,
    "ablation-direction": ablation_direction,
    "ablation-layout": ablation_layout,
    "coupled": coupled_vs_decoupled,
    "way-prediction": way_prediction,
    "multi-issue": multi_issue,
    "address-space": address_space_scaling,
    "steely-sager": steely_sager_comparison,
    "calibration": calibration,
    "misfetch-causes": misfetch_causes,
    "btb-allocation": btb_allocation,
    "ras-depth": ras_depth,
    "line-size": line_size,
    "context-switch": context_switch,
    "replay": replay,
}

"""Per-figure experiment drivers.

One function per table/figure of the paper.  Each returns an
:class:`ExperimentResult` carrying both the rendered monospace text
(what the CLI prints and EXPERIMENTS.md records) and the raw data
(what the tests and benchmarks assert on).

All simulation experiments accept ``programs`` / ``instructions`` /
``warmup`` so benchmarks can run scaled-down versions; defaults
reproduce the full configuration of the paper's evaluation (§5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cache.geometry import CacheGeometry
from repro.cost.rbe import RBEModel
from repro.cost.timing import AccessTimeModel
from repro.harness.config import ArchitectureConfig
from repro.harness.runner import DEFAULT_WARMUP, simulate
from repro.harness.tables import bep_chart, format_table
from repro.metrics.report import SimulationReport, average_reports
from repro.workloads.corpus import generate_trace
from repro.workloads.generator import build_program
from repro.workloads.profiles import get_profile, paper_programs
from repro.workloads.stats import TraceAttributes, measure

#: the paper's instruction-cache grid: {8K,16K,32K} x {direct, 4-way}
CACHE_GRID: Tuple[Tuple[int, int], ...] = (
    (8, 1),
    (8, 4),
    (16, 1),
    (16, 4),
    (32, 1),
    (32, 4),
)


@dataclass
class ExperimentResult:
    """Rendered text plus raw data of one regenerated table/figure."""

    name: str
    title: str
    text: str
    data: Dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"{self.title}\n\n{self.text}"


def _programs(programs: Optional[Sequence[str]]) -> List[str]:
    return list(programs) if programs is not None else list(paper_programs())


def _run(
    config: ArchitectureConfig,
    program: str,
    instructions: Optional[int],
    warmup: float,
) -> SimulationReport:
    return simulate(
        config, program, instructions=instructions, warmup_fraction=warmup
    )


def _average(
    config: ArchitectureConfig,
    programs: List[str],
    instructions: Optional[int],
    warmup: float,
    label: str,
) -> SimulationReport:
    reports = [_run(config, prog, instructions, warmup) for prog in programs]
    return average_reports(reports, label=label)


# ---------------------------------------------------------------------------
# Table 1 — measured attributes of the traced programs
# ---------------------------------------------------------------------------


def table1(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
) -> ExperimentResult:
    """Regenerate Table 1 from the synthetic traces, with the paper's
    measured row under each program for comparison."""
    lines = [TraceAttributes.header()]
    rows = {}
    for name in _programs(programs):
        profile = get_profile(name)
        trace = generate_trace(name, instructions=instructions)
        program = build_program(profile)
        attributes = measure(trace, program)
        rows[name] = attributes
        lines.append(attributes.row())
        paper = profile.paper
        if paper is not None:
            lines.append(
                f"{'  (paper)':<10} {paper.instructions:>13,} "
                f"{paper.pct_breaks:>7.2f} {paper.q50:>6} {paper.q90:>6} "
                f"{paper.q99:>6} {paper.q100:>7} "
                f"{paper.static_conditionals:>7} {paper.pct_taken:>7.2f} "
                f"{paper.pct_cbr:>6.2f} {paper.pct_ij:>5.2f} "
                f"{paper.pct_br:>5.2f} {paper.pct_call:>6.2f} "
                f"{paper.pct_ret:>6.2f}"
            )
    return ExperimentResult(
        name="table1",
        title="Table 1: measured attributes of the traced programs",
        text="\n".join(lines),
        data={"attributes": rows},
    )


# ---------------------------------------------------------------------------
# Figure 3 — RBE implementation costs
# ---------------------------------------------------------------------------


def fig3(line_bytes: int = 32) -> ExperimentResult:
    """Register-bit-equivalent costs of every studied structure."""
    model = RBEModel()
    rows: List[Tuple[str, int, float]] = []
    data: Dict[str, float] = {}
    for kb in (8, 16, 32, 64):
        geometry = CacheGeometry(kb * 1024, line_bytes, 1)
        cost = model.nls_cache_cost(geometry)
        rows.append((cost.label, cost.storage_bits, cost.rbe))
        data[f"nls-cache@{kb}K"] = cost.rbe
    for entries in (512, 1024, 2048):
        for kb in (8, 16, 32, 64):
            geometry = CacheGeometry(kb * 1024, line_bytes, 1)
            cost = model.nls_table_cost(entries, geometry)
            rows.append((cost.label, cost.storage_bits, cost.rbe))
            data[f"nls-table-{entries}@{kb}K"] = cost.rbe
    for entries in (128, 256):
        for assoc in (1, 2, 4):
            cost = model.btb_cost(entries, assoc)
            rows.append((cost.label, cost.storage_bits, cost.rbe))
            data[f"btb-{entries}-{assoc}w"] = cost.rbe
    text = format_table(
        ["structure", "bits", "RBE"],
        [(label, bits, f"{rbe:,.0f}") for label, bits, rbe in rows],
    )
    return ExperimentResult(
        name="fig3",
        title="Figure 3: register-bit-equivalent costs (Mulder et al. model)",
        text=text,
        data=data,
    )


# ---------------------------------------------------------------------------
# Figure 4 — NLS-cache vs NLS-table sizes, average BEP
# ---------------------------------------------------------------------------


def fig4(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
    cache_grid: Sequence[Tuple[int, int]] = CACHE_GRID,
) -> ExperimentResult:
    """Average BEP of the NLS-cache and 512/1024/2048-entry NLS-tables
    across instruction-cache configurations."""
    programs = _programs(programs)
    entries_list = (512, 1024, 2048)
    chart_rows: List[Tuple[str, float, float]] = []
    data: Dict[str, Dict[str, float]] = {}
    for kb, assoc in cache_grid:
        cache_label = f"{kb}K {assoc}-way"
        config = ArchitectureConfig(
            frontend="nls-cache", cache_kb=kb, cache_assoc=assoc
        )
        report = _average(
            config, programs, instructions, warmup, f"NLS-cache @ {cache_label}"
        )
        chart_rows.append((report.label, report.bep_misfetch, report.bep_mispredict))
        data.setdefault("nls-cache", {})[cache_label] = report.bep
        for entries in entries_list:
            config = ArchitectureConfig(
                frontend="nls-table",
                entries=entries,
                cache_kb=kb,
                cache_assoc=assoc,
            )
            report = _average(
                config,
                programs,
                instructions,
                warmup,
                f"{entries} NLS-table @ {cache_label}",
            )
            chart_rows.append(
                (report.label, report.bep_misfetch, report.bep_mispredict)
            )
            data.setdefault(f"nls-table-{entries}", {})[cache_label] = report.bep
    return ExperimentResult(
        name="fig4",
        title=(
            "Figure 4: average branch execution penalty, NLS-cache vs "
            "512/1024/2048-entry NLS-tables"
        ),
        text=bep_chart(chart_rows),
        data=data,
    )


# ---------------------------------------------------------------------------
# Figure 5 — BTB vs 1024-entry NLS-table, average BEP
# ---------------------------------------------------------------------------


def fig5(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
    cache_grid: Sequence[Tuple[int, int]] = CACHE_GRID,
) -> ExperimentResult:
    """Average BEP of the 128/256-entry BTBs (direct and 4-way) against
    the 1024-entry NLS-table at every cache configuration.

    The BTB rows are simulated at a 16K direct-mapped cache: the BTB's
    BEP does not depend on the instruction cache (§7), which fig8
    (CPI) and the data dict make checkable.
    """
    programs = _programs(programs)
    chart_rows: List[Tuple[str, float, float]] = []
    data: Dict[str, float] = {}
    for entries in (128, 256):
        for assoc in (1, 4):
            config = ArchitectureConfig(
                frontend="btb", entries=entries, btb_assoc=assoc, cache_kb=16
            )
            report = _average(
                config,
                programs,
                instructions,
                warmup,
                f"{entries} {'direct' if assoc == 1 else f'{assoc}-way'} BTB",
            )
            chart_rows.append(
                (report.label, report.bep_misfetch, report.bep_mispredict)
            )
            data[f"btb-{entries}-{assoc}w"] = report.bep
    for kb, assoc in cache_grid:
        config = ArchitectureConfig(
            frontend="nls-table", entries=1024, cache_kb=kb, cache_assoc=assoc
        )
        report = _average(
            config,
            programs,
            instructions,
            warmup,
            f"1024 NLS-table, {kb}K {'direct' if assoc == 1 else f'{assoc}-way'}",
        )
        chart_rows.append((report.label, report.bep_misfetch, report.bep_mispredict))
        data[f"nls-1024@{kb}K-{assoc}w"] = report.bep
    return ExperimentResult(
        name="fig5",
        title="Figure 5: average BEP, BTBs vs the 1024-entry NLS-table",
        text=bep_chart(chart_rows),
        data=data,
    )


# ---------------------------------------------------------------------------
# Figure 6 — BTB access times
# ---------------------------------------------------------------------------


def fig6() -> ExperimentResult:
    """BTB access-time estimates (CACTI-style model)."""
    model = AccessTimeModel()
    rows = []
    data: Dict[str, float] = {}
    for entries in (128, 256):
        for assoc in (1, 2, 4):
            t = model.access_time_ns(entries, assoc)
            ratio = model.associativity_penalty(entries, assoc)
            label = f"{entries}-entry {'direct' if assoc == 1 else f'{assoc}-way'}"
            rows.append((label, f"{t:.2f}", f"{ratio:.2f}x"))
            data[f"{entries}-{assoc}w"] = t
    text = format_table(["BTB organisation", "access ns", "vs direct"], rows)
    return ExperimentResult(
        name="fig6",
        title="Figure 6: BTB access time (Wilton-Jouppi style model)",
        text=text,
        data=data,
    )


# ---------------------------------------------------------------------------
# Figure 7 — per-program BEP comparison
# ---------------------------------------------------------------------------


def fig7_configs() -> List[Tuple[str, ArchitectureConfig]]:
    """The ten per-program configurations of Figure 7."""
    configs: List[Tuple[str, ArchitectureConfig]] = []
    for entries in (128, 256):
        for assoc in (1, 4):
            configs.append(
                (
                    f"{entries} {'Direct' if assoc == 1 else '4-way'} BTB",
                    ArchitectureConfig(
                        frontend="btb", entries=entries, btb_assoc=assoc, cache_kb=16
                    ),
                )
            )
    for kb in (8, 16, 32):
        for assoc in (1, 4):
            configs.append(
                (
                    f"1024 NLS-table, {kb}K {'Direct' if assoc == 1 else '4-way'}",
                    ArchitectureConfig(
                        frontend="nls-table",
                        entries=1024,
                        cache_kb=kb,
                        cache_assoc=assoc,
                    ),
                )
            )
    return configs


def fig7(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
) -> ExperimentResult:
    """Per-program BEP for the ten configurations of Figure 7."""
    programs = _programs(programs)
    configs = fig7_configs()
    sections: List[str] = []
    data: Dict[str, Dict[str, SimulationReport]] = {}
    for program in programs:
        chart_rows = []
        for label, config in configs:
            report = _run(config, program, instructions, warmup)
            chart_rows.append((label, report.bep_misfetch, report.bep_mispredict))
            data.setdefault(program, {})[label] = report
        sections.append(bep_chart(chart_rows, title=program))
    return ExperimentResult(
        name="fig7",
        title="Figure 7: per-program BEP, NLS-table vs BTB",
        text="\n\n".join(sections),
        data=data,
    )


# ---------------------------------------------------------------------------
# Figure 8 — CPI comparison
# ---------------------------------------------------------------------------


def fig8(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
    cache_grid: Sequence[Tuple[int, int]] = CACHE_GRID,
) -> ExperimentResult:
    """Average CPI of the BTBs and the 1024-entry NLS-table, per cache
    configuration (unlike the BEP, the CPI of every architecture moves
    with the cache because of the 5-cycle miss penalty)."""
    programs = _programs(programs)
    variants: List[Tuple[str, ArchitectureConfig]] = [
        ("128 Direct BTB", ArchitectureConfig(frontend="btb", entries=128, btb_assoc=1)),
        ("128 4-way BTB", ArchitectureConfig(frontend="btb", entries=128, btb_assoc=4)),
        ("256 Direct BTB", ArchitectureConfig(frontend="btb", entries=256, btb_assoc=1)),
        ("256 4-way BTB", ArchitectureConfig(frontend="btb", entries=256, btb_assoc=4)),
        (
            "1024 NLS-table",
            ArchitectureConfig(frontend="nls-table", entries=1024),
        ),
    ]
    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for kb, assoc in cache_grid:
        cache_label = f"{kb}K {'direct' if assoc == 1 else f'{assoc}-way'}"
        for name, base in variants:
            config = base.with_cache(kb, assoc)
            report = _average(
                config, programs, instructions, warmup, f"{name} @ {cache_label}"
            )
            rows.append((cache_label, name, f"{report.cpi:.4f}"))
            data.setdefault(cache_label, {})[name] = report.cpi
    text = format_table(["cache", "front-end", "CPI"], rows)
    return ExperimentResult(
        name="fig8",
        title="Figure 8: cycles per instruction (single issue)",
        text=text,
        data=data,
    )


# ---------------------------------------------------------------------------
# §6.2 — Johnson's coupled successor-index design
# ---------------------------------------------------------------------------


def johnson_comparison(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
    cache_kb: int = 16,
    cache_assoc: int = 1,
) -> ExperimentResult:
    """NLS-table vs NLS-cache vs Johnson's coupled 1-bit design."""
    programs = _programs(programs)
    variants = [
        (
            "1024 NLS-table + gshare",
            ArchitectureConfig(
                frontend="nls-table",
                entries=1024,
                cache_kb=cache_kb,
                cache_assoc=cache_assoc,
            ),
        ),
        (
            "NLS-cache (2/line) + gshare",
            ArchitectureConfig(
                frontend="nls-cache", cache_kb=cache_kb, cache_assoc=cache_assoc
            ),
        ),
        (
            "Johnson successor index (1-bit)",
            ArchitectureConfig(
                frontend="johnson", cache_kb=cache_kb, cache_assoc=cache_assoc
            ),
        ),
    ]
    chart_rows = []
    data: Dict[str, float] = {}
    for label, config in variants:
        report = _average(config, programs, instructions, warmup, label)
        chart_rows.append((label, report.bep_misfetch, report.bep_mispredict))
        data[label] = report.bep
    return ExperimentResult(
        name="johnson",
        title=(
            "S6.2 comparison: decoupled NLS vs Johnson's coupled "
            f"successor-index design ({cache_kb}K {cache_assoc}-way cache)"
        ),
        text=bep_chart(chart_rows),
        data=data,
    )


# ---------------------------------------------------------------------------
# §4.1 / §7 ablations
# ---------------------------------------------------------------------------


def ablation_nls_cache(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
    cache_kb: int = 16,
) -> ExperimentResult:
    """NLS-cache design space: predictors per line x association
    policy (§5.1 "one to four NLS predictors per cache line with
    varying replacement policies")."""
    programs = _programs(programs)
    chart_rows = []
    data: Dict[str, float] = {}
    for per_line in (1, 2, 4):
        for policy in ("partition", "lru"):
            label = f"NLS-cache {per_line}/line {policy}"
            config = ArchitectureConfig(
                frontend="nls-cache",
                cache_kb=cache_kb,
                predictors_per_line=per_line,
                nls_cache_policy=policy,
            )
            report = _average(config, programs, instructions, warmup, label)
            chart_rows.append((label, report.bep_misfetch, report.bep_mispredict))
            data[label] = report.bep
    return ExperimentResult(
        name="ablation-nls-cache",
        title=f"NLS-cache ablation ({cache_kb}K direct-mapped cache)",
        text=bep_chart(chart_rows),
        data=data,
    )


def ablation_direction(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
) -> ExperimentResult:
    """Direction-predictor ablation under the 1024-entry NLS-table."""
    programs = _programs(programs)
    chart_rows = []
    data: Dict[str, float] = {}
    for direction in (
        "gshare",
        "pan",
        "gag",
        "bimodal",
        "pag",
        "combining",
        "taken",
        "not-taken",
        "btfnt",
    ):
        config = ArchitectureConfig(
            frontend="nls-table", entries=1024, cache_kb=16, direction=direction
        )
        report = _average(config, programs, instructions, warmup, direction)
        chart_rows.append((direction, report.bep_misfetch, report.bep_mispredict))
        data[direction] = report.bep
    return ExperimentResult(
        name="ablation-direction",
        title="Direction predictor ablation (1024 NLS-table, 16K cache)",
        text=bep_chart(chart_rows),
        data=data,
    )


def ablation_layout(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
    cache_kb: int = 16,
) -> ExperimentResult:
    """Program-layout ablation (§7: restructuring lowers the I-cache
    miss rate, which improves the NLS architecture but not the BTB)."""
    programs = _programs(programs)
    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for layout in ("natural", "random"):
        for name, config in (
            (
                "1024 NLS-table",
                ArchitectureConfig(frontend="nls-table", entries=1024, cache_kb=cache_kb),
            ),
            ("128 BTB", ArchitectureConfig(frontend="btb", entries=128, cache_kb=cache_kb)),
        ):
            reports = [
                simulate(
                    config,
                    program,
                    instructions=instructions,
                    warmup_fraction=warmup,
                    layout=layout,
                )
                for program in programs
            ]
            average = average_reports(reports, label=f"{name} / {layout}")
            rows.append(
                (
                    layout,
                    name,
                    f"{100 * average.icache_miss_rate:.2f}%",
                    f"{average.bep_misfetch:.3f}",
                    f"{average.bep:.3f}",
                )
            )
            data.setdefault(layout, {})[name] = average.bep
    text = format_table(
        ["layout", "front-end", "I-miss", "BEP(misfetch)", "BEP"], rows
    )
    return ExperimentResult(
        name="ablation-layout",
        title="Layout ablation: procedure placement vs NLS/BTB BEP",
        text=text,
        data=data,
    )


def coupled_vs_decoupled(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
    cache_kb: int = 16,
) -> ExperimentResult:
    """Coupled (Pentium-style) vs decoupled BTB (§2).

    In the coupled design the 2-bit direction counters live inside the
    BTB entries, so branches that miss fall back to static prediction;
    the decoupled design predicts *every* conditional with the shared
    PHT — the reason the paper (and its authors' earlier study [2])
    simulate decoupled designs.
    """
    programs = _programs(programs)
    chart_rows = []
    data: Dict[str, float] = {}
    for entries in (128, 256):
        for name, frontend in (
            (f"decoupled {entries} BTB + gshare", "btb"),
            (f"coupled {entries} BTB (2-bit in entry)", "coupled-btb"),
        ):
            config = ArchitectureConfig(
                frontend=frontend, entries=entries, btb_assoc=1, cache_kb=cache_kb
            )
            report = _average(config, programs, instructions, warmup, name)
            chart_rows.append((name, report.bep_misfetch, report.bep_mispredict))
            data[name] = report.bep
    return ExperimentResult(
        name="coupled",
        title="S2 comparison: coupled vs decoupled BTB direction prediction",
        text=bep_chart(chart_rows),
        data=data,
    )


def way_prediction(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    cache_kb: int = 16,
    cache_assoc: int = 2,
) -> ExperimentResult:
    """Fall-through way prediction accuracy (§4.2, second approach).

    Replays each trace against an associative cache carrying per-line
    successor-way fields and reports how often the predicted way is
    right — the figure of merit for turning an associative cache into
    a direct-mapped-latency one on the sequential path.
    """
    from repro.cache.icache import InstructionCache
    from repro.cache.setpred import FallThroughWayPredictor
    from repro.cache.geometry import CacheGeometry

    programs = _programs(programs)
    rows = []
    data: Dict[str, float] = {}
    geometry = CacheGeometry(cache_kb * 1024, 32, cache_assoc)
    for program in programs:
        trace = generate_trace(program, instructions=instructions)
        cache = InstructionCache(geometry)
        predictor = FallThroughWayPredictor(cache)
        line_bytes = geometry.line_bytes
        previous_line = None
        for index in range(trace.n_events):
            start = trace.starts[index]
            end = start + (trace.counts[index] - 1) * 4
            line = start & ~(line_bytes - 1)
            end_line = end & ~(line_bytes - 1)
            while True:
                if previous_line is not None and line == previous_line + line_bytes:
                    predicted = predictor.predict(previous_line)
                    way = cache.access(line).way
                    predictor.record_outcome(predicted, way)
                    predictor.update(previous_line, way)
                else:
                    way = cache.access(line).way
                previous_line = line
                if line == end_line:
                    break
                line += line_bytes
        rows.append(
            (
                program,
                predictor.predictions,
                f"{100 * predictor.accuracy:.2f}%",
                f"{100 * cache.miss_rate:.2f}%",
            )
        )
        data[program] = predictor.accuracy
    text = format_table(
        ["program", "sequential fetches", "way-pred accuracy", "I-miss"], rows
    )
    return ExperimentResult(
        name="way-prediction",
        title=(
            f"S4.2 fall-through way prediction ({cache_kb}K "
            f"{cache_assoc}-way cache)"
        ),
        text=text,
        data=data,
    )


def multi_issue(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    widths: Sequence[int] = (1, 2, 4, 8),
    cache_kb: int = 16,
) -> ExperimentResult:
    """Issue-width extension (§8): IPC of the equal-cost NLS-table and
    BTB as the fetch width grows.

    Penalty cycles are fixed per event, but a wider machine loses more
    useful work per bubble, so fetch prediction quality matters more —
    "nothing in the design of the NLS architecture appears to be a
    problem for wide-issue architectures" (§8) becomes checkable.
    """
    from repro.fetch.multiissue import FetchBandwidthModel

    programs = _programs(programs)
    variants = (
        ("1024 NLS-table", ArchitectureConfig(frontend="nls-table", entries=1024, cache_kb=cache_kb)),
        ("128 BTB", ArchitectureConfig(frontend="btb", entries=128, cache_kb=cache_kb)),
        ("oracle fetch", ArchitectureConfig(frontend="oracle", cache_kb=cache_kb)),
    )
    rows = []
    data: Dict[str, Dict[int, float]] = {}
    for name, config in variants:
        per_width: Dict[int, List[float]] = {width: [] for width in widths}
        for program in programs:
            trace = generate_trace(program, instructions=instructions)
            # multi-issue evaluation needs full-trace reports
            report = config.build().run(trace, warmup_fraction=0.0)
            for width in widths:
                model = FetchBandwidthModel(width, config.geometry.line_bytes)
                per_width[width].append(model.evaluate(trace, report).ipc)
        for width in widths:
            ipc = sum(per_width[width]) / len(per_width[width])
            rows.append((name, width, f"{ipc:.3f}"))
            data.setdefault(name, {})[width] = ipc
    text = format_table(["front-end", "fetch width", "IPC"], rows)
    return ExperimentResult(
        name="multi-issue",
        title="S8 extension: IPC vs fetch width (single-cycle line-limited fetch)",
        text=text,
        data=data,
    )


def address_space_scaling(
    bits_list: Sequence[int] = (32, 40, 48, 64),
    cache_kb: int = 16,
) -> ExperimentResult:
    """Address-space scaling (§7): "as the program address space
    increases ... the area needed by the BTB would also increase.  By
    comparison, the NLS-table design does not use a tag nor does it
    store the full target address, so an increased address space has
    no effect on the size of the NLS-table"."""
    from repro.isa.geometry import AddressSpace

    model = RBEModel()
    geometry = CacheGeometry(cache_kb * 1024, 32, 1)
    nls_cost = model.nls_table_cost(1024, geometry).rbe
    rows = []
    data: Dict[str, Dict[int, float]] = {"btb-128": {}, "btb-256": {}, "nls-1024": {}}
    for bits in bits_list:
        space = AddressSpace(bits)
        for entries in (128, 256):
            cost = model.btb_cost(entries, 1, space).rbe
            rows.append((f"{bits}-bit", f"{entries}-entry BTB", f"{cost:,.0f}"))
            data[f"btb-{entries}"][bits] = cost
        rows.append((f"{bits}-bit", "1024-entry NLS-table", f"{nls_cost:,.0f}"))
        data["nls-1024"][bits] = nls_cost
    text = format_table(["address space", "structure", "RBE"], rows)
    return ExperimentResult(
        name="address-space",
        title="S7: structure cost vs program address-space size",
        text=text,
        data=data,
    )


def steely_sager_comparison(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
    cache_kb: int = 16,
) -> ExperimentResult:
    """Per-entry NLS indirect prediction vs the Steely-Sager single
    computed-goto register (§6.2), per program.

    Programs with several interleaved hot indirect sites thrash the
    single register; programs with one dominant site barely notice.
    """
    programs = _programs(programs)
    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for program in programs:
        for name, frontend in (
            ("nls-table", "nls-table"),
            ("steely-sager", "steely-sager"),
        ):
            config = ArchitectureConfig(
                frontend=frontend, entries=1024, cache_kb=cache_kb, cache_assoc=1
            )
            report = _run(config, program, instructions, warmup)
            indirect = report.by_kind and {
                kind.name: counts for kind, counts in report.by_kind.items()
            }.get("INDIRECT")
            indirect_mp = (
                100.0 * indirect[2] / indirect[0] if indirect and indirect[0] else 0.0
            )
            rows.append(
                (program, name, f"{indirect_mp:.1f}%", f"{report.bep:.3f}")
            )
            data.setdefault(program, {})[name] = report.bep
    text = format_table(
        ["program", "indirect predictor", "IJ mispredict", "BEP"], rows
    )
    return ExperimentResult(
        name="steely-sager",
        title=(
            "S6.2: per-entry NLS indirect prediction vs the Steely-Sager "
            "computed-goto register"
        ),
        text=text,
        data=data,
    )


def calibration(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
) -> ExperimentResult:
    """Measured-vs-paper calibration quality of the synthetic
    workloads (value errors per column, rank agreement per attribute).
    """
    from repro.workloads.validation import summarise

    programs = _programs(programs)
    measured = {}
    papers = {}
    for name in programs:
        profile = get_profile(name)
        trace = generate_trace(name, instructions=instructions)
        measured[name] = measure(trace, build_program(profile))
        papers[name] = profile.paper
    summary = summarise(measured, papers)
    rows = []
    for program, comparisons in summary.per_program.items():
        for comparison in comparisons:
            rows.append(
                (
                    program,
                    comparison.field,
                    f"{comparison.measured:.2f}",
                    f"{comparison.paper:.2f}",
                    f"{comparison.absolute_error:+.2f}",
                )
            )
    lines = [format_table(["program", "column", "measured", "paper", "error"], rows)]
    if summary.rank_correlations:
        rank_rows = [
            (field, f"{value:+.2f}")
            for field, value in sorted(summary.rank_correlations.items())
        ]
        lines.append("")
        lines.append(
            format_table(
                ["attribute", "rank corr (programs)"],
                rank_rows,
                title="cross-program rank agreement with Table 1",
            )
        )
        lines.append("")
        worst = summary.worst_field
        lines.append(
            f"mean |error| = {summary.mean_absolute_scalar_error:.2f} points; "
            f"worst: {worst[1]} on {worst[0]} ({worst[2]:+.2f})"
        )
    return ExperimentResult(
        name="calibration",
        title="Workload calibration: measured vs paper Table 1",
        text="\n".join(lines),
        data={
            "mean_abs_error": summary.mean_absolute_scalar_error,
            "rank_correlations": summary.rank_correlations,
        },
    )


def misfetch_causes(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
    cache_sizes: Sequence[int] = (8, 16, 32),
) -> ExperimentResult:
    """Why NLS taken-target predictions fail, per cache size (§7).

    The paper's displacement argument predicts the ``displaced``
    bucket shrinks as the cache grows while the tag-less aliasing
    buckets stay put; this experiment shows the distribution directly.
    """
    programs = _programs(programs)
    rows = []
    data: Dict[str, Dict[str, int]] = {}
    for kb in cache_sizes:
        totals = {"invalid": 0, "line-field": 0, "displaced": 0, "wrong-way": 0}
        for program in programs:
            trace = generate_trace(program, instructions=instructions)
            config = ArchitectureConfig(
                frontend="nls-table", entries=1024, cache_kb=kb, cache_assoc=1
            )
            engine = config.build()
            engine.run(trace, warmup_fraction=warmup)
            for cause, count in engine.frontend.mismatch_causes.items():
                totals[cause] += count
        total = sum(totals.values()) or 1
        rows.append(
            (
                f"{kb}K",
                totals["invalid"],
                totals["line-field"],
                totals["displaced"],
                f"{100 * totals['displaced'] / total:.1f}%",
            )
        )
        data[f"{kb}K"] = dict(totals)
    text = format_table(
        ["cache", "invalid", "alias/stale", "displaced", "displaced share"], rows
    )
    return ExperimentResult(
        name="misfetch-causes",
        title="NLS misfetch causes vs cache size (1024-entry table, direct mapped)",
        text=text,
        data=data,
    )


def btb_allocation(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
) -> ExperimentResult:
    """Taken-only vs allocate-all BTB policies (§3's cited result)."""
    programs = _programs(programs)
    chart_rows = []
    data: Dict[str, float] = {}
    for entries in (128, 256):
        for allocate in ("taken-only", "all"):
            config = ArchitectureConfig(
                frontend="btb", entries=entries, btb_allocate=allocate, cache_kb=16
            )
            label = f"{entries} BTB, allocate {allocate}"
            report = _average(config, programs, instructions, warmup, label)
            chart_rows.append((label, report.bep_misfetch, report.bep_mispredict))
            data[label] = report.bep
    return ExperimentResult(
        name="btb-allocation",
        title="S3: BTB allocation policy (taken-only vs all branches)",
        text=bep_chart(chart_rows),
        data=data,
    )


def ras_depth(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
    depths: Sequence[int] = (1, 2, 4, 8, 16, 32),
) -> ExperimentResult:
    """Return-stack depth sweep (the Kaeli-Emma structure both
    architectures rely on, §3)."""
    from repro.isa.branches import BranchKind

    programs = _programs(programs)
    rows = []
    data: Dict[int, float] = {}
    for depth in depths:
        mispredicted = 0
        executed = 0
        for program in programs:
            config = ArchitectureConfig(
                frontend="nls-table", entries=1024, cache_kb=16, ras_entries=depth
            )
            report = _run(config, program, instructions, warmup)
            ex, mf, mp = report.by_kind[BranchKind.RETURN]
            executed += ex
            mispredicted += mp
        rate = 100.0 * mispredicted / executed if executed else 0.0
        rows.append((depth, executed, f"{rate:.2f}%"))
        data[depth] = rate
    text = format_table(["RAS entries", "returns", "return mispredict"], rows)
    return ExperimentResult(
        name="ras-depth",
        title="Return-address-stack depth sweep (1024 NLS-table, 16K cache)",
        text=text,
        data=data,
    )


def line_size(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    warmup: float = DEFAULT_WARMUP,
    line_sizes: Sequence[int] = (16, 32, 64),
) -> ExperimentResult:
    """Cache line-size sweep: longer lines shrink the NLS line field
    (fewer sets) but raise per-miss cost and change the fall-through
    packing; the paper fixes 32-byte lines (§5.1)."""
    programs = _programs(programs)
    rows = []
    data: Dict[int, Dict[str, float]] = {}
    model = RBEModel()
    for line_bytes in line_sizes:
        config = ArchitectureConfig(
            frontend="nls-table", entries=1024, cache_kb=16, line_bytes=line_bytes
        )
        report = _average(
            config, programs, instructions, warmup, f"{line_bytes}B lines"
        )
        entry_bits = model.nls_entry_bits(config.geometry)
        rows.append(
            (
                f"{line_bytes}B",
                entry_bits,
                f"{100 * report.icache_miss_rate:.2f}%",
                f"{report.bep_misfetch:.3f}",
                f"{report.bep:.3f}",
            )
        )
        data[line_bytes] = {"bep": report.bep, "entry_bits": entry_bits}
    text = format_table(
        ["line size", "NLS entry bits", "I-miss", "BEP(misfetch)", "BEP"], rows
    )
    return ExperimentResult(
        name="line-size",
        title="Line-size sweep (1024 NLS-table, 16K direct cache)",
        text=text,
        data=data,
    )


def context_switch(
    programs: Optional[Sequence[str]] = None,
    instructions: Optional[int] = None,
    intervals: Sequence[Optional[int]] = (None, 500_000, 100_000, 25_000),
) -> ExperimentResult:
    """Context-switch sensitivity: BEP under periodic full state
    flushes (I-cache, front-end, PHT, return stack).

    The paper's single-process traces never flush; this study shows
    how quickly each architecture re-learns.  Warmup is disabled —
    cold restarts are the effect being measured.
    """
    programs = _programs(programs)
    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for interval in intervals:
        label = "never" if interval is None else f"every {interval:,}"
        for name, frontend, kwargs in (
            ("1024 NLS-table", "nls-table", {"entries": 1024}),
            ("128 BTB", "btb", {"entries": 128}),
        ):
            config = ArchitectureConfig(
                frontend=frontend, cache_kb=16, flush_interval=interval, **kwargs
            )
            report = _average(config, programs, instructions, 0.0, name)
            rows.append(
                (
                    label,
                    name,
                    f"{100 * report.icache_miss_rate:.2f}%",
                    f"{report.bep:.3f}",
                )
            )
            data.setdefault(label, {})[name] = report.bep
    text = format_table(["flush interval", "front-end", "I-miss", "BEP"], rows)
    return ExperimentResult(
        name="context-switch",
        title="Context-switch sensitivity (periodic full state flush)",
        text=text,
        data=data,
    )


#: registry used by the CLI
EXPERIMENTS = {
    "table1": table1,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "johnson": johnson_comparison,
    "ablation-nls-cache": ablation_nls_cache,
    "ablation-direction": ablation_direction,
    "ablation-layout": ablation_layout,
    "coupled": coupled_vs_decoupled,
    "way-prediction": way_prediction,
    "multi-issue": multi_issue,
    "address-space": address_space_scaling,
    "steely-sager": steely_sager_comparison,
    "calibration": calibration,
    "misfetch-causes": misfetch_causes,
    "btb-allocation": btb_allocation,
    "ras-depth": ras_depth,
    "line-size": line_size,
    "context-switch": context_switch,
}

"""Experiment harness: architecture configs, sweep runner, and one
driver per table/figure of the paper (see ``python -m repro.harness``).
"""

from repro.harness.config import ArchitectureConfig
from repro.harness.runner import simulate, sweep, run_config

__all__ = ["ArchitectureConfig", "simulate", "sweep", "run_config"]

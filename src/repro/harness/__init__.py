"""Experiment harness: architecture configs, the spec → plan → backend
executor, and one declarative spec per table/figure of the paper (see
``python -m repro.harness`` and DESIGN.md, "Harness architecture").
"""

from repro.harness.checkpoint import CellFailure, CheckpointJournal
from repro.harness.config import ArchitectureConfig
from repro.harness.runner import (
    BACKENDS,
    CellExecutionError,
    CellTimeoutError,
    ExecutionPolicy,
    RunPlan,
    RunRequest,
    run_config,
    run_request,
    simulate,
    sweep,
)
from repro.harness.spec import (
    ExperimentPlan,
    ExperimentResult,
    ExperimentSpec,
    run_plans,
)

__all__ = [
    "ArchitectureConfig",
    "BACKENDS",
    "CellExecutionError",
    "CellFailure",
    "CellTimeoutError",
    "CheckpointJournal",
    "ExecutionPolicy",
    "ExperimentPlan",
    "ExperimentResult",
    "ExperimentSpec",
    "RunPlan",
    "RunRequest",
    "run_config",
    "run_plans",
    "run_request",
    "simulate",
    "sweep",
]

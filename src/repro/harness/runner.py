"""Run-plan executor: simulate (config × program) grids through
pluggable backends.

The harness is layered spec → plan → backend (see DESIGN.md,
"Harness architecture"):

* experiments declare the cells they need as :class:`RunRequest`
  values — picklable descriptions, never live engines;
* a :class:`RunPlan` collects requests (possibly from many
  experiments), **dedups** identical ``(config, program, instructions,
  seed, layout, warmup)`` keys, and executes the unique cells through
  one of the registered :data:`BACKENDS`:

  - ``serial`` — in-process loop, bit-identical to the historical
    single-threaded sweep (the default);
  - ``process`` — a multiprocessing pool; cells are batched by trace
    key so each worker generates a given trace once and memoises it
    via :mod:`repro.workloads.corpus` (per-process cache).

Every cell's report carries a :class:`~repro.metrics.report.RunMetadata`
with the config label, program, seed, layout, executing backend, pid
and wall time, plus a :class:`~repro.telemetry.manifest.RunManifest`
(git SHA, interpreter/platform, trace key, wall/CPU cost, peak RSS),
so provenance survives aggregation and export.

When a telemetry registry is active (see :mod:`repro.telemetry`),
every cell is wrapped in a ``runner.cell`` span; pool workers record
into private registries whose snapshots ship back with each batch and
merge into the parent's, so serial and process runs produce equivalent
counter totals.  Worker failures surface as
:class:`CellExecutionError` naming the offending cell, and a pool that
cannot start at all (sandboxes) degrades to the serial backend with a
warning.

Traces are memoised by :mod:`repro.workloads.corpus`, so a serial
sweep pays the trace-generation cost once per program.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import warnings
from dataclasses import dataclass, replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.harness.config import ArchitectureConfig
from repro.metrics.report import RunMetadata, SimulationReport
from repro.telemetry import manifest as manifest_module
from repro.telemetry.core import Registry, get_registry, set_registry
from repro.workloads.corpus import clear_cache, generate_trace, trace_key
from repro.workloads.trace import Trace


#: default warmup fraction — the first 30% of every trace trains the
#: structures without being counted (see FetchEngine.run)
DEFAULT_WARMUP = 0.30


@dataclass(frozen=True)
class RunRequest:
    """One simulation cell: *config* applied to one generated trace.

    A request is a pure value — hashable (so plans can dedup it) and
    picklable (so process-pool workers can rebuild the engine on their
    side).  ``instructions``/``seed`` of ``None`` defer to the
    program profile's calibrated defaults, exactly as
    :func:`~repro.workloads.corpus.generate_trace` resolves them.
    """

    config: ArchitectureConfig
    program: str
    instructions: Optional[int] = None
    seed: Optional[int] = None
    layout: str = "natural"
    warmup: float = DEFAULT_WARMUP

    def resolved_trace_key(self):
        """Fully-resolved key of the trace this cell simulates (cells
        sharing it are batched onto the same pool worker)."""
        return trace_key(
            self.program,
            instructions=self.instructions,
            seed=self.seed,
            layout=self.layout,
        )


class CellExecutionError(RuntimeError):
    """A simulation cell failed inside an executor backend.

    Raised instead of the worker's bare pickled traceback so the error
    names the offending cell — config label, program and seed — which
    is what a sweep over hundreds of cells needs to be debuggable.
    """


def run_request(request: RunRequest, backend: str = "serial") -> SimulationReport:
    """Execute one cell: generate (or reuse) the trace, build a fresh
    engine from the picklable config, run, and stamp provenance.

    The cell is wrapped in a ``runner.cell`` telemetry span (a no-op
    unless a registry is active — see :mod:`repro.telemetry`), and the
    report carries both a :class:`RunMetadata` and a
    :class:`~repro.telemetry.manifest.RunManifest`."""
    registry = get_registry()
    config = request.config
    label = config.label()
    with registry.span(
        "runner.cell", config=label, program=request.program, backend=backend
    ):
        trace = generate_trace(
            request.program,
            instructions=request.instructions,
            seed=request.seed,
            layout=request.layout,
        )
        started = time.perf_counter()
        cpu_started = time.process_time()
        engine = config.build()
        report = engine.run(
            trace, label=label, warmup_fraction=request.warmup
        )
        wall = time.perf_counter() - started
        cpu = time.process_time() - cpu_started
    registry.counter("runner.cells").add()
    registry.histogram("runner.cell_wall_ms").observe(int(wall * 1000))
    meta = RunMetadata(
        config_label=label,
        program=request.program,
        instructions=request.instructions,
        seed=request.seed,
        layout=request.layout,
        warmup=request.warmup,
        backend=backend,
        wall_time_s=wall,
        pid=os.getpid(),
    )
    manifest = manifest_module.collect(
        config_label=label,
        program=request.program,
        trace_key=request.resolved_trace_key(),
        wall_time_s=wall,
        cpu_time_s=cpu,
    )
    return replace(report, meta=meta, manifest=manifest)


def _cell_error(request: RunRequest, exc: BaseException) -> CellExecutionError:
    """Wrap *exc* in an error naming the offending cell."""
    return CellExecutionError(
        f"simulation cell failed: config={request.config.label()!r} "
        f"program={request.program!r} seed={request.seed!r} "
        f"layout={request.layout!r}: {type(exc).__name__}: {exc}"
    )


# ---------------------------------------------------------------------------
# backends
# ---------------------------------------------------------------------------


def _execute_serial(
    requests: Sequence[RunRequest], jobs: Optional[int] = None
) -> Dict[RunRequest, SimulationReport]:
    """In-process backend: one cell after another, insertion order."""
    return {request: run_request(request, backend="serial") for request in requests}


def _batches_by_trace(requests: Sequence[RunRequest]) -> List[List[RunRequest]]:
    """Group cells sharing a trace so a worker generates it once.

    Batches are sorted by their fully resolved trace key, so the pool
    sees an identical work order regardless of request order or
    ``PYTHONHASHSEED`` — batch assignment is reproducible run to run.
    """
    groups: Dict[tuple, List[RunRequest]] = {}
    for request in requests:
        groups.setdefault(request.resolved_trace_key(), []).append(request)
    return [groups[key] for key in sorted(groups)]


def _worker_init(telemetry_enabled: bool = False) -> None:
    """Pool initialiser: start each worker with an empty, private
    trace corpus (nothing stale inherited across a fork) and — when
    the parent has telemetry on — a fresh per-worker registry whose
    snapshot ships back with every batch result."""
    clear_cache()
    if telemetry_enabled:
        set_registry(Registry(enabled=True))


def _run_batch(
    batch: List[RunRequest],
) -> Tuple[List[Tuple[RunRequest, SimulationReport]], Optional[Dict[str, Any]]]:
    """Worker task: execute one same-trace batch of cells.

    Returns the cell reports plus the worker registry's telemetry
    snapshot *delta* for this batch (``None`` when telemetry is off).
    A failing cell raises :class:`CellExecutionError` naming the cell
    instead of surfacing a bare pickled traceback.
    """
    pairs = []
    for request in batch:
        try:
            pairs.append((request, run_request(request, backend="process")))
        except CellExecutionError:
            raise
        except Exception as exc:
            raise _cell_error(request, exc) from exc
    registry = get_registry()
    if not registry.enabled:
        return pairs, None
    snapshot = registry.snapshot()
    # ship only this batch's delta: replace the worker registry so the
    # parent can merge snapshots without double-counting
    set_registry(Registry(enabled=True))
    return pairs, snapshot


def _execute_process(
    requests: Sequence[RunRequest], jobs: Optional[int] = None
) -> Dict[RunRequest, SimulationReport]:
    """Multiprocessing backend: same-trace batches fan out to a pool.

    Worker telemetry snapshots are merged into the parent's active
    registry, so counter totals and per-cell spans are equivalent to a
    serial run.  If the pool cannot even start (sandboxed
    environments, missing semaphores), the backend warns and falls
    back to the serial executor rather than failing the sweep.
    """
    if not requests:
        return {}
    if jobs is None or jobs < 1:
        jobs = os.cpu_count() or 1
    batches = _batches_by_trace(requests)
    registry = get_registry()
    results: Dict[RunRequest, SimulationReport] = {}
    context = multiprocessing.get_context()
    try:
        pool = context.Pool(
            processes=min(jobs, len(batches)),
            initializer=_worker_init,
            initargs=(registry.enabled,),
        )
    except (OSError, PermissionError, ValueError) as exc:
        warnings.warn(
            f"multiprocessing pool failed to start ({type(exc).__name__}: "
            f"{exc}); falling back to the serial backend",
            RuntimeWarning,
            stacklevel=2,
        )
        return _execute_serial(requests)
    with pool:
        for pairs, snapshot in pool.imap_unordered(_run_batch, batches):
            registry.merge(snapshot)
            for request, report in pairs:
                results[request] = report
    return results


#: executor backends selectable via the CLI's ``--jobs`` flag
BACKENDS: Dict[str, Callable[..., Dict[RunRequest, SimulationReport]]] = {
    "serial": _execute_serial,
    "process": _execute_process,
}


class RunPlan:
    """A deduplicating batch of simulation cells.

    Requests from any number of experiments are added; identical cells
    collapse to one execution whose report is shared by every
    requester.  ``requested``/``unique`` expose how much work dedup
    saved, and :meth:`execute` runs the unique cells through a named
    backend.
    """

    def __init__(self, requests: Iterable[RunRequest] = ()) -> None:
        self._order: List[RunRequest] = []
        self._seen: set = set()
        self.requested = 0
        self.add_all(requests)

    def add(self, request: RunRequest) -> RunRequest:
        """Add one cell (deduplicated) and return it as its own key."""
        self.requested += 1
        if request not in self._seen:
            self._seen.add(request)
            self._order.append(request)
        return request

    def add_all(self, requests: Iterable[RunRequest]) -> None:
        """Add every cell of *requests* (deduplicated)."""
        for request in requests:
            self.add(request)

    @property
    def requests(self) -> Tuple[RunRequest, ...]:
        """The unique cells, in first-requested order."""
        return tuple(self._order)

    @property
    def unique(self) -> int:
        """Number of distinct cells that will actually execute."""
        return len(self._order)

    def execute(
        self, backend: str = "serial", jobs: Optional[int] = None
    ) -> Dict[RunRequest, SimulationReport]:
        """Run every unique cell through *backend*; returns the full
        request → report mapping."""
        try:
            execute = BACKENDS[backend]
        except KeyError:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of "
                f"{tuple(sorted(BACKENDS))}"
            ) from None
        return execute(self._order, jobs)


# ---------------------------------------------------------------------------
# single-cell / single-grid conveniences (the historical API)
# ---------------------------------------------------------------------------


def run_config(
    config: ArchitectureConfig,
    trace: Trace,
    label: Optional[str] = None,
    warmup_fraction: float = DEFAULT_WARMUP,
) -> SimulationReport:
    """Simulate an already-generated *trace* under *config*."""
    engine = config.build()
    return engine.run(
        trace,
        label=label if label is not None else config.label(),
        warmup_fraction=warmup_fraction,
    )


def simulate(
    config: ArchitectureConfig,
    program: Union[str, Trace],
    instructions: Optional[int] = None,
    seed: Optional[int] = None,
    layout: str = "natural",
    warmup_fraction: float = DEFAULT_WARMUP,
) -> SimulationReport:
    """Simulate calibrated *program* (by name, or a prebuilt trace)
    under *config* and return the report."""
    if isinstance(program, Trace):
        return run_config(config, program, warmup_fraction=warmup_fraction)
    return run_request(
        RunRequest(
            config=config,
            program=program,
            instructions=instructions,
            seed=seed,
            layout=layout,
            warmup=warmup_fraction,
        )
    )


def sweep(
    configs: Sequence[ArchitectureConfig],
    programs: Iterable[str],
    instructions: Optional[int] = None,
    seed: Optional[int] = None,
    layout: str = "natural",
    warmup_fraction: float = DEFAULT_WARMUP,
    backend: str = "serial",
    jobs: Optional[int] = None,
) -> Dict[str, List[SimulationReport]]:
    """Simulate every config on every program.

    Returns ``{config_label: [report_per_program, ...]}`` with program
    order preserved.  The grid is executed as a deduplicated
    :class:`RunPlan`, so repeated configs cost nothing, and *backend*
    (with *jobs* workers) selects serial or parallel execution.
    """
    programs = list(programs)
    grid: Dict[str, List[RunRequest]] = {}
    plan = RunPlan()
    for config in configs:
        label = config.label()
        row = []
        for program in programs:
            row.append(
                plan.add(
                    RunRequest(
                        config=config,
                        program=program,
                        instructions=instructions,
                        seed=seed,
                        layout=layout,
                        warmup=warmup_fraction,
                    )
                )
            )
        grid[label] = row
    reports = plan.execute(backend=backend, jobs=jobs)
    return {
        label: [reports[request] for request in row]
        for label, row in grid.items()
    }

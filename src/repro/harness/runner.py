"""Sweep runner: simulate (config × program) grids.

Traces are memoised by :mod:`repro.workloads.corpus`, so a sweep pays
the trace-generation cost once per program.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.harness.config import ArchitectureConfig
from repro.metrics.report import SimulationReport
from repro.workloads.corpus import generate_trace
from repro.workloads.trace import Trace


#: default warmup fraction — the first 30% of every trace trains the
#: structures without being counted (see FetchEngine.run)
DEFAULT_WARMUP = 0.30


def run_config(
    config: ArchitectureConfig,
    trace: Trace,
    label: Optional[str] = None,
    warmup_fraction: float = DEFAULT_WARMUP,
) -> SimulationReport:
    """Simulate an already-generated *trace* under *config*."""
    engine = config.build()
    return engine.run(
        trace,
        label=label if label is not None else config.label(),
        warmup_fraction=warmup_fraction,
    )


def simulate(
    config: ArchitectureConfig,
    program: Union[str, Trace],
    instructions: Optional[int] = None,
    seed: Optional[int] = None,
    layout: str = "natural",
    warmup_fraction: float = DEFAULT_WARMUP,
) -> SimulationReport:
    """Simulate calibrated *program* (by name, or a prebuilt trace)
    under *config* and return the report."""
    if isinstance(program, Trace):
        trace = program
    else:
        trace = generate_trace(
            program, instructions=instructions, seed=seed, layout=layout
        )
    return run_config(config, trace, warmup_fraction=warmup_fraction)


def sweep(
    configs: Sequence[ArchitectureConfig],
    programs: Iterable[str],
    instructions: Optional[int] = None,
    seed: Optional[int] = None,
    layout: str = "natural",
    warmup_fraction: float = DEFAULT_WARMUP,
) -> Dict[str, List[SimulationReport]]:
    """Simulate every config on every program.

    Returns ``{config_label: [report_per_program, ...]}`` with program
    order preserved.
    """
    programs = list(programs)
    results: Dict[str, List[SimulationReport]] = {}
    for config in configs:
        label = config.label()
        per_program: List[SimulationReport] = []
        for program in programs:
            per_program.append(
                simulate(
                    config,
                    program,
                    instructions=instructions,
                    seed=seed,
                    layout=layout,
                    warmup_fraction=warmup_fraction,
                )
            )
        results[label] = per_program
    return results

"""Run-plan executor: simulate (config × program) grids through
pluggable backends, resiliently.

The harness is layered spec → plan → backend (see DESIGN.md,
"Harness architecture"):

* experiments declare the cells they need as :class:`RunRequest`
  values — picklable descriptions, never live engines;
* a :class:`RunPlan` collects requests (possibly from many
  experiments), **dedups** identical ``(config, program, instructions,
  seed, layout, warmup)`` keys, and executes the unique cells through
  one of the registered :data:`BACKENDS`:

  - ``serial`` — in-process loop, bit-identical to the historical
    single-threaded sweep (the default);
  - ``process`` — a supervised ``ProcessPoolExecutor``; cells are
    batched by trace key so each worker generates a given trace once
    and memoises it via :mod:`repro.workloads.corpus`.

Both backends group cells by **(trace key, batch-compatibility
signature)** — the signature is the cell's
:class:`~repro.fetch.capability.EngineClass` (or ``reference``) — and
execute each fast group against one shared
:class:`~repro.fetch.fast_engine.TraceReplayContext`: the packed
trace's sub-replays (flush epochs, icache replay, residency probes,
gshare scan, table sorts) are computed once per group instead of once
per cell, and same-family table variants amortise their sorts through
``context.prepare``.  Each cell still builds its own engine and fans
back out to a per-cell byte-identical
:class:`~repro.metrics.report.SimulationReport`, so checkpointing,
attribution, telemetry and export are untouched by the batching.

Passing an :class:`ExecutionPolicy` turns on the resilience layer
(DESIGN.md §12), with identical semantics on both backends:

* a crash-safe **checkpoint journal** of completed cells
  (:mod:`repro.harness.checkpoint`) with ``resume`` replay;
* **per-cell retry** with exponential backoff + deterministic jitter
  and an optional per-cell deadline (SIGALRM-based, enforced inside
  the executing process);
* **failure classification** — transient failures (worker died, pool
  broke, deadline exceeded) retry until ``max_retries`` is exhausted;
  a cell failing with the *same exception twice* is deterministic and
  quarantines immediately;
* **graceful degradation** — quarantined cells no longer abort the
  plan; they are collected as :class:`CellFailure` records
  (``plan.failures``) for the CLI's ``FAILURES.json`` manifest while
  every healthy cell still completes;
* **pool supervision** — a ``BrokenProcessPool`` rebuilds the pool and
  redistributes the in-flight cells; a pool that cannot start at all
  degrades to the serial backend with a warning, a
  ``runner.pool_fallback`` counter, and a ``pool_fallback`` marker in
  each cell's :class:`~repro.telemetry.manifest.RunManifest`.

Without a policy the backends keep their historical strict contract:
the first failing cell raises :class:`CellExecutionError` (naming the
cell) and aborts the plan.

Every cell's report carries a :class:`~repro.metrics.report.RunMetadata`
and a :class:`~repro.telemetry.manifest.RunManifest`, so provenance
survives aggregation and export.  When a telemetry registry is active
(see :mod:`repro.telemetry`), cells are wrapped in ``runner.cell``
spans and the resilience layer emits ``runner.retries``,
``runner.quarantined``, ``runner.resumed_cells``,
``runner.cell_timeouts`` and ``runner.pool_rebuilds`` counters; pool
workers record into private registries whose snapshots ship back with
each batch and merge into the parent's.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing
import os
import random
import signal
import threading
import time
import traceback as traceback_module
import warnings
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.fetch.capability import engine_class, fallback_reason
from repro.harness.checkpoint import CellFailure, CheckpointJournal, cell_key
from repro.harness.config import ArchitectureConfig
from repro.metrics.report import RunMetadata, SimulationReport
from repro.telemetry import manifest as manifest_module
from repro.telemetry.core import Registry, get_registry, set_registry
from repro.testing import faults as faults_module
from repro.workloads.corpus import clear_cache, generate_trace, trace_key
from repro.workloads.trace import Trace


#: default warmup fraction — the first 30% of every trace trains the
#: structures without being counted (see FetchEngine.run)
DEFAULT_WARMUP = 0.30


#: observer events a plan execution can emit (see :func:`notify`)
OBSERVER_EVENTS = (
    "store-hit",
    "resumed",
    "completed",
    "quarantined",
)


#: an execution observer: ``observer(event, request, payload)`` where
#: *event* is one of :data:`OBSERVER_EVENTS`, and *payload* is the
#: cell's report (``store-hit``/``resumed``/``completed``) or its
#: :class:`~repro.harness.checkpoint.CellFailure` (``quarantined``)
PlanObserver = Callable[[str, "RunRequest", Any], None]


def notify(
    observer: Optional[PlanObserver],
    event: str,
    request: "RunRequest",
    payload: Any,
) -> None:
    """Deliver one observer event, swallowing observer exceptions.

    Observers are progress taps (the service layer streams them to
    clients); a broken observer must never take a running plan down
    with it, so delivery failures are contained here."""
    if observer is None:
        return
    try:
        observer(event, request, payload)
    except Exception:  # pragma: no cover - observer bugs stay contained
        pass


def validate_worker_count(value: Any) -> int:
    """Parse and validate a worker count, shared by the CLI and the
    service API.

    Accepts anything ``int()`` can parse; raises :class:`ValueError`
    with a clean one-line message for non-integers and negatives.
    ``0`` means "one worker per CPU" and is preserved verbatim —
    :func:`resolve_worker_count` turns it into a concrete count."""
    try:
        parsed = int(str(value))
    except (TypeError, ValueError):
        raise ValueError(
            f"expected an integer worker count, got {value!r}"
        ) from None
    if parsed < 0:
        raise ValueError(
            f"worker count must be >= 0 (0 = one per CPU), got {parsed}"
        )
    return parsed


def resolve_worker_count(
    value: Any, cpus: Optional[int] = None, warn: bool = True
) -> int:
    """Resolve a requested worker count to a concrete pool size.

    The one validated resolver both the CLI (``--jobs``) and the
    service share: *value* is validated by
    :func:`validate_worker_count`, ``0``/``None`` become one worker
    per CPU, and values above the CPU count clamp (with a
    ``RuntimeWarning`` unless *warn* is off)."""
    parsed = validate_worker_count(0 if value is None else value)
    available = cpus if cpus is not None else (os.cpu_count() or 1)
    if parsed == 0:
        return available
    if parsed > available:
        if warn:
            warnings.warn(
                f"worker count {parsed} exceeds the {available} available "
                f"CPU(s); clamping to {available}",
                RuntimeWarning,
                stacklevel=2,
            )
        return available
    return parsed


@dataclass(frozen=True)
class RunRequest:
    """One simulation cell: *config* applied to one generated trace.

    A request is a pure value — hashable (so plans can dedup it) and
    picklable (so process-pool workers can rebuild the engine on their
    side).  ``instructions``/``seed`` of ``None`` defer to the
    program profile's calibrated defaults, exactly as
    :func:`~repro.workloads.corpus.generate_trace` resolves them.
    """

    config: ArchitectureConfig
    program: str
    instructions: Optional[int] = None
    seed: Optional[int] = None
    layout: str = "natural"
    warmup: float = DEFAULT_WARMUP

    def resolved_trace_key(self):
        """Fully-resolved key of the trace this cell simulates (cells
        sharing it are batched onto the same pool worker)."""
        return trace_key(
            self.program,
            instructions=self.instructions,
            seed=self.seed,
            layout=self.layout,
        )


@dataclass(frozen=True)
class ExecutionPolicy:
    """Resilience knobs for one plan execution (DESIGN.md §12).

    ``max_retries`` counts *retries after the first attempt*: a cell
    quarantines once it has failed ``max_retries + 1`` times — or
    sooner, when the same exception repeats (deterministic failure).
    ``cell_timeout`` is enforced with ``SIGALRM`` inside whichever
    process executes the cell, so it works identically for the serial
    and process backends (and is skipped off the main thread, where
    POSIX signals cannot be delivered).
    """

    max_retries: int = 2
    cell_timeout: Optional[float] = None
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    #: jitter fraction added to each backoff (deterministic, seeded)
    jitter: float = 0.25
    seed: int = 0
    checkpoint_dir: Optional[str] = None
    resume: bool = False

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ValueError("cell_timeout must be positive")
        if self.resume and not self.checkpoint_dir:
            raise ValueError("resume requires a checkpoint_dir")

    def backoff_delay(self, key: str, attempts: int) -> float:
        """Exponential backoff with deterministic jitter for retry
        number *attempts* of the cell identified by *key*."""
        base = self.backoff_base_s * (2 ** max(attempts - 1, 0))
        capped = min(base, self.backoff_cap_s)
        rng = random.Random(f"{self.seed}:{key}:{attempts}")
        return capped * (1.0 + self.jitter * rng.random())


class CellExecutionError(RuntimeError):
    """A simulation cell failed inside an executor backend.

    Raised instead of the worker's bare pickled traceback so the error
    names the offending cell — config label, program and seed — which
    is what a sweep over hundreds of cells needs to be debuggable.
    Carries the cell identity and the original traceback text as
    attributes, and preserves them across pickling (process-pool
    results are pickled back to the parent).
    """

    def __init__(
        self,
        message: str,
        cell: str = "",
        program: str = "",
        error_type: str = "",
        traceback_text: str = "",
        attempts: int = 1,
    ) -> None:
        super().__init__(message)
        self.cell = cell
        self.program = program
        self.error_type = error_type
        self.traceback_text = traceback_text
        self.attempts = attempts

    def __reduce__(self):
        return (
            _rebuild_cell_error,
            (
                self.args[0] if self.args else "",
                self.cell,
                self.program,
                self.error_type,
                self.traceback_text,
                self.attempts,
            ),
        )


def _rebuild_cell_error(
    message: str,
    cell: str,
    program: str,
    error_type: str,
    traceback_text: str,
    attempts: int,
) -> CellExecutionError:
    """Unpickling constructor for :class:`CellExecutionError`."""
    return CellExecutionError(
        message,
        cell=cell,
        program=program,
        error_type=error_type,
        traceback_text=traceback_text,
        attempts=attempts,
    )


class CellTimeoutError(RuntimeError):
    """A cell overran its :class:`ExecutionPolicy` deadline."""


#: error-record types the classifier always treats as transient
TRANSIENT_ERROR_TYPES = frozenset(
    {"CellTimeoutError", "WorkerCrashError", "BrokenProcessPool"}
)


@contextmanager
def _deadline(seconds: Optional[float]) -> Iterator[None]:
    """Raise :class:`CellTimeoutError` in the current process after
    *seconds*.  SIGALRM-based, so it interrupts genuinely hung cells;
    silently a no-op without a deadline, off the main thread, or on
    platforms without ``SIGALRM``."""
    if (
        not seconds
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _expire(signum, frame):
        raise CellTimeoutError(f"cell exceeded its {seconds}s deadline")

    previous = signal.signal(signal.SIGALRM, _expire)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _error_record(exc: BaseException) -> Dict[str, Any]:
    """Picklable description of a cell failure (the retry currency)."""
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": "".join(
            traceback_module.format_exception(type(exc), exc, exc.__traceback__)
        ),
    }


def _is_transient(record: Dict[str, Any]) -> bool:
    return record.get("type") in TRANSIENT_ERROR_TYPES


def run_request(
    request: RunRequest,
    backend: str = "serial",
    manifest_extra: Optional[Dict[str, Any]] = None,
    context: Optional[Any] = None,
) -> SimulationReport:
    """Execute one cell: generate (or reuse) the trace, build a fresh
    engine from the picklable config, run, and stamp provenance.

    The cell is wrapped in a ``runner.cell`` telemetry span (a no-op
    unless a registry is active — see :mod:`repro.telemetry`), and the
    report carries both a :class:`RunMetadata` and a
    :class:`~repro.telemetry.manifest.RunManifest` (*manifest_extra*
    lands in the manifest's ``extra`` field, alongside the stamped
    ``engine`` that actually ran the cell, its ``engine_class`` when
    the fast engine ran it, and — when a ``fast`` config fell back to
    the reference loop — the machine-readable ``engine_fallback``
    reason).  *context* optionally shares a batch
    :class:`~repro.fetch.fast_engine.TraceReplayContext` with the
    engine; it never changes results, only reuses sub-replays."""
    registry = get_registry()
    config = request.config
    label = config.label()
    faults_module.fire("cell", program=request.program, config=label)
    with registry.span(
        "runner.cell", config=label, program=request.program, backend=backend
    ):
        trace = generate_trace(
            request.program,
            instructions=request.instructions,
            seed=request.seed,
            layout=request.layout,
        )
        started = time.perf_counter()
        cpu_started = time.process_time()
        engine = config.build()
        if context is not None and hasattr(engine, "attach_context"):
            engine.attach_context(context)
        report = engine.run(
            trace, label=label, warmup_fraction=request.warmup
        )
        wall = time.perf_counter() - started
        cpu = time.process_time() - cpu_started
    registry.counter("runner.cells").add()
    registry.histogram("runner.cell_wall_ms").observe(int(wall * 1000))
    meta = RunMetadata(
        config_label=label,
        program=request.program,
        instructions=request.instructions,
        seed=request.seed,
        layout=request.layout,
        warmup=request.warmup,
        backend=backend,
        wall_time_s=wall,
        pid=os.getpid(),
    )
    extra = dict(manifest_extra or {})
    extra["engine"] = getattr(engine, "engine_name", "reference")
    cell_class = getattr(engine, "engine_class", None)
    if cell_class is not None:
        extra["engine_class"] = cell_class.value
    fallback = getattr(engine, "engine_fallback", None)
    if fallback is not None:
        extra["engine_fallback"] = fallback
    manifest = manifest_module.collect(
        config_label=label,
        program=request.program,
        trace_key=request.resolved_trace_key(),
        wall_time_s=wall,
        cpu_time_s=cpu,
        extra=extra,
    )
    return replace(report, meta=meta, manifest=manifest)


def quarantined_report(request: RunRequest) -> SimulationReport:
    """Zero-metric placeholder standing in for a quarantined cell.

    Lets every renderer finish the sweep with the healthy cells while
    marking the hole: all counts are zero and the metadata backend is
    ``"quarantined"``, which exports carry through verbatim."""
    return SimulationReport(
        label=request.config.label(),
        program=request.program,
        n_instructions=0,
        n_breaks=0,
        misfetches=0,
        mispredicts=0,
        icache_accesses=0,
        icache_misses=0,
        penalties=request.config.penalties,
        meta=RunMetadata(
            config_label=request.config.label(),
            program=request.program,
            instructions=request.instructions,
            seed=request.seed,
            layout=request.layout,
            warmup=request.warmup,
            backend="quarantined",
        ),
    )


def _cell_error(request: RunRequest, exc: BaseException) -> CellExecutionError:
    """Wrap *exc* in an error naming the offending cell."""
    return _cell_error_from_record(request, _error_record(exc))


def _cell_error_from_record(
    request: RunRequest, record: Dict[str, Any], attempts: int = 1
) -> CellExecutionError:
    """Build the cell-naming error from a picklable failure record."""
    return CellExecutionError(
        f"simulation cell failed: config={request.config.label()!r} "
        f"program={request.program!r} seed={request.seed!r} "
        f"layout={request.layout!r}: {record['type']}: {record['message']}",
        cell=request.config.label(),
        program=request.program,
        error_type=record["type"],
        traceback_text=record.get("traceback", ""),
        attempts=attempts,
    )


# ---------------------------------------------------------------------------
# supervision bookkeeping (shared by both backends)
# ---------------------------------------------------------------------------


class _PlanSupervisor:
    """Per-execution retry/quarantine/journal bookkeeping.

    One instance supervises one plan execution; both backends drive it
    with :meth:`succeed` / :meth:`fail`, so the journal format, retry
    taxonomy and quarantine rules are identical everywhere.
    """

    def __init__(
        self,
        requests: Sequence[RunRequest],
        policy: ExecutionPolicy,
        strict: bool = False,
        observer: Optional[PlanObserver] = None,
    ) -> None:
        self.policy = policy
        self.strict = strict
        self.observer = observer
        self.registry = get_registry()
        self.results: Dict[RunRequest, SimulationReport] = {}
        self.failures: Dict[RunRequest, CellFailure] = {}
        self.attempts: Dict[RunRequest, int] = {}
        self._signatures: Dict[RunRequest, Tuple[str, str]] = {}
        self.journal = (
            CheckpointJournal(policy.checkpoint_dir)
            if policy.checkpoint_dir
            else None
        )
        self.pending: List[RunRequest] = list(requests)
        if self.journal is not None and policy.resume:
            replayed = self.journal.replay(self.pending)
            if replayed:
                self.results.update(replayed)
                self.registry.counter("runner.resumed_cells").add(len(replayed))
                for request, report in replayed.items():
                    notify(self.observer, "resumed", request, report)
                self.pending = [
                    request
                    for request in self.pending
                    if request not in self.results
                ]

    def succeed(self, request: RunRequest, report: SimulationReport) -> None:
        """Record one completed cell (journalled durably when on)."""
        self.results[request] = report
        if self.journal is not None:
            self.journal.append(request, report)
            self.registry.counter("runner.journal_appends").add()
        notify(self.observer, "completed", request, report)

    def fail(self, request: RunRequest, record: Dict[str, Any]) -> Optional[float]:
        """Record one failed attempt; returns the backoff delay for a
        retry, or ``None`` when the cell is now quarantined.

        Transient failures (deadline, dead worker, broken pool) retry
        until ``max_retries`` is exhausted.  Any other failure retries
        too — unless it repeats with the same type and message, which
        marks it deterministic and quarantines it on the spot.  In
        strict mode (no user policy) quarantine raises instead.
        """
        attempts = self.attempts.get(request, 0) + 1
        self.attempts[request] = attempts
        if record.get("type") == "CellTimeoutError":
            self.registry.counter("runner.cell_timeouts").add()
        signature = (record.get("type", ""), record.get("message", ""))
        repeated = (
            not _is_transient(record)
            and self._signatures.get(request) == signature
        )
        self._signatures[request] = signature
        if repeated or attempts > self.policy.max_retries:
            self._quarantine(request, record, attempts, repeated)
            return None
        self.registry.counter("runner.retries").add()
        return self.policy.backoff_delay(cell_key(request), attempts)

    def _quarantine(
        self,
        request: RunRequest,
        record: Dict[str, Any],
        attempts: int,
        repeated: bool,
    ) -> None:
        if self.strict:
            raise _cell_error_from_record(request, record, attempts=attempts)
        self.registry.counter("runner.quarantined").add()
        with self.registry.span(
            "runner.quarantine",
            config=request.config.label(),
            program=request.program,
            error=record.get("type", ""),
        ):
            pass
        failure = CellFailure(
            request=request,
            error_type=record.get("type", ""),
            message=record.get("message", ""),
            traceback=record.get("traceback", ""),
            attempts=attempts,
            kind="deterministic" if repeated else "exhausted",
        )
        self.failures[request] = failure
        notify(self.observer, "quarantined", request, failure)

    def finish(self) -> None:
        """Flush and release the journal handle."""
        if self.journal is not None:
            self.journal.close()


# ---------------------------------------------------------------------------
# backends
# ---------------------------------------------------------------------------

_ExecuteResult = Tuple[
    Dict[RunRequest, SimulationReport], Dict[RunRequest, CellFailure]
]


def _group_signature(request: RunRequest) -> str:
    """Batch-compatibility signature: how this cell will execute.

    Cells sharing a trace key *and* a signature run as one group over
    a shared :class:`~repro.fetch.fast_engine.TraceReplayContext`;
    ``reference`` cells (explicitly requested or fallback) group only
    for trace reuse."""
    config = request.config
    if config.engine != "fast":
        return "reference"
    return engine_class(config).value


def _shared_batch_context(batch: Sequence[RunRequest]):
    """One shared ``TraceReplayContext`` for the batch's fast cells.

    Returns ``None`` when no cell can use it.  The context wraps the
    memoised trace the cells will replay and pre-computes the stacked
    sort orders for same-family table variants
    (``TraceReplayContext.prepare``).  Purely a reuse vehicle — every
    cell's report stays byte-identical to a solo run."""
    fast = [
        request
        for request in batch
        if request.config.engine == "fast"
        and fallback_reason(request.config) is None
    ]
    if not fast:
        return None
    from repro.fetch.fast_engine import TraceReplayContext

    try:
        first = fast[0]
        trace = generate_trace(
            first.program,
            instructions=first.instructions,
            seed=first.seed,
            layout=first.layout,
        )
        context = TraceReplayContext(trace)
        context.prepare([request.config for request in fast])
    except Exception:
        # the context is purely a reuse vehicle: if the trace cannot
        # be generated (or a config is malformed) the cells run solo
        # and fail — or succeed — through run_request's own path
        return None
    return context


def _context_groups(
    requests: Sequence[RunRequest],
) -> List[List[RunRequest]]:
    """Group cells by (trace key, batch-compatibility signature) in
    first-seen order — the serial backend's unit of context sharing."""
    groups: Dict[tuple, List[RunRequest]] = {}
    for request in requests:
        key = (request.resolved_trace_key(), _group_signature(request))
        groups.setdefault(key, []).append(request)
    return list(groups.values())


def _execute_serial(
    requests: Sequence[RunRequest],
    jobs: Optional[int] = None,
    policy: Optional[ExecutionPolicy] = None,
    manifest_extra: Optional[Dict[str, Any]] = None,
    observer: Optional[PlanObserver] = None,
    cancel: Optional[Callable[[], bool]] = None,
) -> _ExecuteResult:
    """In-process backend: cells grouped by (trace, signature), each
    group sharing one batch context; insertion order within groups.

    Without a policy this is the historical strict loop — the first
    failure raises (unwrapped) and aborts.  With one, cells retry with
    backoff under the per-cell deadline and quarantine instead of
    aborting, journalling completions as they land.

    A *cancel* predicate is polled between cells: once it returns
    true, no further cell starts and the partial results are returned
    — cells neither completed nor quarantined are simply absent from
    both mappings (the cooperative-cancellation contract the service
    scheduler relies on)."""
    if policy is None:
        results: Dict[RunRequest, SimulationReport] = {}
        for group in _context_groups(requests):
            if cancel is not None and cancel():
                return results, {}
            context = _shared_batch_context(group)
            for request in group:
                if cancel is not None and cancel():
                    return results, {}
                results[request] = run_request(
                    request,
                    backend="serial",
                    manifest_extra=manifest_extra,
                    context=context,
                )
                notify(observer, "completed", request, results[request])
        return results, {}
    supervisor = _PlanSupervisor(requests, policy, observer=observer)
    cancelled = False
    try:
        for group in _context_groups(supervisor.pending):
            if cancelled:
                break
            context = _shared_batch_context(group)
            for request in group:
                if cancel is not None and cancel():
                    cancelled = True
                    break
                while True:
                    try:
                        with _deadline(policy.cell_timeout):
                            report = run_request(
                                request,
                                backend="serial",
                                manifest_extra=manifest_extra,
                                context=context,
                            )
                    except Exception as exc:
                        delay = supervisor.fail(request, _error_record(exc))
                        if delay is None:
                            break
                        if delay > 0:
                            time.sleep(delay)
                    else:
                        supervisor.succeed(request, report)
                        break
    finally:
        supervisor.finish()
    return supervisor.results, supervisor.failures


def _batches_by_trace(requests: Sequence[RunRequest]) -> List[List[RunRequest]]:
    """Group cells sharing a trace *and* a batch-compatibility
    signature, so a worker generates each trace once and replays a
    whole compatible group through one shared batch context.

    Batches are sorted by (fully resolved trace key, signature), so
    the pool sees an identical work order regardless of request order
    or ``PYTHONHASHSEED`` — batch assignment is reproducible run to
    run.
    """
    groups: Dict[tuple, List[RunRequest]] = {}
    for request in requests:
        key = (request.resolved_trace_key(), _group_signature(request))
        groups.setdefault(key, []).append(request)
    return [groups[key] for key in sorted(groups)]


def plan_shards(requests: Sequence[RunRequest]) -> List[Dict[str, Any]]:
    """Describe the (trace key, engine-class signature) shards a plan
    executes as — one entry per batch, in deterministic batch order.

    The service layer stamps this into job manifests so clients can
    see how their cells were grouped (and that batched kernel passes
    survived the service boundary); it is also what the scheduler
    reports as a job's shard count."""
    return [
        {
            "trace_key": list(batch[0].resolved_trace_key()),
            "signature": _group_signature(batch[0]),
            "cells": len(batch),
        }
        for batch in _batches_by_trace(requests)
    ]


def _worker_init(telemetry_enabled: bool = False) -> None:
    """Pool initialiser: start each worker with an empty, private
    trace corpus (nothing stale inherited across a fork) and — when
    the parent has telemetry on — a fresh per-worker registry whose
    snapshot ships back with every batch result."""
    clear_cache()
    if telemetry_enabled:
        set_registry(Registry(enabled=True))


#: one worker-side cell outcome: (request, "ok", report) or
#: (request, "error", error_record)
_Outcome = Tuple[RunRequest, str, Any]


def _run_batch_outcomes(
    batch: List[RunRequest], cell_timeout: Optional[float] = None
) -> Tuple[List[_Outcome], Optional[Dict[str, Any]]]:
    """Worker task: execute one same-trace batch of cells.

    Per-cell failures are captured as picklable error records instead
    of aborting the batch, so one poisoned cell cannot take its
    batch-mates' finished work with it.  Returns the outcomes plus the
    worker registry's telemetry snapshot *delta* for this batch
    (``None`` when telemetry is off).
    """
    outcomes: List[_Outcome] = []
    context = _shared_batch_context(batch)
    for request in batch:
        try:
            with _deadline(cell_timeout):
                report = run_request(
                    request, backend="process", context=context
                )
        except Exception as exc:
            outcomes.append((request, "error", _error_record(exc)))
        else:
            outcomes.append((request, "ok", report))
    registry = get_registry()
    if not registry.enabled:
        return outcomes, None
    snapshot = registry.snapshot()
    # ship only this batch's delta: replace the worker registry so the
    # parent can merge snapshots without double-counting
    set_registry(Registry(enabled=True))
    return outcomes, snapshot


def _run_batch(
    batch: List[RunRequest],
) -> Tuple[List[Tuple[RunRequest, SimulationReport]], Optional[Dict[str, Any]]]:
    """Strict batch wrapper: any failed cell raises
    :class:`CellExecutionError` naming the cell (the historical
    worker contract, still used directly by tests)."""
    outcomes, snapshot = _run_batch_outcomes(batch)
    pairs = []
    for request, status, payload in outcomes:
        if status == "error":
            raise _cell_error_from_record(request, payload)
        pairs.append((request, payload))
    return pairs, snapshot


#: exceptions that mean "the pool could not start at all"
_POOL_START_ERRORS = (OSError, PermissionError, ValueError, RuntimeError)


def _make_executor(workers: int, telemetry_enabled: bool) -> ProcessPoolExecutor:
    """Build the worker pool (separated out as the supervision /
    fallback seam — tests monkeypatch this to simulate pool loss)."""
    return ProcessPoolExecutor(
        max_workers=workers,
        mp_context=multiprocessing.get_context(),
        initializer=_worker_init,
        initargs=(telemetry_enabled,),
    )


def _terminate_executor(executor: Optional[ProcessPoolExecutor]) -> None:
    """Best-effort hard shutdown: cancel queued work and kill live
    workers so an interrupted run leaves no zombies behind."""
    if executor is None:
        return
    processes = list(getattr(executor, "_processes", {}).values())
    try:
        executor.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - shutdown is best-effort
        pass
    for process in processes:
        if process.is_alive():
            process.terminate()


def _serial_completion(
    supervisor: _PlanSupervisor, requests: Sequence[RunRequest]
) -> None:
    """Finish *requests* in-process under *supervisor* (the pool-loss
    degradation path), marking every manifest with ``pool_fallback``."""
    for request in requests:
        while True:
            try:
                with _deadline(supervisor.policy.cell_timeout):
                    report = run_request(
                        request,
                        backend="serial",
                        manifest_extra={"pool_fallback": True},
                    )
            except Exception as exc:
                delay = supervisor.fail(request, _error_record(exc))
                if delay is None:
                    break
                if delay > 0:
                    time.sleep(delay)
            else:
                supervisor.succeed(request, report)
                break


def _execute_process(
    requests: Sequence[RunRequest],
    jobs: Optional[int] = None,
    policy: Optional[ExecutionPolicy] = None,
    observer: Optional[PlanObserver] = None,
    cancel: Optional[Callable[[], bool]] = None,
) -> _ExecuteResult:
    """Multiprocessing backend: same-trace batches fan out to a
    supervised ``ProcessPoolExecutor``.

    A *cancel* predicate is polled each scheduling round: once true,
    queued batches are cancelled, pending retries dropped, and only
    outcomes already delivered by the pool are harvested — cancelled
    cells are absent from both result mappings (batch granularity:
    batches already on a worker run to completion).

    Worker telemetry snapshots are merged into the parent's active
    registry, so counter totals and per-cell spans are equivalent to a
    serial run.  A broken pool (killed worker) is rebuilt and its
    in-flight cells redistributed; a pool that cannot start at all
    degrades to the serial path with a warning and a
    ``runner.pool_fallback`` counter.  ``KeyboardInterrupt`` tears the
    pool down hard (no zombie workers) with the journal flushed.
    """
    if not requests:
        return {}, {}
    if jobs is None or jobs < 1:
        jobs = os.cpu_count() or 1
    strict = policy is None
    effective = ExecutionPolicy(max_retries=0) if strict else policy
    registry = get_registry()
    supervisor = _PlanSupervisor(
        requests, effective, strict=strict, observer=observer
    )
    if not supervisor.pending:
        supervisor.finish()
        return supervisor.results, supervisor.failures

    def _fallback(executor: Optional[ProcessPoolExecutor], exc: BaseException):
        warnings.warn(
            f"multiprocessing pool failed to start ({type(exc).__name__}: "
            f"{exc}); falling back to the serial backend",
            RuntimeWarning,
            stacklevel=3,
        )
        registry.counter("runner.pool_fallback").add()
        _terminate_executor(executor)
        remaining = [
            request
            for request in supervisor.pending
            if request not in supervisor.results
            and request not in supervisor.failures
        ]
        _serial_completion(supervisor, remaining)
        return supervisor.results, supervisor.failures

    batches = _batches_by_trace(supervisor.pending)
    workers = min(jobs, len(batches))
    executor: Optional[ProcessPoolExecutor] = None
    in_flight: Dict[Future, List[RunRequest]] = {}
    #: min-heap of (due_time, tiebreak, request) awaiting resubmission
    retry_heap: List[Tuple[float, int, RunRequest]] = []
    tiebreak = itertools.count()
    try:
        try:
            executor = _make_executor(workers, registry.enabled)
            for batch in batches:
                future = executor.submit(
                    _run_batch_outcomes, batch, effective.cell_timeout
                )
                in_flight[future] = list(batch)
        except _POOL_START_ERRORS as exc:
            return _fallback(executor, exc)

        def _schedule_retry(request: RunRequest, delay: float) -> None:
            heapq.heappush(
                retry_heap,
                (time.monotonic() + delay, next(tiebreak), request),
            )

        def _handle_outcomes(outcomes, snapshot) -> None:
            registry.merge(snapshot)
            for request, status, payload in outcomes:
                if status == "ok":
                    supervisor.succeed(request, payload)
                else:
                    delay = supervisor.fail(request, payload)
                    if delay is not None:
                        _schedule_retry(request, delay)

        def _rebuild_pool(broken: ProcessPoolExecutor) -> ProcessPoolExecutor:
            """Replace a broken pool, salvaging finished futures and
            redistributing the cells whose results were lost."""
            registry.counter("runner.pool_rebuilds").add()
            lost: List[RunRequest] = []
            for future, batch in in_flight.items():
                try:
                    outcomes, snapshot = future.result(timeout=0)
                except Exception:
                    lost.extend(batch)
                else:
                    _handle_outcomes(outcomes, snapshot)
            in_flight.clear()
            _terminate_executor(broken)
            for request in lost:
                delay = supervisor.fail(
                    request,
                    {
                        "type": "WorkerCrashError",
                        "message": (
                            "worker process died before delivering this "
                            "cell's result (broken process pool)"
                        ),
                        "traceback": "",
                    },
                )
                if delay is not None:
                    _schedule_retry(request, delay)
            return _make_executor(workers, registry.enabled)

        while in_flight or retry_heap:
            if cancel is not None and cancel():
                # drop queued work, drain batches already on a worker
                del retry_heap[:]
                for future in [f for f in in_flight if f.cancel()]:
                    in_flight.pop(future)
                for future in list(in_flight):
                    in_flight.pop(future)
                    try:
                        outcomes, snapshot = future.result()
                    except Exception:  # worker died mid-cancel: drop it
                        continue
                    _handle_outcomes(outcomes, snapshot)
                break
            now = time.monotonic()
            due: List[RunRequest] = []
            while retry_heap and retry_heap[0][0] <= now:
                due.append(heapq.heappop(retry_heap)[2])
            if due:
                submitted: set = set()
                try:
                    for batch in _batches_by_trace(due):
                        future = executor.submit(
                            _run_batch_outcomes, batch, effective.cell_timeout
                        )
                        in_flight[future] = list(batch)
                        submitted.update(batch)
                except BrokenProcessPool:
                    # cells that made it in are redistributed by the
                    # rebuild below; requeue only the ones that didn't
                    for request in due:
                        if request not in submitted:
                            _schedule_retry(request, 0.0)
                    executor = _rebuild_pool(executor)
                except _POOL_START_ERRORS as exc:
                    return _fallback(executor, exc)
                continue
            if not in_flight:
                # nothing running; sleep until the next retry is due
                time.sleep(
                    min(max(retry_heap[0][0] - now, 0.0), 0.05)
                )
                continue
            done, _ = wait(
                set(in_flight), timeout=0.1, return_when=FIRST_COMPLETED
            )
            broken = False
            for future in done:
                batch = in_flight.pop(future)
                try:
                    outcomes, snapshot = future.result()
                except BrokenProcessPool:
                    # every other in-flight future is doomed too;
                    # salvage and rebuild once for all of them
                    in_flight[future] = batch
                    broken = True
                    break
                except Exception as exc:
                    # result failed to unpickle / unexpected executor
                    # error: charge each cell of the batch one attempt
                    record = _error_record(exc)
                    for request in batch:
                        delay = supervisor.fail(request, record)
                        if delay is not None:
                            _schedule_retry(request, delay)
                else:
                    _handle_outcomes(outcomes, snapshot)
            if broken:
                executor = _rebuild_pool(executor)
    except KeyboardInterrupt:
        _terminate_executor(executor)
        executor = None
        raise
    finally:
        supervisor.finish()
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
    return supervisor.results, supervisor.failures


#: executor backends selectable via the CLI's ``--jobs`` flag
BACKENDS: Dict[str, Callable[..., _ExecuteResult]] = {
    "serial": _execute_serial,
    "process": _execute_process,
}


class RunPlan:
    """A deduplicating batch of simulation cells.

    Requests from any number of experiments are added; identical cells
    collapse to one execution whose report is shared by every
    requester.  ``requested``/``unique`` expose how much work dedup
    saved, and :meth:`execute` runs the unique cells through a named
    backend.  After a resilient execution (one with an
    :class:`ExecutionPolicy`), ``failures`` holds the quarantined
    cells' :class:`~repro.harness.checkpoint.CellFailure` records.
    """

    def __init__(self, requests: Iterable[RunRequest] = ()) -> None:
        self._order: List[RunRequest] = []
        self._seen: set = set()
        self.requested = 0
        self.failures: Dict[RunRequest, CellFailure] = {}
        #: cells served / executed by the last store-aware execution
        self.store_hits = 0
        self.store_misses = 0
        self.add_all(requests)

    def add(self, request: RunRequest) -> RunRequest:
        """Add one cell (deduplicated) and return it as its own key."""
        self.requested += 1
        if request not in self._seen:
            self._seen.add(request)
            self._order.append(request)
        return request

    def add_all(self, requests: Iterable[RunRequest]) -> None:
        """Add every cell of *requests* (deduplicated)."""
        for request in requests:
            self.add(request)

    @property
    def requests(self) -> Tuple[RunRequest, ...]:
        """The unique cells, in first-requested order."""
        return tuple(self._order)

    @property
    def unique(self) -> int:
        """Number of distinct cells that will actually execute."""
        return len(self._order)

    def execute(
        self,
        backend: str = "serial",
        jobs: Optional[int] = None,
        policy: Optional[ExecutionPolicy] = None,
        store: Optional[Any] = None,
        observer: Optional[PlanObserver] = None,
        cancel: Optional[Callable[[], bool]] = None,
    ) -> Dict[RunRequest, SimulationReport]:
        """Run every unique cell through *backend*; returns the full
        request → report mapping.

        With a *policy*, failing cells retry and quarantine instead of
        aborting: the mapping then omits quarantined cells, whose
        failure records land in ``self.failures``.

        With a *store* (any object with the
        :class:`~repro.service.store.ResultStore` ``fetch``/``put_many``
        contract), execution is **store-aware**: cells whose
        content key + trace key are already stored are served from it
        verbatim (no simulation, the stored report with its original
        provenance), only the misses execute through *backend*, and
        every freshly computed report is persisted for the next
        overlapping plan.  ``store_hits``/``store_misses`` record the
        split.  An *observer* receives per-cell progress events —
        see :data:`OBSERVER_EVENTS`.  A *cancel* predicate is polled
        between cells (serial) or scheduling rounds (process): once
        true, execution stops cooperatively and the mapping holds only
        the cells finished so far."""
        try:
            execute = BACKENDS[backend]
        except KeyError:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of "
                f"{tuple(sorted(BACKENDS))}"
            ) from None
        pending: List[RunRequest] = list(self._order)
        served: Dict[RunRequest, SimulationReport] = {}
        if store is not None:
            served = store.fetch(pending)
            for request, report in served.items():
                notify(observer, "store-hit", request, report)
            pending = [request for request in pending if request not in served]
        self.store_hits = len(served)
        self.store_misses = len(pending)
        results, failures = execute(
            pending, jobs, policy, observer=observer, cancel=cancel
        )
        if store is not None and results:
            store.put_many(results)
        self.failures = failures
        merged = dict(served)
        merged.update(results)
        return merged


# ---------------------------------------------------------------------------
# single-cell / single-grid conveniences (the historical API)
# ---------------------------------------------------------------------------


def run_config(
    config: ArchitectureConfig,
    trace: Trace,
    label: Optional[str] = None,
    warmup_fraction: float = DEFAULT_WARMUP,
) -> SimulationReport:
    """Simulate an already-generated *trace* under *config*."""
    engine = config.build()
    return engine.run(
        trace,
        label=label if label is not None else config.label(),
        warmup_fraction=warmup_fraction,
    )


def simulate(
    config: ArchitectureConfig,
    program: Union[str, Trace],
    instructions: Optional[int] = None,
    seed: Optional[int] = None,
    layout: str = "natural",
    warmup_fraction: float = DEFAULT_WARMUP,
) -> SimulationReport:
    """Simulate calibrated *program* (by name, or a prebuilt trace)
    under *config* and return the report."""
    if isinstance(program, Trace):
        return run_config(config, program, warmup_fraction=warmup_fraction)
    return run_request(
        RunRequest(
            config=config,
            program=program,
            instructions=instructions,
            seed=seed,
            layout=layout,
            warmup=warmup_fraction,
        )
    )


def sweep(
    configs: Sequence[ArchitectureConfig],
    programs: Iterable[str],
    instructions: Optional[int] = None,
    seed: Optional[int] = None,
    layout: str = "natural",
    warmup_fraction: float = DEFAULT_WARMUP,
    backend: str = "serial",
    jobs: Optional[int] = None,
    policy: Optional[ExecutionPolicy] = None,
) -> Dict[str, List[SimulationReport]]:
    """Simulate every config on every program.

    Returns ``{config_label: [report_per_program, ...]}`` with program
    order preserved.  The grid is executed as a deduplicated
    :class:`RunPlan`, so repeated configs cost nothing, and *backend*
    (with *jobs* workers) selects serial or parallel execution.  Under
    a resilience *policy*, quarantined cells are filled with
    :func:`quarantined_report` placeholders so the grid shape is
    always complete.
    """
    programs = list(programs)
    grid: Dict[str, List[RunRequest]] = {}
    plan = RunPlan()
    for config in configs:
        label = config.label()
        row = []
        for program in programs:
            row.append(
                plan.add(
                    RunRequest(
                        config=config,
                        program=program,
                        instructions=instructions,
                        seed=seed,
                        layout=layout,
                        warmup=warmup_fraction,
                    )
                )
            )
        grid[label] = row
    reports = plan.execute(backend=backend, jobs=jobs, policy=policy)
    for request in plan.failures:
        reports[request] = quarantined_report(request)
    return {
        label: [reports[request] for request in row]
        for label, row in grid.items()
    }

"""Command-line interface: regenerate any table/figure of the paper.

Examples::

    python -m repro.harness table1
    python -m repro.harness fig5 --instructions 500000
    python -m repro.harness all --out results/
    repro-harness fig7 --programs gcc cfront
"""

from __future__ import annotations

import argparse
import inspect
import os
import sys
import time
from typing import List, Optional

from repro.harness.experiments import EXPERIMENTS, ExperimentResult
from repro.workloads.profiles import paper_programs


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-harness",
        description=(
            "Regenerate the tables and figures of Calder & Grunwald, "
            "'Next Cache Line and Set Prediction' (ISCA 1995)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate ('all' runs everything)",
    )
    parser.add_argument(
        "--programs",
        nargs="+",
        choices=list(paper_programs()),
        default=None,
        help="restrict to a subset of the six programs",
    )
    parser.add_argument(
        "--instructions",
        type=int,
        default=None,
        help="trace length override (default: each profile's calibrated length)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="directory to write result files into",
    )
    parser.add_argument(
        "--formats",
        nargs="+",
        choices=("txt", "json", "csv"),
        default=("txt",),
        help="output formats for --out (default: txt)",
    )
    return parser


def _run_experiment(name: str, args: argparse.Namespace) -> ExperimentResult:
    function = EXPERIMENTS[name]
    kwargs = {}
    signature = inspect.signature(function)
    if "programs" in signature.parameters and args.programs is not None:
        kwargs["programs"] = args.programs
    if "instructions" in signature.parameters and args.instructions is not None:
        kwargs["instructions"] = args.instructions
    return function(**kwargs)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-harness`` / ``python -m repro.harness``."""
    args = _build_parser().parse_args(argv)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if args.out:
        os.makedirs(args.out, exist_ok=True)
    for name in names:
        started = time.time()
        result = _run_experiment(name, args)
        elapsed = time.time() - started
        print(f"=== {result.title} ===")
        print(result.text)
        print(f"[{name}: {elapsed:.1f}s]")
        print()
        if args.out:
            from repro.harness.export import write_result

            write_result(result, args.out, formats=tuple(args.formats))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

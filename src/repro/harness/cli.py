"""Command-line interface: regenerate any table/figure of the paper.

Examples::

    python -m repro.harness table1
    python -m repro.harness fig5 --instructions 500000
    python -m repro.harness list
    python -m repro.harness all --out results/ --jobs 4
    python -m repro.harness bench --smoke
    python -m repro.harness bench --gate BENCH_engine.json --tolerance 0.10
    python -m repro.harness attribute --smoke --attr-dir results/
    repro-harness fig7 --programs gcc cfront --telemetry run.ndjson
    python -m repro.harness fig5 --store results/store.sqlite --jobs 4
    python -m repro.harness serve --store results/store.sqlite --port 8787
    python -m repro.harness store stats --store results/store.sqlite
    python -m repro.harness store gc --store results/store.sqlite --gc-keep 500
    python -m repro.harness jobs list --store results/store.sqlite
    python -m repro.harness jobs cancel job-abc123 --store results/store.sqlite
    python -m repro.harness fig5 --seed 7 --out exports/seed7 --formats json
    python -m repro.harness analyze --exports exports/base exports/head --gate
    python -m repro.harness ingest --trace server.champsim.gz
    python -m repro.harness replay --trace trace.cbp --engine fast
    python -m repro.harness replay --programs server-frontend server-leaf

``list`` prints every registered experiment with its simulation cell
count (computed by materialising the plans — no simulation runs) and
the cross-experiment dedup total.  ``--jobs N`` selects the executor
backend: 1 (the default) is the in-process serial backend,
bit-identical to the historical behaviour; any other value pools the
requested experiments' cells into one deduplicated run plan and
executes it on the multiprocessing backend (0 = one worker per CPU).
``--engine fast`` swaps every cell onto the vectorised replay engine
(:mod:`repro.fetch.fast_engine`) — identical reports, several times
the throughput; unsupported configs silently fall back to the
reference loop with the reason stamped in the run manifest.

``bench`` runs the standardised engine-throughput and parallel-sweep
benchmarks (see :mod:`repro.telemetry.bench`), writes schema-versioned
``BENCH_engine.json`` / ``BENCH_sweep.json`` artifacts, and — with
``--gate BASELINE.json`` — exits non-zero when any throughput metric
regressed more than ``--tolerance`` below the baseline.

``attribute`` runs attribution-enabled cells (see DESIGN.md §11) and
renders per-cause / per-site penalty profiles: ``ATTRIBUTION.md``
(top-K hot-offender tables whose BEP column decomposes the report's
BEP exactly) and ``ATTRIBUTION.json`` under ``--attr-dir``.  It also
audits cause conservation and exits non-zero on any violation.

``--telemetry FILE`` enables the telemetry registry for the run and
writes the recorded counters, timers, histograms and spans to *FILE*
as NDJSON (one event per line — DESIGN.md §10 documents the schema);
``--chrome-trace FILE`` renders the same run's spans as Chrome
trace-event JSON for ``about:tracing`` / Perfetto.  Both flags share
one registry, so they compose with every subcommand.

The resilience flags (DESIGN.md §12) turn failures from fatal into
managed: ``--checkpoint-dir DIR`` journals every completed cell so
``--resume`` recomputes nothing after an abort; ``--max-retries`` and
``--cell-timeout`` bound each cell's attempts and wall time; a cell
that still fails is *quarantined* — the sweep finishes, a
``FAILURES.json`` manifest names the cell, and the exit status is
non-zero.  ``--faults FILE`` arms the deterministic fault-injection
plan in :mod:`repro.testing.faults` (used by the CI chaos-smoke job).

The service flags (docs/SERVICE.md) wire the harness to the
:mod:`repro.service` subsystem: ``--store PATH`` makes any experiment
run store-aware — cells already in the content-addressed result store
are served without simulation and fresh results are written back;
``serve`` starts the simulation service (async HTTP API + sharded job
queue, durable job registry, lease-based multi-replica recovery)
against that store — hardened via ``--keys`` / ``--rate`` /
``--max-queue`` / ``--max-inflight-jobs`` / ``--max-inflight-cells``
/ ``--read-timeout`` / ``--lease``; ``store stats`` / ``store gc`` /
``store verify`` administer the store itself, and ``jobs list`` /
``jobs cancel <id>`` administer the durable job registry (cancel
works offline — the owning replica polls the flag).

The analysis flags (docs/ANALYSIS.md) drive the cross-run reporting
layer: ``--seed N`` pins every cell's trace seed so repeated runs
produce independent seeded export sets, and ``analyze`` loads export
sets (``--exports DIR...``) and/or the result store, runs the
statistical baseline-vs-current comparison, renders the regression
dashboard (``--out`` / ``--format html|md``) and — with a bare
``--gate`` — exits non-zero on any significant regression.
"""

from __future__ import annotations

import argparse
import inspect
import os
import sys
import time
from typing import Callable, List, Optional

from repro.harness.config import ENGINES, FRONTENDS
from repro.harness.experiments import EXPERIMENTS, SPECS, ExperimentResult
from repro.harness.runner import (
    ExecutionPolicy,
    RunPlan,
    resolve_worker_count,
    validate_worker_count,
)
from repro.harness.spec import run_plans, with_engine, with_seed
from repro.harness.tables import format_seconds, format_table
from repro.telemetry.core import Registry, use
from repro.telemetry.sinks import write_chrome_trace, write_events
from repro.testing.faults import FAULTS_ENV_VAR
from repro.workloads.profiles import PROFILES, paper_programs


def _jobs_value(text: str) -> int:
    """``--jobs`` validator: a clean one-line error instead of a
    traceback for non-integers and negatives (0 stays 'one per CPU').

    Delegates to :func:`repro.harness.runner.validate_worker_count`,
    the same resolver the service applies to a job spec's ``jobs``
    field, so CLI and HTTP submissions reject identical inputs with
    identical messages."""
    try:
        return validate_worker_count(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _program_value(text: str) -> str:
    """``--programs`` validator: a registered profile name or an
    ingested ``external:<sha256>`` trace key (docs/TRACES.md)."""
    from repro.workloads.ingest import is_external

    if text in PROFILES or is_external(text):
        return text
    raise argparse.ArgumentTypeError(
        f"unknown program {text!r}: expected one of "
        f"{', '.join(sorted(PROFILES))}, or an ingested "
        f"'external:<sha256>' trace key (see 'ingest --trace FILE')"
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-harness",
        description=(
            "Regenerate the tables and figures of Calder & Grunwald, "
            "'Next Cache Line and Set Prediction' (ISCA 1995)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS)
        + [
            "all",
            "analyze",
            "attribute",
            "ingest",
            "jobs",
            "list",
            "bench",
            "serve",
            "store",
        ],
        help=(
            "which table/figure to regenerate ('all' runs everything, "
            "'list' shows the registry with per-experiment cell counts, "
            "'bench' runs the standardised benchmarks and writes "
            "BENCH_*.json artifacts, 'attribute' renders per-cause/"
            "per-site penalty profiles, 'analyze' renders the cross-run "
            "regression dashboard from export sets, 'ingest' imports "
            "external branch traces into the corpus (docs/TRACES.md), "
            "'serve' starts the simulation service HTTP API, 'store' "
            "administers the result store, 'jobs' administers the "
            "durable job registry)"
        ),
    )
    parser.add_argument(
        "subaction",
        nargs="?",
        default=None,
        help=(
            "'store': stats (default), gc, or verify — see the store "
            "options group; 'jobs': list (default) or cancel"
        ),
    )
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        help="'jobs cancel' only: the job id to cancel",
    )
    parser.add_argument(
        "--programs",
        nargs="+",
        type=_program_value,
        metavar="PROGRAM",
        default=None,
        help=(
            "restrict to a subset of workloads: any profile name "
            "(the six paper programs plus server-frontend/server-leaf) "
            "or an ingested 'external:<sha256>' trace key"
        ),
    )
    parser.add_argument(
        "--instructions",
        type=int,
        default=None,
        help="trace length override (default: each profile's calibrated length)",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="reference",
        help=(
            "simulation engine: 'reference' (the per-branch Python "
            "loop, default) or 'fast' (the vectorised replay — "
            "identical reports, several times the throughput; configs "
            "outside its supported matrix fall back to the reference "
            "engine, recorded in the run manifest)"
        ),
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="N",
        help=(
            "pin every simulation cell's trace seed to N (default: each "
            "profile's calibrated seed) — repeated runs with different "
            "seeds produce the independent seeded export sets 'analyze' "
            "compares"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=_jobs_value,
        default=1,
        help=(
            "worker processes: 1 = serial in-process (default), "
            "0 = one per CPU, N = a pool of N (both via the 'process' "
            "backend; values above the CPU count warn and clamp)"
        ),
    )
    parser.add_argument(
        "--out",
        default=None,
        help="directory to write result files into",
    )
    parser.add_argument(
        "--formats",
        nargs="+",
        choices=("txt", "json", "csv"),
        default=("txt",),
        help="output formats for --out (default: txt)",
    )
    parser.add_argument(
        "--telemetry",
        metavar="FILE",
        default=None,
        help=(
            "enable the telemetry registry for the run and write the "
            "recorded events to FILE as NDJSON (one event per line)"
        ),
    )
    parser.add_argument(
        "--chrome-trace",
        metavar="FILE",
        default=None,
        help=(
            "enable the telemetry registry for the run and write its "
            "spans to FILE as Chrome trace-event JSON "
            "(about:tracing / Perfetto)"
        ),
    )
    resilience = parser.add_argument_group(
        "resilience options (DESIGN.md §12)"
    )
    resilience.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help=(
            "journal every completed cell to DIR/journal.ndjson so an "
            "aborted sweep can be resumed"
        ),
    )
    resilience.add_argument(
        "--resume",
        action="store_true",
        help=(
            "replay completed cells from the checkpoint journal instead "
            "of recomputing them (requires --checkpoint-dir)"
        ),
    )
    resilience.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help=(
            "retries per cell before quarantine (default 2 once any "
            "resilience flag is active; deterministic failures — the "
            "same exception twice — quarantine immediately)"
        ),
    )
    resilience.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell deadline; an overrunning cell fails and retries",
    )
    resilience.add_argument(
        "--faults",
        metavar="FILE",
        default=None,
        help=(
            "arm the deterministic fault-injection plan in FILE "
            "(see repro.testing.faults; chaos testing only)"
        ),
    )
    bench = parser.add_argument_group("bench options")
    bench.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "bench/attribute: shrink every budget so the run finishes "
            "in seconds"
        ),
    )
    bench.add_argument(
        "--bench-dir",
        default=".",
        metavar="DIR",
        help="bench: directory for BENCH_*.json artifacts (default: cwd)",
    )
    bench.add_argument(
        "--gate",
        metavar="BASELINE.json",
        nargs="?",
        const="",
        default=None,
        help=(
            "bench: compare the fresh results against this baseline and "
            "exit non-zero on any throughput regression; analyze: bare "
            "flag — exit non-zero on any statistically significant "
            "regression in the verdict table"
        ),
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="bench --gate: allowed fractional slowdown (default: 0.10)",
    )
    service = parser.add_argument_group("service options (docs/SERVICE.md)")
    service.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help=(
            "content-addressed result store (SQLite): experiment runs "
            "serve cached cells from it and persist fresh results; "
            "'serve' and 'store' default to ./repro-store.sqlite when "
            "this flag is omitted"
        ),
    )
    service.add_argument(
        "--host",
        default="127.0.0.1",
        help="serve: interface to bind (default: 127.0.0.1)",
    )
    service.add_argument(
        "--port",
        type=int,
        default=8787,
        help="serve: TCP port to bind; 0 picks an ephemeral port "
        "(default: 8787)",
    )
    service.add_argument(
        "--concurrency",
        type=int,
        default=2,
        metavar="N",
        help="serve: scheduler threads running jobs in parallel "
        "(default: 2)",
    )
    service.add_argument(
        "--keys",
        metavar="KEYFILE",
        default=None,
        help="serve: require 'Authorization: Bearer <key>' on every "
        "/api/v1 request, validated against this repro-keys/v1 JSON "
        "keyfile (docs/SERVICE.md)",
    )
    service.add_argument(
        "--max-queue",
        type=int,
        default=None,
        metavar="N",
        help="serve: shed submissions with 429 + Retry-After once N "
        "jobs are queued (default: unbounded)",
    )
    service.add_argument(
        "--rate",
        type=float,
        default=None,
        metavar="R",
        help="serve: default per-client token-bucket refill, "
        "requests/second (default: unlimited)",
    )
    service.add_argument(
        "--burst",
        type=int,
        default=10,
        metavar="N",
        help="serve: token-bucket burst capacity (default: 10)",
    )
    service.add_argument(
        "--max-inflight-jobs",
        type=int,
        default=None,
        metavar="N",
        help="serve: per-client cap on jobs in flight (default: "
        "unlimited)",
    )
    service.add_argument(
        "--max-inflight-cells",
        type=int,
        default=None,
        metavar="N",
        help="serve: per-client cap on cells in flight (default: "
        "unlimited)",
    )
    service.add_argument(
        "--read-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="serve: per-request read deadline; slow requests get 408 "
        "(default: none)",
    )
    service.add_argument(
        "--lease",
        type=float,
        default=15.0,
        metavar="SECONDS",
        help="serve: job-lease duration — a replica silent this long "
        "forfeits its jobs to peers (default: 15)",
    )
    store_group = parser.add_argument_group("store options")
    store_group.add_argument(
        "--gc-max-age",
        type=float,
        default=None,
        metavar="SECONDS",
        help="store gc: drop entries neither written nor hit within "
        "SECONDS",
    )
    store_group.add_argument(
        "--gc-keep",
        type=int,
        default=None,
        metavar="N",
        help="store gc: after any age pruning, keep only the N most "
        "recently hit entries",
    )
    store_group.add_argument(
        "--fix",
        action="store_true",
        help="store verify: delete corrupt entries instead of only "
        "reporting them",
    )
    analyze = parser.add_argument_group("analyze options (docs/ANALYSIS.md)")
    analyze.add_argument(
        "--exports",
        nargs="+",
        metavar="DIR",
        default=None,
        help=(
            "analyze: export-set directories to load (each written by "
            "'--out DIR --formats json'; the EXPORTS.json manifest "
            "provides set-level provenance)"
        ),
    )
    analyze.add_argument(
        "--baseline",
        metavar="REF",
        default=None,
        help=(
            "analyze: which export set is the comparison baseline — a "
            "set label or one of the --exports directories (default: "
            "the first --exports directory)"
        ),
    )
    analyze.add_argument(
        "--format",
        choices=("html", "md"),
        default="html",
        help="analyze: dashboard format (default: html)",
    )
    analyze.add_argument(
        "--alpha",
        type=float,
        default=0.05,
        help=(
            "analyze: significance level for the BH-corrected verdicts "
            "(default: 0.05)"
        ),
    )
    analyze.add_argument(
        "--min-effect",
        type=float,
        default=0.005,
        metavar="FRACTION",
        help=(
            "analyze: relative differences at or below this fraction "
            "never gate, however significant (default: 0.005)"
        ),
    )
    ingest_group = parser.add_argument_group("ingest options (docs/TRACES.md)")
    ingest_group.add_argument(
        "--trace",
        action="append",
        metavar="FILE",
        default=None,
        help=(
            "external branch-trace file to ingest (repeatable; "
            "ChampSim-style binary or CBP-style text, gzip/xz "
            "transparent).  With 'ingest' the file is imported and its "
            "'external:<sha256>' key printed; with an experiment, the "
            "ingested trace joins that experiment's --programs roster"
        ),
    )
    ingest_group.add_argument(
        "--trace-format",
        choices=("auto", "champsim", "cbp"),
        default="auto",
        help=(
            "format of the --trace files (default: auto — sniffed from "
            "the decompressed magic bytes, never from the file name)"
        ),
    )
    ingest_group.add_argument(
        "--trace-dir",
        metavar="DIR",
        default=None,
        help=(
            "external-trace store directory (default: "
            "$REPRO_EXTERNAL_TRACE_DIR or ./external-traces)"
        ),
    )
    attribute = parser.add_argument_group("attribute options")
    attribute.add_argument(
        "--frontends",
        nargs="+",
        choices=FRONTENDS,
        default=("nls-table", "btb"),
        help="attribute: front-ends to profile (default: nls-table btb)",
    )
    attribute.add_argument(
        "--top",
        type=int,
        default=10,
        help="attribute: hot-offender sites to rank (default: 10)",
    )
    attribute.add_argument(
        "--attr-sample",
        type=int,
        default=64,
        help=(
            "attribute: keep every Nth penalty event in the sampled "
            "ring (default: 64)"
        ),
    )
    attribute.add_argument(
        "--attr-dir",
        default=".",
        metavar="DIR",
        help=(
            "attribute: directory for ATTRIBUTION.md / ATTRIBUTION.json "
            "(default: cwd)"
        ),
    )
    return parser


def _experiment_kwargs(function, args: argparse.Namespace) -> dict:
    """CLI overrides accepted by *function* (driver or plan builder)."""
    kwargs = {}
    signature = inspect.signature(function)
    if "programs" in signature.parameters and args.programs is not None:
        kwargs["programs"] = args.programs
    if "instructions" in signature.parameters and args.instructions is not None:
        kwargs["instructions"] = args.instructions
    return kwargs


def _run_experiment(name: str, args: argparse.Namespace) -> ExperimentResult:
    function = EXPERIMENTS[name]
    return function(**_experiment_kwargs(function, args))


def _list_experiments(args: argparse.Namespace) -> int:
    """``list`` subcommand: registry with cell counts and dedup totals."""
    pooled = RunPlan()
    rows = []
    for name in sorted(SPECS):
        spec = SPECS[name]
        plan = spec.plan(**_experiment_kwargs(spec.build, args))
        pooled.add_all(plan.cells)
        rows.append((name, len(plan.cells), spec.summary))
    print(format_table(["experiment", "cells", "summary"], rows))
    print()
    print(
        f"{len(rows)} experiments; {pooled.requested} simulation cells "
        f"requested, {pooled.unique} unique after cross-experiment dedup "
        f"({pooled.requested - pooled.unique} shared)."
    )
    return 0


def _write(result: ExperimentResult, args: argparse.Namespace) -> None:
    if args.out:
        from repro.harness.export import write_result

        write_result(result, args.out, formats=tuple(args.formats))


def _write_export_manifest(names: List[str], args: argparse.Namespace) -> None:
    """Stamp the ``--out`` directory's ``EXPORTS.json`` set manifest
    (experiments + seed/engine/git provenance) after a run's exports,
    making the directory a self-describing ``analyze`` export set."""
    if not args.out:
        return
    from repro.harness.export import write_export_manifest

    path = write_export_manifest(
        args.out,
        names,
        seed=args.seed,
        engine=args.engine,
        instructions=args.instructions,
        programs=args.programs,
    )
    print(f"[export manifest -> {path}]")


def _run_bench(args: argparse.Namespace) -> int:
    """``bench`` subcommand: run the standardised benchmarks, write
    the ``BENCH_*.json`` artifacts, optionally gate against a baseline."""
    from repro.telemetry import bench as bench_module

    jobs = args.jobs if args.jobs > 1 else None
    suite = bench_module.run_bench_suite(smoke=args.smoke, jobs=jobs)
    for kind, filename in (
        ("engine", bench_module.ENGINE_BENCH_FILE),
        ("sweep", bench_module.SWEEP_BENCH_FILE),
    ):
        payload = suite[kind]
        path = bench_module.write_bench(
            payload, os.path.join(args.bench_dir, filename)
        )
        print(f"=== bench {kind} -> {path} ===")
        for label in sorted(payload["results"]):
            metrics = payload["results"][label]
            rendered = " ".join(
                f"{metric}={metrics[metric]:,.1f}" for metric in sorted(metrics)
            )
            print(f"  {label:<12} {rendered}")
    history_path = bench_module.append_history(suite, args.bench_dir)
    print(f"[bench history: {len(suite)} entr(ies) appended -> {history_path}]")
    if args.gate:
        baseline = bench_module.load_bench(args.gate)
        kind = baseline.get("kind", "engine")
        current = suite.get(kind)
        if current is None:
            print(f"gate: baseline kind {kind!r} has no current counterpart")
            return 1
        violations = bench_module.gate(
            current, baseline, tolerance=args.tolerance
        )
        if violations:
            print(
                f"gate FAILED against {args.gate} "
                f"(tolerance {args.tolerance:.0%}):"
            )
            for violation in violations:
                print(f"  REGRESSION {violation}")
            return 1
        print(f"gate passed against {args.gate} (tolerance {args.tolerance:.0%})")
    return 0


def _analysis_set_for_directory(frame, directory: str) -> Optional[str]:
    """The set label *directory*'s rows were loaded under (``None``
    when the directory contributed no rows to *frame*)."""
    target = os.path.normpath(directory)
    for row in frame.rows:
        source = row.get("source") or ""
        if source and os.path.normpath(os.path.dirname(source)) == target:
            return row["set"]
    return None


def _run_analyze(args: argparse.Namespace) -> int:
    """``analyze`` subcommand: the cross-run regression dashboard.

    Loads the requested export sets (and/or the result store) into one
    tidy :class:`~repro.analysis.results.ResultFrame`, runs the
    baseline-vs-current statistical comparison, renders the dashboard
    into ``--out`` and — with a bare ``--gate`` — exits non-zero when
    any metric's verdict is *regressed* (docs/ANALYSIS.md)."""
    from repro.analysis.rendering import render_dashboard
    from repro.analysis.results import (
        find_bench_history,
        load_bench_history,
        load_export_sets,
        load_store,
    )
    from repro.analysis.stat_tests import compare
    from repro.analysis.stat_tests import gate as verdict_gate

    directories = list(args.exports or [])
    frame = load_export_sets(directories)
    if args.store is not None:
        if not os.path.exists(args.store):
            print(f"analyze: store {args.store} does not exist")
            return 2
        frame.extend(load_store(args.store))
    # sets in load order: --exports order, then the store label
    ordered: List[str] = []
    for row in frame.rows:
        if row["set"] not in ordered:
            ordered.append(row["set"])
    if len(ordered) < 2:
        print(
            f"analyze: need at least two result sets to compare, got "
            f"{len(ordered)} ({', '.join(ordered) or 'none'}) — pass two "
            f"--exports directories (each written with --formats json)"
        )
        return 2
    if args.baseline is None:
        baseline = ordered[0]
    elif args.baseline in ordered:
        baseline = args.baseline
    else:
        resolved = _analysis_set_for_directory(frame, args.baseline)
        if resolved is None:
            print(
                f"analyze: --baseline {args.baseline!r} matches no set "
                f"label or --exports directory (sets: {', '.join(ordered)})"
            )
            return 2
        baseline = resolved
    current = [label for label in ordered if label != baseline][-1]
    verdicts = compare(
        frame,
        baseline,
        current,
        alpha=args.alpha,
        min_rel_effect=args.min_effect,
    )
    history_path = find_bench_history(directories)
    history = load_bench_history(history_path) if history_path else None
    out_dir = args.out or "analysis-report"
    written = render_dashboard(
        frame,
        verdicts,
        out_dir,
        fmt=args.format,
        bench_history=history,
    )
    counts = verdicts["counts"]
    print(
        f"analyze: {len(frame)} rows across {len(ordered)} set(s); "
        f"{baseline!r} vs {current!r}: "
        + ", ".join(f"{counts[key]} {key}" for key in sorted(counts))
    )
    for path in written:
        print(f"  -> {path}")
    if args.gate is not None:
        violations = verdict_gate(verdicts)
        if violations:
            print(f"gate FAILED (alpha {args.alpha:g}):")
            for violation in violations:
                print(f"  REGRESSION {violation}")
            return 1
        print(f"gate passed (alpha {args.alpha:g})")
    return 0


def _build_policy(args: argparse.Namespace) -> Optional[ExecutionPolicy]:
    """The run's :class:`ExecutionPolicy`, or ``None`` when no
    resilience flag is active (bit-identical legacy behaviour)."""
    active = (
        args.checkpoint_dir is not None
        or args.resume
        or args.max_retries is not None
        or args.cell_timeout is not None
        or args.faults is not None
    )
    if not active:
        return None
    return ExecutionPolicy(
        max_retries=2 if args.max_retries is None else args.max_retries,
        cell_timeout=args.cell_timeout,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
    )


def _report_failures(plan: RunPlan, args: argparse.Namespace) -> int:
    """Write ``FAILURES.json`` and print the quarantine summary;
    returns the process exit status (non-zero when cells failed)."""
    if not plan.failures:
        return 0
    from repro.harness.export import write_failures

    directory = args.checkpoint_dir or args.out or "."
    path = write_failures(directory, plan.failures.values())
    print(f"QUARANTINED {len(plan.failures)} cell(s); manifest -> {path}")
    for failure in plan.failures.values():
        request = failure.request
        print(
            f"  {request.config.label()} / {request.program}: "
            f"{failure.error_type}: {failure.message} "
            f"[{failure.kind} after {failure.attempts} attempt(s)]"
        )
    return 1


def _run_attribute(args: argparse.Namespace) -> int:
    """``attribute`` subcommand: run attribution-enabled cells, render
    the per-cause / per-site profiles, audit conservation."""
    from repro.analysis import attribution as analysis_module
    from repro.harness.config import ArchitectureConfig
    from repro.harness.runner import RunRequest

    programs = list(
        args.programs
        if args.programs is not None
        else (("li", "espresso") if args.smoke else paper_programs())
    )
    instructions = args.instructions
    if instructions is None and args.smoke:
        instructions = 50_000
    plan = RunPlan(
        RunRequest(
            config=ArchitectureConfig(
                frontend=frontend,
                attribution=True,
                attribution_sample=args.attr_sample,
                engine=args.engine,
            ),
            program=program,
            instructions=instructions,
        )
        for frontend in args.frontends
        for program in programs
    )
    backend = "serial" if args.jobs == 1 else "process"
    jobs = None if args.jobs < 1 else args.jobs
    reports = plan.execute(backend=backend, jobs=jobs, policy=_build_policy(args))
    profiles = []
    violations: List[str] = []
    for request in plan.requests:
        if request in plan.failures:
            continue  # quarantined cells are reported separately
        report = reports[request]
        violations.extend(
            f"{report.label} / {report.program}: {error}"
            for error in analysis_module.conservation_errors(report)
        )
        profiles.append(analysis_module.fold_attribution(report, top_k=args.top))
    markdown = analysis_module.render_markdown(profiles)
    print(markdown)
    os.makedirs(args.attr_dir, exist_ok=True)
    markdown_path = os.path.join(args.attr_dir, "ATTRIBUTION.md")
    with open(markdown_path, "w", encoding="utf-8") as handle:
        handle.write(markdown)
    payload_path = os.path.join(args.attr_dir, "ATTRIBUTION.json")
    analysis_module.write_payload(payload_path, profiles)
    print(
        f"[attribute: {len(profiles)} profiles -> "
        f"{markdown_path}, {payload_path}]"
    )
    failure_status = _report_failures(plan, args)
    if violations:
        print("attribution conservation FAILED:")
        for violation in violations:
            print(f"  {violation}")
        return 1
    return failure_status


def _ingest_traces(args: argparse.Namespace) -> List[str]:
    """Ingest every ``--trace`` file into the external-trace store.

    Returns the ``external:<sha256>`` corpus keys in ``--trace``
    order.  Raises ``SystemExit(2)`` with a one-line actionable error
    — never a traceback — when a file is unreadable, malformed, or in
    an unsupported format (the docs/TRACES.md error contract).
    """
    from repro.workloads.formats import TraceFormatError
    from repro.workloads.ingest import (
        external_trace_dir,
        ingest_and_store,
    )
    from repro.workloads.stats import footprint

    names: List[str] = []
    for path in args.trace:
        try:
            trace, name = ingest_and_store(
                path, fmt=args.trace_format, directory=args.trace_dir
            )
        except TraceFormatError as exc:
            print(f"ingest: {exc}")
            raise SystemExit(2) from None
        except OSError as exc:
            reason = exc.strerror or str(exc)
            print(
                f"ingest: cannot read {path}: {reason} — check the path "
                f"and permissions"
            )
            raise SystemExit(2) from None
        except ValueError as exc:
            print(f"ingest: {path}: {exc}")
            raise SystemExit(2) from None
        fp = footprint(trace)
        print(
            f"ingested {path} -> {name}\n"
            f"  {trace.n_events:,} events, {trace.n_instructions:,} "
            f"instructions, {fp.code_bytes_touched / 1024:.0f} KB code "
            f"touched, {fp.distinct_branch_sites:,} branch sites\n"
            f"  stored in {external_trace_dir(args.trace_dir)}/"
        )
        names.append(name)
    return names


def _check_external_programs(args: argparse.Namespace) -> None:
    """Fail fast on unusable ``external:`` program keys.

    A malformed key or one missing from the external-trace store
    would otherwise surface as a traceback from deep inside a sweep;
    checking here keeps the docs/TRACES.md one-line error contract.
    Raises ``SystemExit(2)``."""
    from repro.workloads.ingest import (
        EXTERNAL_DIR_ENV_VAR,
        external_trace_path,
        is_external,
    )

    for name in args.programs or ():
        if not is_external(name):
            continue
        try:
            path = external_trace_path(name, args.trace_dir)
        except ValueError as exc:
            print(f"ingest: {exc}")
            raise SystemExit(2) from None
        if not os.path.exists(path):
            print(
                f"ingest: no stored trace for {name} (expected "
                f"{path}); ingest it with 'python -m repro.harness "
                f"ingest --trace FILE' or point {EXTERNAL_DIR_ENV_VAR} "
                f"at the store that has it"
            )
            raise SystemExit(2)


def _run_ingest(args: argparse.Namespace) -> int:
    """``ingest`` subcommand: import external traces into the corpus.

    Each ``--trace`` file is parsed, normalised, digest-named and
    stored; the printed ``external:<sha256>`` keys are accepted
    anywhere a program name is — ``--programs``, service job specs,
    ``replay`` cells (docs/TRACES.md)."""
    names = _ingest_traces(args)
    print(
        f"\n{len(names)} trace(s) ready; replay with\n"
        f"  python -m repro.harness replay --programs "
        + " ".join(names)
    )
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    """``serve`` subcommand: start the simulation service HTTP API.

    Builds the result store (plus its durable job registry), a
    :class:`~repro.service.scheduler.JobScheduler` honouring the
    shared ``--jobs`` / resilience flags, and the admission layer when
    any of ``--keys`` / ``--rate`` / ``--max-queue`` /
    ``--max-inflight-*`` is given, then blocks serving HTTP until
    interrupted (docs/SERVICE.md).  SIGTERM drains gracefully —
    running jobs return to the registry for any replica to finish."""
    from repro.service.admission import (
        AdmissionController,
        ClientQuota,
        Keyring,
    )
    from repro.service.api import serve
    from repro.service.scheduler import JobScheduler
    from repro.service.store import DEFAULT_STORE_NAME, ResultStore
    from repro.telemetry.core import get_registry, set_registry

    if not get_registry().enabled:
        # /metrics scrapes the active registry; without an enabled one
        # every counter would read as a permanent zero
        set_registry(Registry(enabled=True))
    store = ResultStore(args.store or DEFAULT_STORE_NAME)
    backend = "serial" if args.jobs == 1 else "process"
    jobs = None if args.jobs < 1 else args.jobs
    admission = None
    gated = (
        args.keys is not None
        or args.max_queue is not None
        or args.rate is not None
        or args.max_inflight_jobs is not None
        or args.max_inflight_cells is not None
    )
    if gated:
        keyring = None
        if args.keys is not None:
            try:
                keyring = Keyring.load(args.keys)
            except (OSError, ValueError, KeyError) as exc:
                print(f"serve: cannot load --keys {args.keys}: {exc}")
                return 2
        admission = AdmissionController(
            keyring=keyring,
            default_quota=ClientQuota(
                rate=args.rate,
                burst=args.burst,
                max_jobs=args.max_inflight_jobs,
                max_cells=args.max_inflight_cells,
            ),
            max_queue=args.max_queue,
        )
    scheduler = JobScheduler(
        store,
        backend=backend,
        jobs=jobs,
        concurrency=max(1, args.concurrency),
        policy=_build_policy(args),
        admission=admission,
        lease_s=args.lease,
    )
    print(f"result store: {store.path}", flush=True)
    print(f"replica: {scheduler.owner}", flush=True)
    try:
        serve(
            scheduler,
            host=args.host,
            port=args.port,
            read_timeout=args.read_timeout,
        )
    finally:
        store.close()
    return 0


def _run_jobs(args: argparse.Namespace) -> int:
    """``jobs`` subcommand: administer the durable job registry.

    ``list`` tabulates every registry row (any replica's — the
    registry lives in the shared store file); ``cancel <job-id>`` sets
    the durable cancel flag, which the owning replica's scheduler
    polls between cells.  Both work against the store file directly,
    with no running service required."""
    from repro.service.registry import JobRegistry
    from repro.service.store import DEFAULT_STORE_NAME

    path = args.store or DEFAULT_STORE_NAME
    if not os.path.exists(path):
        print(f"store {path} does not exist")
        return 1
    registry = JobRegistry(path)
    try:
        if args.subaction == "cancel":
            if registry.request_cancel(args.target):
                print(f"cancel requested for {args.target}")
                return 0
            row = registry.get(args.target)
            if row is None:
                print(f"unknown job {args.target!r}")
            else:
                print(f"job {args.target} is already {row['state']}")
            return 1
        rows = [
            (
                row["job_id"],
                row["state"] + ("*" if row["cancel_requested"] else ""),
                row["name"],
                str(row["cells"]),
                str(row["events"]),
                row["owner"] or "-",
                row["client"] or "-",
            )
            for row in registry.list_jobs()
        ]
        if not rows:
            print("no jobs in the registry")
            return 0
        print(
            format_table(
                ["job", "state", "name", "cells", "events", "owner", "client"],
                rows,
            )
        )
        return 0
    finally:
        registry.close()


def _run_store(args: argparse.Namespace) -> int:
    """``store`` subcommand: administer the result store.

    ``stats`` prints the store statistics, ``gc`` prunes by age and/or
    count (``--gc-max-age`` / ``--gc-keep``), ``verify`` re-checksums
    every payload (``--fix`` deletes corrupt rows) and exits non-zero
    when corruption was found and left in place."""
    from repro.service.store import DEFAULT_STORE_NAME, ResultStore

    path = args.store or DEFAULT_STORE_NAME
    if not os.path.exists(path) and args.subaction != "stats":
        print(f"store {path} does not exist")
        return 1
    store = ResultStore(path)
    try:
        if args.subaction == "stats":
            stats = store.stats()
            rows = [
                (key, str(stats[key]))
                for key in (
                    "path",
                    "entries",
                    "total_hits",
                    "payload_bytes",
                    "db_bytes",
                    "programs",
                    "configs",
                )
            ]
            print(format_table(["statistic", "value"], rows))
            return 0
        if args.subaction == "gc":
            outcome = store.gc(max_age_s=args.gc_max_age, keep=args.gc_keep)
            print(
                f"store gc: removed {outcome['removed']} entr(ies), "
                f"{outcome['kept']} kept"
            )
            return 0
        outcome = store.verify(fix=args.fix)
        status = "OK" if not outcome["corrupt"] else "FAILED"
        print(
            f"store verify {status}: {outcome['checked']} entr(ies) "
            f"checked, {len(outcome['corrupt'])} corrupt, "
            f"{outcome['removed']} removed"
        )
        for entry in outcome["corrupt"]:
            print(
                f"  CORRUPT cell={entry['cell_key']} "
                f"reason={entry.get('reason', 'checksum-mismatch')}"
            )
        return 0 if outcome["ok"] or args.fix else 1
    finally:
        store.close()


def _with_telemetry(
    args: argparse.Namespace, body: Callable[[argparse.Namespace], int]
) -> int:
    """Shared ``--telemetry`` / ``--chrome-trace`` wiring: when either
    flag is set, run *body* under one enabled registry and dump the
    recorded events to the requested sinks; otherwise run *body* bare.
    Every subcommand (experiments, ``bench``, ``attribute``) goes
    through here, so the flags compose uniformly."""
    if not args.telemetry and not args.chrome_trace:
        return body(args)
    registry = Registry(enabled=True)
    with use(registry):
        status = body(args)
    events = list(registry.events())
    if args.telemetry:
        count = write_events(args.telemetry, events)
        print(f"[telemetry: {count} events -> {args.telemetry}]")
    if args.chrome_trace:
        count = write_chrome_trace(args.chrome_trace, events)
        print(f"[chrome-trace: {count} spans -> {args.chrome_trace}]")
    return status


def _validate_args(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> None:
    """Cross-flag validation: one-line errors, never a traceback."""
    if args.resume and args.checkpoint_dir is None:
        parser.error("--resume requires --checkpoint-dir")
    if args.faults is not None and not os.path.exists(args.faults):
        parser.error(f"--faults plan file not found: {args.faults}")
    if args.max_retries is not None and args.max_retries < 0:
        parser.error(f"--max-retries must be >= 0, got {args.max_retries}")
    if args.cell_timeout is not None and args.cell_timeout <= 0:
        parser.error(
            f"--cell-timeout must be positive, got {args.cell_timeout}"
        )
    if args.experiment == "bench" and args.gate == "":
        parser.error("bench --gate requires a BASELINE.json path")
    if args.experiment == "analyze":
        if args.gate:
            parser.error(
                "analyze --gate is a bare flag (the statistical verdicts "
                "are the baseline; use --baseline to pick the reference set)"
            )
        if not args.exports and args.store is None:
            parser.error("analyze requires --exports DIR... and/or --store")
    if args.experiment == "ingest" and not args.trace:
        parser.error("ingest requires at least one --trace FILE")
    if args.experiment == "store":
        if args.subaction is None:
            args.subaction = "stats"
        if args.subaction not in ("stats", "gc", "verify"):
            parser.error(
                f"store action must be stats, gc or verify, "
                f"got {args.subaction!r}"
            )
    elif args.experiment == "jobs":
        if args.subaction is None:
            args.subaction = "list"
        if args.subaction not in ("list", "cancel"):
            parser.error(
                f"jobs action must be list or cancel, got {args.subaction!r}"
            )
        if args.subaction == "cancel" and args.target is None:
            parser.error("jobs cancel requires a job id")
        if args.subaction == "list" and args.target is not None:
            parser.error("jobs list takes no job id")
    elif args.subaction is not None:
        parser.error(
            f"{args.experiment!r} takes no sub-action "
            f"(got {args.subaction!r})"
        )
    if args.experiment not in ("jobs",) and args.target is not None:
        parser.error(
            f"{args.experiment!r} takes no target (got {args.target!r})"
        )
    # remember what was asked for: a --jobs 2 clamped to 1 on a 1-CPU
    # box must still take the pooled (deduplicating) path
    args.requested_jobs = args.jobs
    if args.jobs > 0:
        # shared resolver with the service (warns + clamps above the
        # CPU count); 0 stays 0 = "one worker per CPU" downstream
        args.jobs = resolve_worker_count(args.jobs)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-harness`` / ``python -m repro.harness``."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    _validate_args(parser, args)
    previous_faults = os.environ.get(FAULTS_ENV_VAR)
    if args.faults is not None:
        # arm the plan via the environment *before* any pool spawns so
        # forked workers inherit it (repro.testing.faults.active_plan)
        os.environ[FAULTS_ENV_VAR] = args.faults
    try:
        return _with_telemetry(args, _dispatch)
    finally:
        if args.faults is not None:
            if previous_faults is None:
                os.environ.pop(FAULTS_ENV_VAR, None)
            else:  # pragma: no cover - nested arming is test-only
                os.environ[FAULTS_ENV_VAR] = previous_faults


def _dispatch(args: argparse.Namespace) -> int:
    """Route the parsed arguments to the right subcommand body."""
    if args.trace_dir is not None:
        # corpus resolution (and forked pool workers) find the store
        # through the environment, so an explicit --trace-dir must be
        # exported before any cell runs
        from repro.workloads.ingest import EXTERNAL_DIR_ENV_VAR

        os.environ[EXTERNAL_DIR_ENV_VAR] = args.trace_dir
    if args.experiment == "ingest":
        return _run_ingest(args)
    if args.trace:
        # --trace alongside an experiment: ingest first, then run the
        # experiment with the ingested keys joining the roster
        names = _ingest_traces(args)
        args.programs = (args.programs or []) + names
    _check_external_programs(args)
    if args.experiment == "list":
        return _list_experiments(args)
    if args.experiment == "bench":
        return _run_bench(args)
    if args.experiment == "analyze":
        return _run_analyze(args)
    if args.experiment == "attribute":
        return _run_attribute(args)
    if args.experiment == "serve":
        return _run_serve(args)
    if args.experiment == "store":
        return _run_store(args)
    if args.experiment == "jobs":
        return _run_jobs(args)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if args.out:
        os.makedirs(args.out, exist_ok=True)
    policy = _build_policy(args)
    if (
        getattr(args, "requested_jobs", args.jobs) == 1
        and policy is None
        and args.engine == "reference"
        and args.seed is None
        and args.store is None
    ):
        # serial path: run each experiment's own plan in-process,
        # bit-identical to the historical per-figure loops
        for name in names:
            started = time.time()
            result = _run_experiment(name, args)
            elapsed = time.time() - started
            print(f"=== {result.title} ===")
            print(result.text)
            print(f"[{name}: {elapsed:.1f}s]")
            print()
            _write(result, args)
        _write_export_manifest(names, args)
        return 0
    # pooled path: collect every requested experiment's cells into one
    # deduplicated plan and execute it — on the process backend for
    # --jobs != 1, in-process for a resilient --jobs 1 run (both
    # backends share identical retry/quarantine/resume semantics);
    # --store additionally serves already-persisted cells from the
    # content-addressed result store and writes fresh ones back
    started = time.time()
    plans = with_engine(
        with_seed(
            [
                SPECS[name].plan(**_experiment_kwargs(SPECS[name].build, args))
                for name in names
                if name in SPECS
            ],
            args.seed,
        ),
        args.engine,
    )
    backend = "serial" if args.jobs == 1 else "process"
    jobs = None if args.jobs < 1 else args.jobs
    store = None
    if args.store is not None:
        from repro.service.store import ResultStore

        store = ResultStore(args.store)
    try:
        results, plan = run_plans(
            plans, backend=backend, jobs=jobs, policy=policy, store=store
        )
    finally:
        if store is not None:
            store.close()
    elapsed = time.time() - started
    for result in results:
        print(f"=== {result.title} ===")
        print(result.text)
        print()
        _write(result, args)
    for name in names:
        if name not in SPECS:  # pragma: no cover - registry always covers
            result = _run_experiment(name, args)
            print(f"=== {result.title} ===")
            print(result.text)
            print()
            _write(result, args)
    _write_export_manifest(names, args)
    print(
        f"[{len(results)} experiments in {format_seconds(elapsed)}: "
        f"{plan.requested} cells requested, {plan.unique} executed "
        f"({backend} backend, jobs={args.jobs if args.jobs >= 1 else 'auto'})]"
    )
    if args.store is not None:
        print(
            f"[store {args.store}: {plan.store_hits} cell(s) served, "
            f"{plan.store_misses} simulated]"
        )
    return _report_failures(plan, args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

"""Command-line interface: regenerate any table/figure of the paper.

Examples::

    python -m repro.harness table1
    python -m repro.harness fig5 --instructions 500000
    python -m repro.harness list
    python -m repro.harness all --out results/ --jobs 4
    repro-harness fig7 --programs gcc cfront

``list`` prints every registered experiment with its simulation cell
count (computed by materialising the plans — no simulation runs) and
the cross-experiment dedup total.  ``--jobs N`` selects the executor
backend: 1 (the default) is the in-process serial backend,
bit-identical to the historical behaviour; any other value pools the
requested experiments' cells into one deduplicated run plan and
executes it on the multiprocessing backend (0 = one worker per CPU).
"""

from __future__ import annotations

import argparse
import inspect
import os
import sys
import time
from typing import List, Optional

from repro.harness.experiments import EXPERIMENTS, SPECS, ExperimentResult
from repro.harness.runner import RunPlan
from repro.harness.spec import run_plans
from repro.harness.tables import format_seconds, format_table
from repro.workloads.profiles import paper_programs


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-harness",
        description=(
            "Regenerate the tables and figures of Calder & Grunwald, "
            "'Next Cache Line and Set Prediction' (ISCA 1995)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "list"],
        help=(
            "which table/figure to regenerate ('all' runs everything, "
            "'list' shows the registry with per-experiment cell counts)"
        ),
    )
    parser.add_argument(
        "--programs",
        nargs="+",
        choices=list(paper_programs()),
        default=None,
        help="restrict to a subset of the six programs",
    )
    parser.add_argument(
        "--instructions",
        type=int,
        default=None,
        help="trace length override (default: each profile's calibrated length)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes: 1 = serial in-process (default), "
            "0 = one per CPU, N = a pool of N (both via the 'process' backend)"
        ),
    )
    parser.add_argument(
        "--out",
        default=None,
        help="directory to write result files into",
    )
    parser.add_argument(
        "--formats",
        nargs="+",
        choices=("txt", "json", "csv"),
        default=("txt",),
        help="output formats for --out (default: txt)",
    )
    return parser


def _experiment_kwargs(function, args: argparse.Namespace) -> dict:
    """CLI overrides accepted by *function* (driver or plan builder)."""
    kwargs = {}
    signature = inspect.signature(function)
    if "programs" in signature.parameters and args.programs is not None:
        kwargs["programs"] = args.programs
    if "instructions" in signature.parameters and args.instructions is not None:
        kwargs["instructions"] = args.instructions
    return kwargs


def _run_experiment(name: str, args: argparse.Namespace) -> ExperimentResult:
    function = EXPERIMENTS[name]
    return function(**_experiment_kwargs(function, args))


def _list_experiments(args: argparse.Namespace) -> int:
    """``list`` subcommand: registry with cell counts and dedup totals."""
    pooled = RunPlan()
    rows = []
    for name in sorted(SPECS):
        spec = SPECS[name]
        plan = spec.plan(**_experiment_kwargs(spec.build, args))
        pooled.add_all(plan.cells)
        rows.append((name, len(plan.cells), spec.summary))
    print(format_table(["experiment", "cells", "summary"], rows))
    print()
    print(
        f"{len(rows)} experiments; {pooled.requested} simulation cells "
        f"requested, {pooled.unique} unique after cross-experiment dedup "
        f"({pooled.requested - pooled.unique} shared)."
    )
    return 0


def _write(result: ExperimentResult, args: argparse.Namespace) -> None:
    if args.out:
        from repro.harness.export import write_result

        write_result(result, args.out, formats=tuple(args.formats))


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-harness`` / ``python -m repro.harness``."""
    args = _build_parser().parse_args(argv)
    if args.experiment == "list":
        return _list_experiments(args)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if args.out:
        os.makedirs(args.out, exist_ok=True)
    if args.jobs == 1:
        # serial path: run each experiment's own plan in-process,
        # bit-identical to the historical per-figure loops
        for name in names:
            started = time.time()
            result = _run_experiment(name, args)
            elapsed = time.time() - started
            print(f"=== {result.title} ===")
            print(result.text)
            print(f"[{name}: {elapsed:.1f}s]")
            print()
            _write(result, args)
        return 0
    # parallel path: pool every requested experiment's cells into one
    # deduplicated plan and fan it out to the process backend
    started = time.time()
    plans = [
        SPECS[name].plan(**_experiment_kwargs(SPECS[name].build, args))
        for name in names
        if name in SPECS
    ]
    jobs = None if args.jobs < 1 else args.jobs
    results, plan = run_plans(plans, backend="process", jobs=jobs)
    elapsed = time.time() - started
    for result in results:
        print(f"=== {result.title} ===")
        print(result.text)
        print()
        _write(result, args)
    for name in names:
        if name not in SPECS:  # pragma: no cover - registry always covers
            result = _run_experiment(name, args)
            print(f"=== {result.title} ===")
            print(result.text)
            print()
            _write(result, args)
    print(
        f"[{len(results)} experiments in {format_seconds(elapsed)}: "
        f"{plan.requested} cells requested, {plan.unique} executed "
        f"(process backend, jobs={args.jobs if args.jobs >= 1 else 'auto'})]"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

"""Instruction and address-space geometry.

The paper's machine model fixes instructions at 4 bytes and cache lines
at 32 bytes (§5.1).  Addresses are byte addresses in a 32-bit address
space; the RBE cost model (§6) assumes 30-bit stored branch targets
(32-bit addresses with the two always-zero low bits dropped).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Bytes per instruction (fixed-width RISC encoding, §5.1).
INSTRUCTION_BYTES = 4


def align_instruction(address: int) -> int:
    """Round *address* down to an instruction boundary."""
    return address & ~(INSTRUCTION_BYTES - 1)


def instruction_index(address: int) -> int:
    """Return the word index of *address* (address divided by 4).

    The NLS-table is indexed by "the lower order bits of the branch
    instruction's address" (§4.1); because the two lowest bits are
    always zero the useful bits start at the word index.
    """
    return address >> 2


@dataclass(frozen=True)
class AddressSpace:
    """A program address space.

    The reproduction keeps the paper's 32-bit assumption but makes it a
    parameter so the "larger address space poses problems for BTBs but
    is inconsequential for NLS" argument (§7) can be demonstrated by
    sweeping ``bits``.
    """

    bits: int = 32

    def __post_init__(self) -> None:
        if not 16 <= self.bits <= 64:
            raise ValueError(f"address space bits must be in [16, 64], got {self.bits}")

    @property
    def size(self) -> int:
        """Total number of byte addresses."""
        return 1 << self.bits

    @property
    def target_bits(self) -> int:
        """Bits needed to store a full branch target.

        Instructions are 4-byte aligned so the two low bits are never
        stored (the paper stores 30-bit targets in a 32-bit space).
        """
        return self.bits - 2

    def contains(self, address: int) -> bool:
        """Return ``True`` when *address* is representable."""
        return 0 <= address < self.size

    def wrap(self, address: int) -> int:
        """Wrap *address* into the space (modular arithmetic)."""
        return address & (self.size - 1)

"""Instruction-set model used by the trace generator and simulators.

The paper simulates a RISC machine with 4-byte instructions and 32-byte
instruction-cache lines (eight instructions per line).  This package
defines the branch taxonomy used throughout the reproduction (§5,
Table 1 of the paper distinguishes conditional branches, indirect
jumps, unconditional branches, calls and returns), the instruction
geometry constants, and the address arithmetic shared by the cache and
the predictors.
"""

from repro.isa.branches import (
    BranchKind,
    BREAK_KINDS,
    is_break,
    uses_return_stack,
    target_known_at_decode,
)
from repro.isa.geometry import (
    INSTRUCTION_BYTES,
    AddressSpace,
    align_instruction,
    instruction_index,
)

__all__ = [
    "BranchKind",
    "BREAK_KINDS",
    "is_break",
    "uses_return_stack",
    "target_known_at_decode",
    "INSTRUCTION_BYTES",
    "AddressSpace",
    "align_instruction",
    "instruction_index",
]

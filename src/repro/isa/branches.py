"""Branch taxonomy.

Table 1 of the paper breaks "breaks in control flow" into five classes:
conditional branches (CBr), indirect jumps (IJ), unconditional branches
(Br), procedure calls (Call) and procedure returns (Ret).  The NLS
type field (§4) collapses these into four prediction sources:

======  =======================  ==========================
type    branch class             prediction source
======  =======================  ==========================
``00``  invalid entry            —
``01``  return                   return stack
``10``  conditional branch       NLS entry, conditional on PHT
``11``  other branches           always use NLS entry
======  =======================  ==========================

This module defines the five-way dynamic taxonomy; the two-bit NLS
encoding lives with the NLS entry itself (:mod:`repro.core.nls_entry`).
"""

from __future__ import annotations

import enum


class BranchKind(enum.IntEnum):
    """Dynamic instruction classes that can break control flow.

    ``NOT_A_BRANCH`` is included so that trace records and fetch-engine
    interfaces can use a single enum for every instruction class.
    """

    NOT_A_BRANCH = 0
    #: conditional direct branch (taken or not-taken per execution)
    CONDITIONAL = 1
    #: unconditional direct branch (always taken)
    UNCONDITIONAL = 2
    #: direct procedure call (always taken, pushes a return address)
    CALL = 3
    #: procedure return (always taken, pops the return stack)
    RETURN = 4
    #: indirect jump through a register (always taken, moving target)
    INDIRECT = 5


#: The branch classes counted as "breaks" in Table 1 of the paper.
BREAK_KINDS = frozenset(
    {
        BranchKind.CONDITIONAL,
        BranchKind.UNCONDITIONAL,
        BranchKind.CALL,
        BranchKind.RETURN,
        BranchKind.INDIRECT,
    }
)


def is_break(kind: BranchKind) -> bool:
    """Return ``True`` when *kind* can break sequential control flow."""
    return kind != BranchKind.NOT_A_BRANCH


def uses_return_stack(kind: BranchKind) -> bool:
    """Return ``True`` when the fetch engine predicts *kind* with the
    32-entry return-address stack rather than the NLS/BTB entry."""
    return kind == BranchKind.RETURN


def target_known_at_decode(kind: BranchKind) -> bool:
    """Return ``True`` when the branch target can be computed in the
    decode stage (PC-relative or absolute-immediate branches).

    For these branches a wrong next-fetch prediction costs only the
    one-cycle *misfetch* penalty.  Indirect jumps and returns produce
    their target from a register or the stack, so a wrong prediction
    for them is a full *mispredict* (§5.2 accounting).
    """
    return kind in (
        BranchKind.CONDITIONAL,
        BranchKind.UNCONDITIONAL,
        BranchKind.CALL,
    )

"""Plug a custom fetch front-end into the engine.

The fetch engine accepts any object implementing the
:class:`repro.fetch.frontends.FetchFrontEnd` protocol.  This example
implements a *tagged* NLS-table — an NLS-table that additionally
stores a small partial tag per entry, trading a little area for the
elimination of tag-less aliasing — and compares it against the paper's
plain NLS-table on every program.

This is exactly the kind of design-space question the library is meant
to make cheap to ask.

Usage::

    python examples/custom_frontend.py [instructions]
"""

import sys

from repro.cache.icache import InstructionCache
from repro.core.nls_entry import NLSEntryType, NLSPrediction, verify_nls_target
from repro.core.nls_table import NLSTable
from repro.fetch.engine import FetchEngine
from repro.fetch.frontends import NLSTableFrontEnd
from repro.harness.config import ArchitectureConfig
from repro.isa.geometry import instruction_index
from repro.workloads import generate_trace, paper_programs


class TaggedNLSTable(NLSTable):
    """An NLS-table with a *partial tag* per entry.

    A lookup whose tag does not match behaves like an invalid entry
    (fall-through fetch) instead of silently using another branch's
    pointer.  ``tag_bits`` extra bits per entry are the area cost.
    """

    def __init__(self, entries, geometry, tag_bits=4):
        super().__init__(entries, geometry)
        self.tag_bits = tag_bits
        self._tag_mask = (1 << tag_bits) - 1
        self._tags = [0] * entries

    def _tag_of(self, pc):
        return (instruction_index(pc) >> (self.entries.bit_length() - 1)) & self._tag_mask

    def lookup(self, pc):
        prediction = super().lookup(pc)
        index = self.index_of(pc)
        if prediction.valid and self._tags[index] != self._tag_of(pc):
            return NLSPrediction(NLSEntryType.INVALID, 0, 0)
        return prediction

    def update(self, pc, kind, taken, target=0, target_way=0):
        super().update(pc, kind, taken, target, target_way)
        self._tags[self.index_of(pc)] = self._tag_of(pc)


class TaggedNLSFrontEnd(NLSTableFrontEnd):
    """Front-end wrapper — reuses all NLS verification machinery."""

    def __init__(self, table, cache):
        super().__init__(table, cache)
        self.name = f"tagged-nls-{table.entries}e"


def main() -> None:
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 400_000
    base = ArchitectureConfig(frontend="nls-table", entries=1024, cache_kb=16)

    print(f"{'program':<10} {'plain NLS BEP':>14} {'tagged NLS BEP':>15} {'alias rate':>11}")
    for program in paper_programs():
        trace = generate_trace(program, instructions=instructions)

        plain = base.build().run(trace, warmup_fraction=0.3)

        cache = InstructionCache(base.geometry)
        table = TaggedNLSTable(1024, cache.geometry)
        engine = FetchEngine(cache, TaggedNLSFrontEnd(table, cache))
        tagged = engine.run(trace, warmup_fraction=0.3)

        print(
            f"{program:<10} {plain.bep:14.3f} {tagged.bep:15.3f} "
            f"{100 * table.alias_rate:10.2f}%"
        )

    print(
        "\nThe paper argues tag-less interference is small (S4.1); the "
        "tagged variant quantifies exactly how much BEP the 4-bit tags "
        "would buy back."
    )


if __name__ == "__main__":
    main()

"""Build a custom synthetic workload and evaluate fetch predictors on it.

The six shipped profiles are calibrated to the paper's Table 1, but the
generator is fully parameterised.  This example defines a new profile —
a small interpreter-style program with heavy indirect dispatch — then:

1. generates the program and a trace,
2. re-measures its Table 1 attributes,
3. runs the NLS-table and BTB on it.

Usage::

    python examples/custom_workload.py [instructions]
"""

import sys

from repro import ArchitectureConfig, build_program, execute, measure, simulate
from repro.workloads.profiles import TakenBiasClass, WorkloadProfile
from repro.workloads.stats import TraceAttributes

DISPATCH_HEAVY = WorkloadProfile(
    name="dispatcher",
    description="bytecode-interpreter shape: hot dispatch loop, huge "
    "indirect fan-out, shallow helper calls",
    n_procedures=40,
    blocks_per_procedure=(10, 30),
    mean_block_instructions=5.0,
    main_call_sites=60,
    zipf_alpha=1.6,
    frac_conditional=0.40,
    frac_loop=0.15,
    frac_unconditional=0.05,
    frac_call=0.15,
    frac_indirect=0.25,  # the defining feature
    taken_bias_classes=(
        TakenBiasClass(0.50, 0.002, 0.02),
        TakenBiasClass(0.30, 0.98, 0.998),
        TakenBiasClass(0.15, 0.30, 0.70, correlated=True),
        TakenBiasClass(0.05, 0.30, 0.70, sticky=0.9),
    ),
    loop_iterations_log_mean=1.2,
    loop_iterations_log_sigma=0.6,
    indirect_fanout=(8, 24),
    indirect_skew=0.8,  # flat dispatch: hard to predict
    indirect_repeat=0.30,
)


def main() -> None:
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 400_000

    program = build_program(DISPATCH_HEAVY)
    print(
        f"generated {len(program.procedures)} procedures, "
        f"{program.code_bytes / 1024:.0f} KB of code"
    )

    trace = execute(
        program,
        instructions,
        seed=1,
        profile_indirect_repeat=DISPATCH_HEAVY.indirect_repeat,
    )
    trace.validate()

    attributes = measure(trace, program)
    print()
    print(TraceAttributes.header())
    print(attributes.row())
    print()

    for config in (
        ArchitectureConfig(frontend="nls-table", entries=1024, cache_kb=16),
        ArchitectureConfig(frontend="btb", entries=128, cache_kb=16),
        ArchitectureConfig(frontend="btb", entries=256, cache_kb=16),
    ):
        report = simulate(config, trace)
        print(report.summary())

    print(
        "\nWith this much indirect dispatch the mispredict component "
        "dominates for every architecture — indirect jumps resolve at "
        "execute, so neither a BTB nor an NLS pointer can repair them "
        "at decode (S5.2)."
    )


if __name__ == "__main__":
    main()

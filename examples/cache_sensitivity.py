"""Cache sensitivity: the paper's central asymmetry, visualised.

An NLS predictor points *into the instruction cache*, so its accuracy
rises as the cache keeps more branch targets resident; a BTB stores
full addresses and does not care about the cache (§7).  This example
sweeps 8K/16K/32K/64K caches (direct-mapped and 4-way) and prints the
misfetch component of the BEP for both architectures, plus the I-cache
miss rate that drives the effect.

Usage::

    python examples/cache_sensitivity.py [program] [instructions]
"""

import sys

from repro import ArchitectureConfig, simulate


def bar(value: float, scale: float = 200.0) -> str:
    return "#" * int(round(value * scale))


def main() -> None:
    program = sys.argv[1] if len(sys.argv) > 1 else "cfront"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 500_000

    print(f"program={program}, {instructions:,} instructions")
    print(f"{'cache':>10}  {'I-miss':>7}  {'BEP(misfetch)':>14}   profile")
    for frontend, entries, name in (
        ("nls-table", 1024, "1024-entry NLS-table"),
        ("btb", 128, "128-entry BTB"),
    ):
        print(f"\n--- {name} ---")
        for kb in (8, 16, 32, 64):
            for assoc in (1, 4):
                config = ArchitectureConfig(
                    frontend=frontend,
                    entries=entries,
                    cache_kb=kb,
                    cache_assoc=assoc,
                )
                report = simulate(config, program, instructions=instructions)
                label = f"{kb}K/{assoc}w"
                print(
                    f"{label:>10}  {100 * report.icache_miss_rate:6.2f}%  "
                    f"{report.bep_misfetch:14.3f}   {bar(report.bep_misfetch)}"
                )

    print(
        "\nExpected shape: the NLS misfetch component falls steadily as the"
        "\ncache grows (fewer displaced targets); the BTB's stays flat."
    )


if __name__ == "__main__":
    main()

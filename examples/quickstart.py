"""Quickstart: compare the NLS-table against a BTB on one workload.

Runs the paper's headline comparison on the gcc-like synthetic
workload: a 1024-entry NLS-table (which costs about the same silicon
as a 128-entry BTB under the register-bit-equivalent model) against
128- and 256-entry BTBs, all sharing the same gshare direction
predictor and return stack.

Usage::

    python examples/quickstart.py [program] [instructions]
"""

import sys

from repro import ArchitectureConfig, RBEModel, simulate


def main() -> None:
    program = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 500_000

    configs = [
        ArchitectureConfig(frontend="nls-table", entries=1024, cache_kb=16),
        ArchitectureConfig(frontend="btb", entries=128, btb_assoc=1, cache_kb=16),
        ArchitectureConfig(frontend="btb", entries=256, btb_assoc=1, cache_kb=16),
    ]

    model = RBEModel()
    costs = {
        configs[0].label(): model.nls_table_cost(1024, configs[0].geometry).rbe,
        configs[1].label(): model.btb_cost(128, 1).rbe,
        configs[2].label(): model.btb_cost(256, 1).rbe,
    }

    print(f"program={program}, {instructions:,} instructions, 16K direct I-cache\n")
    for config in configs:
        report = simulate(config, program, instructions=instructions)
        cost = costs[config.label()]
        print(f"{report.summary()}   area={cost:8,.0f} RBE")

    print(
        "\nThe NLS-table should beat the equal-cost 128-entry BTB and "
        "approach the double-cost 256-entry BTB (paper S6.3/S7)."
    )


if __name__ == "__main__":
    main()

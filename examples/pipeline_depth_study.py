"""Does the NLS conclusion survive deeper pipelines and wider issue?

The paper fixes 1995-era penalties (1-cycle misfetch, 4-cycle
mispredict, 5-cycle I-miss) and a single-issue machine.  This example
uses the analysis tools to stress both assumptions:

1. :func:`repro.analysis.penalty_sensitivity` re-weighs one pair of
   simulations across a mispredict-penalty × miss-penalty grid —
   deeper pipelines and slower memory;
2. the §8 multi-issue experiment compares IPC at fetch widths 1–8.

Usage::

    python examples/pipeline_depth_study.py [program] [instructions]
"""

import sys

from repro.analysis.sensitivity import format_sensitivity, penalty_sensitivity
from repro.harness.experiments import multi_issue


def main() -> None:
    program = sys.argv[1] if len(sys.argv) > 1 else "cfront"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 400_000

    print(f"=== penalty sensitivity on {program} ===\n")
    points = penalty_sensitivity(
        program,
        mispredict_penalties=(2.0, 4.0, 8.0, 12.0, 20.0),
        miss_penalties=(5.0, 20.0, 50.0),
        instructions=instructions,
    )
    print(
        format_sensitivity(
            points, title="1024 NLS-table vs 128 BTB (equal RBE cost)"
        )
    )
    advantage = {point.penalties.mispredict for point in points if point.nls_wins}
    print(
        f"\nNLS keeps the lower CPI at mispredict penalties {sorted(advantage)} "
        "— the BEP advantage comes from misfetches, which deeper pipelines "
        "do not touch, while the shared PHT mispredicts identically."
    )

    print(f"\n=== issue-width study on {program} ===\n")
    result = multi_issue(programs=(program,), instructions=instructions)
    print(result.text)
    nls = result.data["1024 NLS-table"]
    btb = result.data["128 BTB"]
    print(
        f"\nIPC gap (NLS - BTB): width 1: {nls[1] - btb[1]:+.3f}, "
        f"width 8: {nls[8] - btb[8]:+.3f} — the gap widens with issue "
        "width, consistent with the paper's closing claim (S8)."
    )


if __name__ == "__main__":
    main()

"""Regenerate Figure 5 (BTBs vs the 1024-entry NLS-table, average BEP)."""

from conftest import run_once

from repro.harness.experiments import fig5


def test_fig5(benchmark, bench_instructions):
    result = run_once(benchmark, fig5, instructions=bench_instructions)
    print()
    print(result)
    data = result.data
    # 1024 NLS-table beats the equal-cost 128-entry direct BTB
    assert data["nls-1024@16K-1w"] < data["btb-128-1w"]
    # and is competitive with the double-cost 256-entry BTB
    assert data["nls-1024@16K-1w"] < data["btb-256-1w"] * 1.10
    # NLS improves with cache size; BTBs cannot (same trace, no cache terms)
    assert data["nls-1024@32K-1w"] < data["nls-1024@8K-1w"]

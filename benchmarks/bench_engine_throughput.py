"""Raw simulator throughput: events/second of the fetch engine.

This is the one benchmark where wall-clock time is the result itself:
it tracks the cost of the hot simulation loop across front-ends.
"""

import pytest

from repro.harness.config import ArchitectureConfig
from repro.workloads.corpus import generate_trace

TRACE_INSTRUCTIONS = 150_000


@pytest.mark.parametrize(
    "frontend,kwargs",
    [
        ("btb", {"entries": 128}),
        ("nls-table", {"entries": 1024}),
        ("nls-cache", {}),
        ("johnson", {}),
    ],
)
def test_engine_throughput(benchmark, frontend, kwargs):
    trace = generate_trace("gcc", instructions=TRACE_INSTRUCTIONS)
    config = ArchitectureConfig(frontend=frontend, cache_kb=16, **kwargs)

    def run():
        return config.build().run(trace)

    report = benchmark(run)
    assert report.n_breaks > 0

"""Raw simulator throughput: events/second of the fetch engine.

This is the one benchmark where wall-clock time is the result itself:
it tracks the cost of the hot simulation loop across front-ends — and,
for configurations inside the vectorised engine's supported matrix,
the fast engine's speedup over the reference loop.

Run as a script to regenerate ``docs/PERFORMANCE.md`` from a fresh
standardised engine benchmark (the same measurement ``python -m
repro.harness bench`` writes to ``BENCH_engine.json``)::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py
"""

import pathlib
import sys

import pytest

from repro.harness.config import ArchitectureConfig
from repro.workloads.corpus import generate_trace

TRACE_INSTRUCTIONS = 150_000

ENGINE_PARAMS = [
    ("btb", "reference", {"entries": 128}),
    ("btb", "fast", {"entries": 128}),
    ("nls-table", "reference", {"entries": 1024}),
    ("nls-table", "fast", {"entries": 1024}),
    ("steely-sager", "fast", {"entries": 1024}),
    ("nls-cache", "reference", {}),
    ("nls-cache", "fast", {}),
    ("nls-cache", "fast", {"nls_cache_policy": "lru"}),
    ("johnson", "reference", {}),
    ("johnson", "fast", {}),
    ("coupled-btb", "fast", {"entries": 256}),
    ("btb", "fast", {"entries": 128, "btb_assoc": 4}),
    ("nls-table", "fast", {"entries": 1024, "cache_assoc": 4}),
]


@pytest.mark.parametrize("frontend,engine,kwargs", ENGINE_PARAMS)
def test_engine_throughput(benchmark, frontend, engine, kwargs):
    trace = generate_trace("gcc", instructions=TRACE_INSTRUCTIONS)
    config = ArchitectureConfig(
        frontend=frontend, cache_kb=16, engine=engine, **kwargs
    )

    def run():
        return config.build().run(trace)

    report = benchmark(run)
    assert report.n_breaks > 0


def render_performance_md(payload, sweep_payload=None) -> str:
    """Render the ``docs/PERFORMANCE.md`` speedup table from a
    ``bench_engine`` payload (schema ``repro-bench/v1``); with a
    ``bench_sweep`` payload, append the batched end-to-end numbers."""
    manifest = payload.get("manifest", {})
    extra = manifest.get("extra") or {}
    results = payload["results"]
    lines = [
        "# Engine performance: fast (vectorised) vs reference",
        "",
        "Single-cell throughput of the standardised engine benchmark",
        "(`python -m repro.harness bench`, program "
        f"`{extra.get('program', 'gcc')}`, "
        f"{extra.get('instructions', 0):,} instructions, best of 3).",
        "The fast engine replays the same trace through the array",
        "kernels of `repro.predictors.kernels` and produces a",
        "byte-identical `SimulationReport` (asserted by",
        "`tests/test_fast_engine.py`); `speedup` is the wall-time",
        "ratio against the reference per-branch Python loop.",
        "",
        "| configuration | reference | fast | speedup |",
        "|---|---:|---:|---:|",
    ]
    for label in sorted(results):
        if not label.endswith("-fast"):
            continue
        reference = results.get(label[: -len("-fast")])
        fast = results[label]
        if reference is None:
            continue
        lines.append(
            f"| {label[: -len('-fast')]} "
            f"| {reference['events_per_s']:,.0f} ev/s "
            f"| {fast['events_per_s']:,.0f} ev/s "
            f"| {fast['speedup_vs_reference']:.1f}x |"
        )
    lines += [
        "",
        "The fast engine's matrix is closed over every paper",
        "configuration — all eight front-ends, set-associative caches",
        "under every replacement policy, flush intervals. Only",
        "non-gshare direction predictors and wrong-path modelling fall",
        "back to the reference engine, with the reason stamped in the",
        "run manifest — see `repro.fetch.capability` for the engine",
        "classes and `docs/ARCHITECTURE.md` for the supported-matrix",
        "table and the batched-sweep dispatch seam.",
        "",
    ]
    if sweep_payload is not None:
        sweep_extra = sweep_payload.get("manifest", {}).get("extra") or {}
        sweep_results = sweep_payload["results"]
        classes = sweep_extra.get("engine_classes", {})
        lines += [
            "## Batched sweep (end to end)",
            "",
            "The standard multi-figure sweep "
            f"({sweep_extra.get('cells_unique', 0)} unique cells, figures "
            f"{', '.join(sweep_extra.get('figures', []))}) executed through",
            "the harness, which groups cells by trace and engine class and",
            "replays each group through one shared `TraceReplayContext`:",
            "",
            "| plan | wall | cells/s | speedup |",
            "|---|---:|---:|---:|",
        ]
        for label in ("reference", "fast_serial", "fast_process"):
            metrics = sweep_results.get(label)
            if metrics is None:
                continue
            speedup = metrics.get("speedup_vs_reference")
            lines.append(
                f"| {label} | {metrics['wall_s']:.2f} s "
                f"| {metrics['cells_per_s']:,.0f} "
                f"| {f'{speedup:.1f}x' if speedup else '—'} |"
            )
        lines += [
            "",
            "Dispatch breakdown: "
            f"{classes.get('fast_batched', 0)} fast-batched, "
            f"{classes.get('fast_single', 0)} fast-single, "
            f"{classes.get('fallback', 0)} fallback cells "
            "(the bench gate fails on any fallback).",
            "",
        ]
    lines += [
        "Throughput numbers are machine-dependent; regenerate with",
        "`PYTHONPATH=src python benchmarks/bench_engine_throughput.py`.",
        f"Recorded on: `{manifest.get('platform', 'unknown')}`, "
        f"python `{manifest.get('python', 'unknown')}`.",
        "",
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    """Regenerate ``docs/PERFORMANCE.md`` (and print the table)."""
    from repro.telemetry.bench import SWEEP_BENCH_FILE, bench_engine, load_bench

    argv = list(sys.argv[1:] if argv is None else argv)
    smoke = "--smoke" in argv
    payload = bench_engine(
        instructions=15_000 if smoke else TRACE_INSTRUCTIONS,
        repeats=1 if smoke else 3,
    )
    sweep_path = pathlib.Path(__file__).resolve().parent.parent / SWEEP_BENCH_FILE
    sweep_payload = load_bench(str(sweep_path)) if sweep_path.exists() else None
    text = render_performance_md(payload, sweep_payload)
    out = pathlib.Path(__file__).resolve().parent.parent / "docs" / "PERFORMANCE.md"
    out.write_text(text, encoding="utf-8")
    print(text)
    print(f"[written -> {out}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())

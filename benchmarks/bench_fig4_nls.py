"""Regenerate Figure 4 (NLS-cache vs NLS-table sizes, average BEP)."""

from conftest import run_once

from repro.harness.experiments import fig4


def test_fig4(benchmark, bench_instructions):
    result = run_once(benchmark, fig4, instructions=bench_instructions)
    print()
    print(result)
    data = result.data
    # the NLS-table outperforms the equal-cost NLS-cache (S6.1):
    # 512-table @8K, 1024-table @16K, 2048-table @32K
    for kb, entries in ((8, 512), (16, 1024), (32, 2048)):
        cache_label = f"{kb}K 1-way"
        assert (
            data[f"nls-table-{entries}"][cache_label]
            < data["nls-cache"][cache_label]
        ), cache_label
    # 512 -> 1024 helps more than 1024 -> 2048 (S6.1)
    label = "16K 1-way"
    first = data["nls-table-512"][label] - data["nls-table-1024"][label]
    second = data["nls-table-1024"][label] - data["nls-table-2048"][label]
    assert second < first

"""Regenerate Figure 3 (RBE implementation costs)."""

from conftest import run_once

from repro.harness.experiments import fig3


def test_fig3(benchmark):
    result = run_once(benchmark, fig3)
    print()
    print(result)
    data = result.data
    # cost equivalences the paper's comparisons rest on
    assert 0.75 < data["nls-table-1024@16K"] / data["btb-128-1w"] < 1.25
    assert 1.6 < data["btb-256-1w"] / data["nls-table-1024@16K"] < 2.4
    assert data["nls-cache@8K"] == data["nls-table-512@8K"]
    # linear vs logarithmic growth
    assert data["nls-cache@64K"] > 4 * data["nls-cache@8K"]
    assert data["nls-table-1024@64K"] < 1.5 * data["nls-table-1024@8K"]

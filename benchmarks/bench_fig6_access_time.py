"""Regenerate Figure 6 (BTB access times)."""

from conftest import run_once

from repro.harness.experiments import fig6


def test_fig6(benchmark):
    result = run_once(benchmark, fig6)
    print()
    print(result)
    data = result.data
    for entries in (128, 256):
        ratio = data[f"{entries}-4w"] / data[f"{entries}-1w"]
        assert 1.25 <= ratio <= 1.45  # "30 to 40% longer" (S6.3)

"""Regenerate Figure 7 (per-program BEP, ten configurations)."""

from conftest import run_once

from repro.harness.experiments import fig7


def test_fig7(benchmark, bench_instructions):
    result = run_once(benchmark, fig7, instructions=bench_instructions)
    print()
    print(result)
    data = result.data
    for program in ("gcc", "cfront", "groff"):
        btb = data[program]["128 Direct BTB"]
        nls = data[program]["1024 NLS-table, 16K Direct"]
        # branch-rich programs clearly gain from the NLS (S7)
        assert nls.bep < btb.bep, program
    # NLS BEP decreases with cache size for every program
    for program, reports in data.items():
        assert (
            reports["1024 NLS-table, 32K Direct"].bep
            <= reports["1024 NLS-table, 8K Direct"].bep + 0.02
        ), program

"""Regenerate Table 1 (measured trace attributes) and time it."""

from conftest import run_once

from repro.harness.experiments import table1


def test_table1(benchmark, bench_instructions):
    result = run_once(benchmark, table1, instructions=bench_instructions)
    print()
    print(result)
    attributes = result.data["attributes"]
    # Table 1's program character must survive scaling
    assert attributes["doduc"].pct_breaks < attributes["gcc"].pct_breaks
    assert attributes["espresso"].pct_cbr > 85.0
    assert attributes["gcc"].q100 == max(a.q100 for a in attributes.values())

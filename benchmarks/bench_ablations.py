"""Regenerate the S4.1/S7 ablation tables."""

from conftest import run_once

from repro.harness.experiments import (
    ablation_direction,
    ablation_layout,
    ablation_nls_cache,
)


def test_nls_cache_design_space(benchmark, bench_instructions):
    result = run_once(benchmark, ablation_nls_cache, instructions=bench_instructions)
    print()
    print(result)
    data = result.data
    # more predictors per line monotonically helps (partition policy)
    assert (
        data["NLS-cache 4/line partition"]
        <= data["NLS-cache 2/line partition"]
        <= data["NLS-cache 1/line partition"]
    )


def test_direction_predictors(benchmark, bench_instructions):
    result = run_once(benchmark, ablation_direction, instructions=bench_instructions)
    print()
    print(result)
    data = result.data
    # every dynamic predictor beats every static scheme
    dynamic = min(data[name] for name in ("gshare", "pan", "gag", "bimodal"))
    static = min(data[name] for name in ("taken", "not-taken", "btfnt"))
    assert dynamic < static


def test_layout(benchmark, bench_instructions):
    result = run_once(benchmark, ablation_layout, instructions=bench_instructions)
    print()
    print(result)

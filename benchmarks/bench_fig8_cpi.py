"""Regenerate Figure 8 (cycles per instruction)."""

from conftest import run_once

from repro.harness.experiments import fig8


def test_fig8(benchmark, bench_instructions):
    result = run_once(benchmark, fig8, instructions=bench_instructions)
    print()
    print(result)
    data = result.data
    for cache_label, cpis in data.items():
        for name, cpi in cpis.items():
            assert cpi >= 1.0, (cache_label, name)
        # the NLS-table at least matches the equal-cost 128 direct BTB
        assert cpis["1024 NLS-table"] <= cpis["128 Direct BTB"] + 0.005, cache_label
    # CPI falls with cache size for every variant (5-cycle miss penalty)
    for name in data["8K direct"]:
        assert data["32K direct"][name] < data["8K direct"][name]

"""Serial vs parallel execution of a deduplicated full-figure sweep.

Pools the cells of fig4, fig5 and fig8 — which share most of their
(config x program) grid — into one :class:`RunPlan`, then executes the
unique cells on both backends.  Reports the dedup saving (requested vs
executed cells), both wall times and the measured speedup, and asserts
the two backends produce identical reports.  No minimum speedup is
asserted: on a single-CPU host the process backend legitimately loses
to serial by the pool's fork overhead.
"""

import time

from conftest import BENCH_INSTRUCTIONS, run_once

from repro.harness.experiments import SPECS
from repro.harness.runner import RunPlan
from repro.harness.tables import format_seconds

PROGRAMS = ("li", "doduc")
GRID = ((8, 1), (16, 1), (16, 4))


def _pooled_plan() -> RunPlan:
    plan = RunPlan()
    for name in ("fig4", "fig5", "fig8"):
        cells = SPECS[name].plan(
            programs=PROGRAMS,
            instructions=BENCH_INSTRUCTIONS,
            cache_grid=GRID,
        ).cells
        plan.add_all(cells)
    return plan


def test_sweep_parallel(benchmark):
    plan = _pooled_plan()
    assert plan.unique < plan.requested  # cross-figure dedup must bite

    started = time.perf_counter()
    serial = RunPlan(plan.requests).execute(backend="serial")
    serial_time = time.perf_counter() - started

    started = time.perf_counter()
    parallel = run_once(
        benchmark,
        RunPlan(plan.requests).execute,
        backend="process",
        jobs=0,
    )
    parallel_time = time.perf_counter() - started

    assert serial == parallel  # byte-identical reports either way

    speedup = serial_time / parallel_time if parallel_time else float("inf")
    print()
    print(
        f"cells: {plan.requested} requested -> {plan.unique} executed "
        f"({plan.requested - plan.unique} deduped across figures)"
    )
    print(
        f"serial {format_seconds(serial_time)} vs process "
        f"{format_seconds(parallel_time)} (speedup {speedup:.2f}x)"
    )

"""Benchmarks for the extension experiments (coupled BTB, way
prediction, multi-issue) and the analysis tools."""

from conftest import run_once

from repro.analysis.sensitivity import penalty_sensitivity
from repro.harness.experiments import coupled_vs_decoupled, multi_issue, way_prediction


def test_coupled_vs_decoupled(benchmark, bench_instructions):
    result = run_once(
        benchmark, coupled_vs_decoupled, instructions=bench_instructions
    )
    print()
    print(result)
    # the decoupled design wins at the 128-entry size, where capacity
    # misses leave many branches without in-entry counters (S2)
    assert (
        result.data["decoupled 128 BTB + gshare"]
        < result.data["coupled 128 BTB (2-bit in entry)"]
    )


def test_way_prediction(benchmark, bench_instructions):
    result = run_once(benchmark, way_prediction, instructions=bench_instructions)
    print()
    print(result)
    for program, accuracy in result.data.items():
        assert accuracy > 0.5, program


def test_multi_issue(benchmark, bench_instructions):
    result = run_once(
        benchmark,
        multi_issue,
        instructions=bench_instructions,
        widths=(1, 4, 8),
    )
    print()
    print(result)
    nls = result.data["1024 NLS-table"]
    btb = result.data["128 BTB"]
    assert nls[8] > btb[8]  # the NLS advantage survives wide issue (S8)


def test_penalty_sensitivity(benchmark, bench_instructions):
    points = run_once(
        benchmark,
        penalty_sensitivity,
        "gcc",
        mispredict_penalties=(2.0, 4.0, 12.0),
        miss_penalties=(5.0, 20.0),
        instructions=bench_instructions,
    )
    from repro.analysis.sensitivity import format_sensitivity

    print()
    print(format_sensitivity(points, title="NLS vs BTB under deeper pipelines"))
    assert all(point.bep_advantage > 0 for point in points)
